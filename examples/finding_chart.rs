//! Finding charts — the paper's "simplest service": an on-demand chart
//! of a queried field with position information.
//!
//! ```sh
//! cargo run --release --example finding_chart
//! ```

use sdss::catalog::{FindingChart, SkyModel, TagObject};
use sdss::storage::{ObjectStore, StoreConfig, TagStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let objs = SkyModel::default().generate()?;
    let mut store = ObjectStore::new(StoreConfig::default())?;
    store.insert_batch(&objs)?;
    let tags = TagStore::from_store(&store);

    // Chart a half-degree field around the survey test position.
    let (ra, dec, width) = (185.0, 15.0, 0.5);
    let mut chart = FindingChart::new(ra, dec, width)?;
    let domain = sdss::htm::Region::circle(ra, dec, width)?;
    let mut plotted = 0usize;
    tags.scan_region(&domain, None, |t: &TagObject| {
        if t.mag(2) < 21.5 {
            chart.add(t);
            plotted += 1;
        }
    })?;

    print!("{}", chart.render_ascii(72, 30));

    // Also write the image form.
    let pgm = chart.render_pgm(256);
    std::fs::write("/tmp/finding_chart.pgm", &pgm)?;
    println!(
        "\nwrote /tmp/finding_chart.pgm ({} objects plotted, {} bytes)",
        chart.n_objects(),
        pgm.len()
    );
    Ok(())
}
