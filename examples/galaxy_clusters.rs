//! Build a photometric galaxy-cluster catalog — one of the paper's
//! "derived custom catalogs" — with friends-of-friends linking on the
//! hash machine.
//!
//! ```sh
//! cargo run --release --example galaxy_clusters
//! ```

use sdss::catalog::{ObjClass, SkyModel, TagObject};
use sdss::dataflow::{HashMachine, PairPredicate};
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = SkyModel {
        n_galaxies: 20_000,
        n_stars: 5_000,
        n_quasars: 1_000,
        cluster_fraction: 0.5,
        ..SkyModel::default()
    };
    let tags: Vec<TagObject> = model
        .generate()?
        .iter()
        .map(TagObject::from_photo)
        .filter(|t| t.class == ObjClass::Galaxy && t.mag(2) < 22.0)
        .collect();
    println!("linking {} galaxies (friends-of-friends)...", tags.len());

    // Linking length: 60 arcsec between "friends".
    let link_deg = 60.0 / 3600.0;
    let pred: PairPredicate = Arc::new(|_, _| true);
    let machine = HashMachine {
        bucket_level: 9,
        margin_deg: link_deg,
        n_workers: 4,
    };
    let (pairs, _) = machine.find_pairs(&tags, link_deg, &pred)?;
    println!("found {} friend links", pairs.len());

    // Union-find over the links.
    let idx_of: HashMap<u64, usize> = tags
        .iter()
        .enumerate()
        .map(|(i, t)| (t.obj_id, i))
        .collect();
    let mut parent: Vec<usize> = (0..tags.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for p in &pairs {
        let (a, b) = (idx_of[&p.a], idx_of[&p.b]);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }

    // Collect groups of >= 8 members: the cluster catalog.
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..tags.len() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 8).collect();
    clusters.sort_by_key(|g| std::cmp::Reverse(g.len()));

    println!(
        "\nphotometric cluster catalog: {} clusters (>= 8 members)",
        clusters.len()
    );
    println!(
        "{:>4} {:>9} {:>12} {:>12} {:>9} {:>9}",
        "#", "members", "RA center", "Dec center", "r_bright", "radius'"
    );
    for (i, members) in clusters.iter().take(12).enumerate() {
        // Angular centroid and extent.
        let mut sum = sdss::coords::Vec3::ZERO;
        let mut brightest = f32::INFINITY;
        for &m in members {
            sum = sum + tags[m].unit_vec().as_vec3();
            brightest = brightest.min(tags[m].mag(2));
        }
        let center = sum.normalized().expect("non-degenerate cluster");
        let pos = sdss::coords::SkyPos::from_unit_vec(center);
        let radius_arcmin = members
            .iter()
            .map(|&m| center.separation_deg(tags[m].unit_vec()) * 60.0)
            .fold(0.0, f64::max);
        println!(
            "{:>4} {:>9} {:>12.4} {:>12.4} {:>9.2} {:>9.2}",
            i + 1,
            members.len(),
            pos.ra_deg(),
            pos.dec_deg(),
            brightest,
            radius_arcmin
        );
    }
    Ok(())
}
