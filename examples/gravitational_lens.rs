//! The paper's flagship non-local query on the hash machine:
//!
//! > "find objects within 10 arcsec of each other which have identical
//! > colors, but may have a different brightness"
//!
//! ```sh
//! cargo run --release --example gravitational_lens
//! ```

use sdss::catalog::{SkyModel, TagObject};
use sdss::dataflow::{HashMachine, PairPredicate};
use sdss::query::ops::lens_pair_condition;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A denser sky so close pairs exist.
    let model = SkyModel {
        n_galaxies: 30_000,
        n_stars: 8_000,
        n_quasars: 2_000,
        cluster_fraction: 0.5,
        ..SkyModel::default()
    };
    let tags: Vec<TagObject> = model
        .generate()?
        .iter()
        .map(TagObject::from_photo)
        .collect();
    println!("searching {} objects for lens candidates...", tags.len());

    // The lens condition: <=10 arcsec, colors equal to 0.1 mag,
    // brightness differing by >= 0.5 mag.
    let pred: PairPredicate = Arc::new(|a, b| lens_pair_condition(a, b, 10.0, 0.1, 0.5));
    let machine = HashMachine {
        bucket_level: 10,
        margin_deg: 10.0 / 3600.0,
        n_workers: 4,
    };
    let (pairs, report) = machine.find_pairs(&tags, 10.0 / 3600.0, &pred)?;

    println!(
        "\nhash machine: {} buckets, {:.2}x replication, {} comparisons, {:.1} ms",
        report.n_buckets,
        report.replication_factor(),
        report.comparisons,
        report.wall.as_secs_f64() * 1e3
    );
    println!("found {} lens candidate pairs", pairs.len());

    let by_id: std::collections::HashMap<u64, &TagObject> =
        tags.iter().map(|t| (t.obj_id, t)).collect();
    println!(
        "\n{:<22} {:<22} {:>10} {:>7} {:>7}",
        "object A", "object B", "sep (\")", "r_A", "r_B"
    );
    for p in pairs.iter().take(10) {
        let (a, b) = (by_id[&p.a], by_id[&p.b]);
        println!(
            "{:<22} {:<22} {:>10.2} {:>7.2} {:>7.2}",
            p.a,
            p.b,
            p.sep_arcsec,
            a.mag(2),
            b.mag(2)
        );
    }
    if pairs.len() > 10 {
        println!("... and {} more", pairs.len() - 10);
    }
    Ok(())
}
