//! Cross-identify a "new survey" against the SDSS reference catalog —
//! the interoperability workload the paper designs the common HTM frame
//! for ("each subsequent astronomical survey will want to cross-identify
//! its objects with the SDSS catalog").
//!
//! ```sh
//! cargo run --release --example cross_match
//! ```

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdss::catalog::{SkyModel, TagObject};
use sdss::coords::SkyPos;
use sdss::dataflow::XMatcher;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The SDSS reference.
    let reference: Vec<TagObject> = SkyModel::default()
        .generate()?
        .iter()
        .map(TagObject::from_photo)
        .collect();
    println!("reference catalog: {} objects", reference.len());

    // A later survey of the same field: 80% of the same sources with
    // 0.4 arcsec astrometric scatter, plus 10% brand-new detections.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut probe: Vec<TagObject> = Vec::new();
    for (i, r) in reference.iter().enumerate() {
        if i % 5 == 4 {
            continue; // 20% not re-detected
        }
        let pos = SkyPos::from_unit_vec(r.unit_vec());
        let moved = pos.offset_by(rng.gen_range(0.0..360.0), rng.gen::<f64>() * 0.4 / 3600.0);
        let v = moved.unit_vec();
        probe.push(TagObject {
            obj_id: 5_000_000 + i as u64,
            x: v.x(),
            y: v.y(),
            z: v.z(),
            ..*r
        });
    }
    let n_common = probe.len();
    // New sources the reference has never seen (offset well away).
    for k in 0..reference.len() / 10 {
        let base = SkyPos::from_unit_vec(reference[k * 7 % reference.len()].unit_vec());
        let moved = base.offset_by(45.0, 30.0 / 3600.0); // 30" away: genuinely new
        let v = moved.unit_vec();
        probe.push(TagObject {
            obj_id: 9_000_000 + k as u64,
            x: v.x(),
            y: v.y(),
            z: v.z(),
            ..reference[k * 7 % reference.len()]
        });
    }
    println!(
        "probe catalog: {} objects ({} shared, {} new)",
        probe.len(),
        n_common,
        probe.len() - n_common
    );

    let matcher = XMatcher {
        bucket_level: 10,
        radius_arcsec: 2.0,
    };
    let (matches, report) = matcher.cross_match(&reference, &probe)?;

    println!("\ncross-match (2 arcsec radius):");
    println!("  matched:    {}", report.matched);
    println!(
        "  unmatched:  {}  (candidate new detections)",
        report.unmatched
    );
    println!(
        "  ambiguous:  {}  (nearest neighbor chosen)",
        report.ambiguous
    );
    println!(
        "  comparisons: {} (vs {} brute-force)",
        report.comparisons,
        reference.len() * probe.len()
    );

    let mean_sep: f64 =
        matches.iter().map(|m| m.sep_arcsec).sum::<f64>() / matches.len().max(1) as f64;
    println!("  mean match separation: {mean_sep:.3} arcsec");

    println!("\nfirst matches:");
    for m in matches.iter().take(5) {
        println!(
            "  probe {} -> sdss {} ({:.3}\")",
            probe[m.probe_idx as usize].obj_id, m.ref_obj_id, m.sep_arcsec
        );
    }
    Ok(())
}
