//! End-to-end archive operations: nightly chunks load into the science
//! archive (touch-once), replicate through the Figure-2 network, and a
//! result set streams out as blocked FITS packets.
//!
//! ```sh
//! cargo run --release --example archive_pipeline
//! ```

use sdss::archive::ArchiveNetwork;
use sdss::catalog::fits::{read_packets, tag_columns, tag_row, BlockedFitsStream};
use sdss::catalog::{SkyModel, TagObject};
use sdss::loader::{chunk::chunks_from_catalog, load_clustered};
use sdss::storage::{ObjectStore, StoreConfig, TagStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- nightly ingest -------------------------------------------------
    let model = SkyModel::default();
    let objs = model.generate()?;
    let chunks = chunks_from_catalog(objs, 7)?;
    let mut store = ObjectStore::new(StoreConfig::default())?;
    println!("loading {} nightly chunks:", chunks.len());
    for chunk in &chunks {
        let r = load_clustered(&mut store, chunk)?;
        println!(
            "  night {:>2}: {:>6} objects, {:>4} containers touched ({:.0}x/container), {:.0} objs/s",
            chunk.night,
            r.objects,
            r.container_touches,
            r.touches_per_container(),
            r.objects_per_sec()
        );
    }

    // --- replication timeline -------------------------------------------
    let mut net = ArchiveNetwork::sdss_default(2, 1);
    net.run(chunks.len() as u32);
    println!("\nreplication latency of night 0 (days):");
    for site in ["FNAL OA", "MSA", "LA-0", "MPA", "PA-0"] {
        println!(
            "  {:<8} {:>7.1}",
            site,
            net.latency_days(site, 0)?.unwrap_or(f64::NAN)
        );
    }

    // --- export a result set as a blocked FITS stream --------------------
    let tags = TagStore::from_store(&store);
    let domain = sdss::htm::Region::circle(185.0, 15.0, 1.0)?;
    let (rows, _) = tags.query_region(&domain, None)?;
    let mut sink: Vec<u8> = Vec::new();
    let mut stream = BlockedFitsStream::new(&mut sink, tag_columns(), 128);
    for t in &rows {
        stream.push_row(tag_row(t))?;
    }
    let (_, packets) = stream.finish()?;
    println!(
        "\nexported {} rows as {} blocked FITS packets ({} bytes)",
        rows.len(),
        packets,
        sink.len()
    );
    // Read it back to prove the stream is self-describing.
    let tables = read_packets(&sink)?;
    let total: usize = tables.iter().map(|t| t.rows.len()).sum();
    assert_eq!(total, rows.len());
    println!(
        "re-parsed {} packets: {} rows, columns: {:?}",
        tables.len(),
        total,
        tables[0]
            .columns
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );
    let _ = TagObject::SERIALIZED_LEN;
    Ok(())
}
