//! Quickstart: generate a sky, load the archive, ask it questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sdss::catalog::SkyModel;
use sdss::coords::angle::{format_dms, format_hms};
use sdss::query::Archive;
use sdss::storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A reproducible synthetic sky: ~10k objects in a 5-degree field
    //    (stands in for the telescope; see DESIGN.md).
    let model = SkyModel::default();
    let objs = model.generate()?;
    println!(
        "generated {} objects ({} galaxies, {} stars, {} quasars)",
        objs.len(),
        model.n_galaxies,
        model.n_stars,
        model.n_quasars
    );

    // 2. Load into the container-clustered store and project the tag
    //    partition (the 10 popular attributes).
    let mut store = ObjectStore::new(StoreConfig::default())?;
    store.insert_batch(&objs)?;
    let tags = TagStore::from_store(&store);
    println!(
        "store: {} containers, {:.1} MB full / {:.1} MB tags",
        store.num_containers(),
        store.bytes() as f64 / 1e6,
        tags.bytes() as f64 / 1e6
    );

    // 3. A cone search with photometric cuts — prepared once (with a
    //    plan-time cost estimate), parameterized per run, and routed to
    //    the tag partition automatically.
    let archive = Archive::new(store, Some(Arc::new(tags)));
    let stmt = archive.prepare(
        "SELECT objid, ra, dec, r, g - r AS color FROM photoobj \
         WHERE CIRCLE(185.0, 15.0, 1.0) AND r < $1 AND class = 'GALAXY' \
         ORDER BY r LIMIT 8",
    )?;
    println!(
        "\nplan-time estimate: ~{:.0} rows, {:.1} KB to scan, {} containers",
        stmt.estimate().est_rows,
        stmt.estimate().est_bytes as f64 / 1e3,
        stmt.estimate().containers_full + stmt.estimate().containers_partial
    );
    let out = stmt.run_with(&[21.0])?; // bind $1 = 21.0 — no re-plan
    println!(
        "bright galaxies within 1 deg (route: {:?}, first row after {:.2} ms):",
        out.stats.route,
        out.stats
            .time_to_first_row
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0)
    );
    println!(
        "{:<22} {:>13} {:>13} {:>7} {:>7}",
        "objid", "RA", "Dec", "r", "g-r"
    );
    for row in &out.rows {
        let ra = row[1].as_num().unwrap();
        let dec = row[2].as_num().unwrap();
        println!(
            "{:<22} {:>13} {:>13} {:>7.2} {:>7.2}",
            row[0],
            format_hms(ra),
            format_dms(dec),
            row[3].as_num().unwrap(),
            row[4].as_num().unwrap()
        );
    }

    // 4. Aggregates and the special angular-distance operator.
    let stats = archive
        .run("SELECT COUNT(*), AVG(r), MIN(r), MAX(r) FROM photoobj WHERE DIST(185, 15) < 2.5")?;
    let row = &stats.rows[0];
    println!(
        "\nwithin 2.5 deg of field center: {} objects, r in [{:.2}, {:.2}], mean {:.2}",
        row[0], row[2], row[3], row[1]
    );
    Ok(())
}
