//! Visualize an HTM cover: the Figure-4 style classification of mesh
//! trixels against a compound region, printed as an ASCII sky map.
//!
//! ```sh
//! cargo run --release --example sky_coverage
//! ```

use sdss::coords::{Frame, SkyPos};
use sdss::htm::cover::Classification;
use sdss::htm::{Cover, Region};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 4 query: a declination band intersected with a
    // latitude constraint in another coordinate system.
    let query = Region::band(Frame::Equatorial, 10.0, 25.0)?.intersect(&Region::band(
        Frame::Galactic,
        40.0,
        90.0,
    )?);
    let level = 6;
    let cover = Cover::compute(&query, level)?;
    let s = cover.stats();

    println!("query: 10<=dec<=25 AND 40<=gal_b<=90, cover level {level}");
    println!(
        "full {} / partial {} / rejected {} (visited {} nodes)\n",
        cover.full_ranges().count(),
        cover.partial_ranges().count(),
        s.rejected,
        s.nodes_visited
    );

    // ASCII map: RA 120..260, Dec -10..45; # = fully inside trixel,
    // + = boundary (exact test needed), . = outside.
    println!("RA 260 <------------------------------------------------------- 120");
    for dec_step in (0..22).rev() {
        let dec = -10.0 + dec_step as f64 * 2.5;
        let mut line = String::with_capacity(72);
        for ra_step in 0..70 {
            let ra = 260.0 - ra_step as f64 * 2.0;
            let p = SkyPos::new(ra, dec)?.unit_vec();
            let c = match cover.classify_point(p) {
                Classification::Inside => '#',
                Classification::Partial => '+',
                Classification::Outside => '.',
            };
            line.push(c);
        }
        println!("{line}  dec {dec:>5.1}");
    }
    println!("\n# = trixel fully inside (objects stream with no geometry test)");
    println!("+ = bisected trixel (only these need exact tests)");
    println!(". = rejected (never read)");
    Ok(())
}
