//! Minimal API-compatible shim for `parking_lot` (offline build): a
//! `Mutex` whose `lock()` returns the guard directly (no poisoning).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }
}
