//! Minimal API-compatible shim for `rand_chacha` (offline build): a real
//! ChaCha8 block cipher core behind the `ChaCha8Rng` name. Deterministic
//! per seed; output does not match upstream `rand_chacha` streams (the
//! workspace only depends on determinism and uniformity, not on specific
//! stream values).

pub mod rand_core {
    pub use rand::rand_core::{RngCore, SeedableRng};
}

use rand_core::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    next_word: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.next_word = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *k = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            next_word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next_word >= 16 {
            self.refill();
        }
        let w = self.buf[self.next_word];
        self.next_word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
