//! The `Strategy` trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive samples");
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Arbitrary-value strategies via `any::<T>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Finite floats only: the workspace roundtrips these through records and
// compares with `==`, so NaN inputs would produce vacuous failures.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

macro_rules! range_strategy {
    (float: $($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )+};
    (int: $($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )+};
}

range_strategy!(float: f32, f64);
range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
