//! Minimal API-compatible shim for `proptest` (offline build).
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, `any::<T>()`, numeric range
//! strategies, tuples, `prop_map`, `collection::{vec, btree_set}` and
//! `array::uniform5`. Cases are generated from a deterministic per-test
//! RNG; there is no shrinking — a failing case prints its inputs via the
//! assertion message instead.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, size_range)` — a vector of strategy-generated items.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `btree_set(element, size_range)` — sets may come out smaller than
    /// requested when duplicates collide, like upstream.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Uniform5<S>(S);

    /// Five independent draws from one strategy.
    pub fn uniform5<S: Strategy>(element: S) -> Uniform5<S> {
        Uniform5(element)
    }

    impl<S: Strategy> Strategy for Uniform5<S> {
        type Value = [S::Value; 5];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 5] {
            [
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
                self.0.sample(rng),
            ]
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Run one proptest case body; used by the `proptest!` expansion.
#[doc(hidden)]
pub type CaseResult = Result<(), String>;

#[macro_export]
macro_rules! proptest {
    (@cases ($cases:expr) $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $cases;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let dbg = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let result: $crate::CaseResult = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!("proptest case {}/{} failed: {}\n  inputs: {}", case + 1, cases, msg, dbg);
                    }
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@cases ($cfg.cases) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@cases ($crate::test_runner::cases()) $($rest)+);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Ok(());
        }
    };
}
