//! Deterministic per-test RNG and case-count configuration.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: usize,
}

impl ProptestConfig {
    pub fn with_cases(cases: usize) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: cases() }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// SplitMix64-based generator, seeded from the test's name so every
/// property explores a stable input sequence run over run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty size range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}
