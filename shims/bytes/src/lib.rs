//! Minimal API-compatible shim for the `bytes` crate.
//!
//! The build environment is offline, so this workspace vendors the small
//! slice of the `bytes` API the archive actually uses: the [`Buf`] /
//! [`BufMut`] cursor traits over little-endian fixed-width records, and
//! the [`Bytes`] / [`BytesMut`] owned buffers (cheap-clone payload
//! shipping between simulated nodes).

use std::sync::Arc;

/// Read cursor over a contiguous byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor that appends to a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_be_bytes());
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

/// Immutable, cheaply clonable byte buffer (shared payload).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(src),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range view sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::from(&self[lo..hi]),
            start: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { buf: src.to_vec() }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = Vec::new();
        buf.put_u64_le(0xdead_beef);
        buf.put_f64_le(1.5);
        buf.put_f32_le(2.5);
        buf.put_u8(7);
        buf.put_bytes(0, 3);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u64_le(), 0xdead_beef);
        assert_eq!(rd.get_f64_le(), 1.5);
        assert_eq!(rd.get_f32_le(), 2.5);
        assert_eq!(rd.get_u8(), 7);
        rd.advance(3);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_freeze_and_advance() {
        let mut bm = BytesMut::with_capacity(8);
        bm.extend_from_slice(&[1, 2, 3, 4]);
        let mut b = bm.freeze();
        assert_eq!(b.len(), 4);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(&b[..], &[2, 3, 4]);
        let c = b.clone();
        assert_eq!(c.len(), 3);
    }
}
