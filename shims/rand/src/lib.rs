//! Minimal API-compatible shim for `rand` (offline build).
//!
//! Provides the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`)
//! over a `RngCore`, plus the `rand_core` seeding traits re-exported by
//! the `rand_chacha` shim. Statistical quality matches what the test
//! suite needs (uniform, deterministic per seed); it does not reproduce
//! upstream `rand` output streams.

pub mod rand_core {
    /// Core source of randomness.
    pub trait RngCore {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64;

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    /// Seedable RNG construction.
    pub trait SeedableRng: Sized {
        type Seed: AsMut<[u8]> + Default;

        fn from_seed(seed: Self::Seed) -> Self;

        /// Expand a 64-bit seed with SplitMix64 (like upstream rand_core).
        fn seed_from_u64(mut state: u64) -> Self {
            let mut seed = Self::Seed::default();
            for chunk in seed.as_mut().chunks_mut(8) {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let b = z.to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
            Self::from_seed(seed)
        }
    }
}

pub use rand_core::{RngCore, SeedableRng};

/// Types `gen::<T>()` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by `gen_range` (generic over the output type, like
/// upstream, so float literals infer from the assignment context).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                // Treat the closed interval like the half-open one; the
                // endpoint has measure zero for the float workloads here.
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )+};
}

float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(42);
        for _ in 0..1000 {
            let f = rng.gen_range(10.0f64..20.0);
            assert!((10.0..20.0).contains(&f));
            let i = rng.gen_range(3u8..7);
            assert!((3..7).contains(&i));
            let c = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SplitMix(7);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
