//! Minimal API-compatible shim for `crossbeam::channel` (offline build).
//!
//! MPMC channels with the crossbeam semantics the workspace relies on:
//! cloneable senders *and* receivers, blocking `recv`, a blocking `iter()`
//! that ends when all senders disconnect, and `send` failing once every
//! receiver is gone (that failure is how scans observe cancellation).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned when all receivers disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap.max(1)))
    }

    /// An unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Unblock senders so they observe the disconnect.
                st.queue.clear();
                drop(st);
                self.chan.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fan_in_fan_out() {
        let (tx, rx) = unbounded::<usize>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let got: Vec<usize> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded::<u32>(1);
        let h = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }
}
