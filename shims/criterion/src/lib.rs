//! Minimal API-compatible shim for `criterion` (offline build).
//!
//! Real wall-clock measurement with a simple adaptive loop (no
//! statistics beyond min/mean): each benchmark warms up briefly, then
//! runs batches until ~300 ms of samples accumulate, and prints
//! `name  time: [mean ...]` lines shaped like criterion's output.
//! `CRITERION_MEASURE_MS` overrides the measurement budget.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// One measured result, exposed so harnesses can export machine-readable
/// reports next to the human-readable lines.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub iters: u64,
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Mean throughput in units/second if a throughput was declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let per_iter = match t {
                Throughput::Bytes(n) | Throughput::Elements(n) => n as f64,
            };
            per_iter / (self.mean_ns / 1e9)
        })
    }
}

pub struct Bencher {
    measurement: Duration,
    result: Option<(f64, f64, u64)>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup + calibration: find an iteration count that fills the
        // measurement window without timing each call individually.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.measurement / 4 && warm_iters < 10_000 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measurement.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);

        let mut total_ns = 0f64;
        let mut min_ns = f64::INFINITY;
        let mut iters = 0u64;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns * batch as f64;
            min_ns = min_ns.min(ns);
            iters += batch;
        }
        self.result = Some((total_ns / iters.max(1) as f64, min_ns, iters));
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    f: impl FnOnce(&mut Bencher),
) -> Measurement {
    let mut b = Bencher {
        measurement,
        result: None,
    };
    f(&mut b);
    let (mean_ns, min_ns, iters) = b.result.unwrap_or((f64::NAN, f64::NAN, 0));
    let m = Measurement {
        name: name.to_string(),
        mean_ns,
        min_ns,
        iters,
        throughput,
    };
    let rate = m
        .rate_per_sec()
        .map(|r| match throughput {
            Some(Throughput::Bytes(_)) => format!("  thrpt: {:.1} MiB/s", r / (1024.0 * 1024.0)),
            Some(Throughput::Elements(_)) => format!("  thrpt: {:.0} elem/s", r),
            None => String::new(),
        })
        .unwrap_or_default();
    println!(
        "{name:<40} time: [{} .. {}] ({} iters){rate}",
        fmt_time(min_ns),
        fmt_time(mean_ns),
        iters
    );
    m
}

#[derive(Default)]
pub struct Criterion {
    measurement: Option<Duration>,
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = name.into();
        let budget = self.measurement.unwrap_or_else(measure_budget);
        let m = run_one(&id.id, None, budget, f);
        self.measurements.push(m);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            measurement: None,
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = name.into();
        let full = format!("{}/{}", self.name, id.id);
        let budget = self
            .measurement
            .or(self.parent.measurement)
            .unwrap_or_else(measure_budget);
        let m = run_one(&full, self.throughput, budget, f);
        self.parent.measurements.push(m);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let budget = self
            .measurement
            .or(self.parent.measurement)
            .unwrap_or_else(measure_budget);
        let m = run_one(&full, self.throughput, budget, |b| f(b, input));
        self.parent.measurements.push(m);
        self
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
