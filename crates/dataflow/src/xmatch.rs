//! Cross-identification between catalogs.
//!
//! Paper, §Data Products: "As the reference astronomical data set, each
//! subsequent astronomical survey will want to cross-identify its objects
//! with the SDSS catalog" — and §Indexing the Sky motivates the common
//! HTM frame precisely because "areas in different catalogs map either
//! directly onto one another, or one is fully contained by another".
//!
//! [`XMatcher::cross_match`] finds, for every object of a *probe* catalog, its
//! nearest SDSS neighbor within a match radius, using the same
//! bucket-with-margin layout as the hash machine: probe objects are
//! joined against reference buckets, so cost is density-bound rather than
//! N·M.

use crate::DataflowError;
use sdss_catalog::TagObject;
/// The zone-partitioned build side, shared with the query engine's
/// `MATCH(a, b, radius)` pair join (it lives in `sdss_storage::zone`,
/// beneath both consumers).
pub use sdss_storage::ZoneIndex;

/// One cross-match result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// Index into the probe catalog.
    pub probe_idx: u32,
    /// Matched reference object id.
    pub ref_obj_id: u64,
    pub sep_arcsec: f64,
}

/// Summary of a cross-match run.
#[derive(Debug, Clone)]
pub struct XMatchReport {
    pub probes: usize,
    pub matched: usize,
    /// Probe objects with no reference neighbor in the radius.
    pub unmatched: usize,
    /// Probe objects with 2+ candidates (matched to the nearest).
    pub ambiguous: usize,
    /// Candidate distance computations performed.
    pub comparisons: usize,
}

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct XMatcher {
    /// Bucket level for the reference index.
    pub bucket_level: u8,
    /// Match radius, arcseconds.
    pub radius_arcsec: f64,
}

impl Default for XMatcher {
    fn default() -> Self {
        XMatcher {
            bucket_level: 10,
            radius_arcsec: 2.0, // typical astrometric match tolerance
        }
    }
}

impl XMatcher {
    /// Nearest-neighbor match of every probe position against the
    /// reference catalog. Returns one [`Match`] per probe that has at
    /// least one reference object within the radius.
    pub fn cross_match(
        &self,
        reference: &[TagObject],
        probe: &[TagObject],
    ) -> Result<(Vec<Match>, XMatchReport), DataflowError> {
        if self.radius_arcsec <= 0.0 {
            return Err(DataflowError::InvalidConfig(
                "non-positive match radius".into(),
            ));
        }
        // The zone-partitioned build side, shared with the query
        // engine's MATCH join.
        let index = ZoneIndex::build(reference, self.bucket_level)
            .map_err(|e| DataflowError::InvalidConfig(e.to_string()))?;

        let mut matches = Vec::new();
        let mut unmatched = 0usize;
        let mut ambiguous = 0usize;
        let mut comparisons = 0usize;
        for (pi, p) in probe.iter().enumerate() {
            let mut best: Option<(u64, f64)> = None;
            let mut candidates = 0usize;
            comparisons += index
                .neighbors_within(reference, p.unit_vec(), self.radius_arcsec, |ri, sep| {
                    candidates += 1;
                    if best.is_none_or(|(_, b)| sep < b) {
                        best = Some((reference[ri as usize].obj_id, sep));
                    }
                })
                .map_err(|e| DataflowError::InvalidConfig(e.to_string()))?;
            match best {
                Some((ref_obj_id, sep_arcsec)) => {
                    if candidates > 1 {
                        ambiguous += 1;
                    }
                    matches.push(Match {
                        probe_idx: pi as u32,
                        ref_obj_id,
                        sep_arcsec,
                    });
                }
                None => unmatched += 1,
            }
        }
        let report = XMatchReport {
            probes: probe.len(),
            matched: matches.len(),
            unmatched,
            ambiguous,
            comparisons,
        };
        Ok((matches, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sdss_catalog::{SkyModel, TagObject};
    use sdss_skycoords::SkyPos;

    fn reference(seed: u64) -> Vec<TagObject> {
        SkyModel::small(seed)
            .generate()
            .unwrap()
            .iter()
            .map(TagObject::from_photo)
            .collect()
    }

    /// A probe catalog: the reference positions jittered by sub-arcsecond
    /// astrometric noise (a later survey observing the same sky).
    fn jittered_probe(reference: &[TagObject], jitter_arcsec: f64, seed: u64) -> Vec<TagObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        reference
            .iter()
            .map(|r| {
                let pos = SkyPos::from_unit_vec(r.unit_vec());
                let pa: f64 = rng.gen_range(0.0..360.0);
                let dr: f64 = rng.gen();
                let moved = pos.offset_by(pa, dr * jitter_arcsec / 3600.0);
                let v = moved.unit_vec();
                TagObject {
                    obj_id: r.obj_id + 1_000_000, // new survey, new ids
                    x: v.x(),
                    y: v.y(),
                    z: v.z(),
                    ..*r
                }
            })
            .collect()
    }

    #[test]
    fn recovers_jittered_counterparts() {
        let refs = reference(1);
        let probe = jittered_probe(&refs, 0.5, 2);
        let matcher = XMatcher {
            bucket_level: 10,
            radius_arcsec: 2.0,
        };
        let (matches, report) = matcher.cross_match(&refs, &probe).unwrap();
        // Every probe must match, and (almost always) to its own source.
        assert_eq!(report.unmatched, 0, "{report:?}");
        let mut correct = 0;
        for m in &matches {
            if probe[m.probe_idx as usize].obj_id == m.ref_obj_id + 1_000_000 {
                correct += 1;
            }
            assert!(m.sep_arcsec <= 2.0);
        }
        // Dense cluster cores can genuinely swap nearest neighbors;
        // demand 99%+.
        assert!(
            correct * 100 >= matches.len() * 99,
            "only {correct}/{} correct",
            matches.len()
        );
    }

    #[test]
    fn distant_probes_do_not_match() {
        let refs = reference(3);
        // A probe field on the opposite side of the sky.
        let mut probe = refs.clone();
        for p in &mut probe {
            let pos = SkyPos::from_unit_vec(p.unit_vec());
            let anti = SkyPos::new(pos.ra_deg() + 180.0, -pos.dec_deg()).unwrap();
            let v = anti.unit_vec();
            p.x = v.x();
            p.y = v.y();
            p.z = v.z();
        }
        let (matches, report) = XMatcher::default().cross_match(&refs, &probe).unwrap();
        assert!(matches.is_empty());
        assert_eq!(report.unmatched, probe.len());
    }

    #[test]
    fn nearest_wins_among_candidates() {
        // Two reference objects 1.5" apart; probe sits 0.3" from one.
        let a_pos = SkyPos::new(185.0, 15.0).unwrap();
        let b_pos = a_pos.offset_by(90.0, 1.5 / 3600.0);
        let p_pos = a_pos.offset_by(90.0, 0.3 / 3600.0);
        let mk = |pos: SkyPos, id: u64| {
            let v = pos.unit_vec();
            TagObject {
                obj_id: id,
                x: v.x(),
                y: v.y(),
                z: v.z(),
                ..TagObject::default()
            }
        };
        let refs = vec![mk(a_pos, 1), mk(b_pos, 2)];
        let probe = vec![mk(p_pos, 100)];
        let matcher = XMatcher {
            bucket_level: 10,
            radius_arcsec: 3.0,
        };
        let (matches, report) = matcher.cross_match(&refs, &probe).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].ref_obj_id, 1, "nearest neighbor wins");
        assert_eq!(report.ambiguous, 1);
    }

    #[test]
    fn bucket_boundaries_do_not_lose_matches() {
        // Brute-force cross-check on a dense field.
        let refs = reference(4);
        let probe = jittered_probe(&refs[..300], 1.0, 5);
        let matcher = XMatcher {
            bucket_level: 12, // tiny buckets ⇒ many boundary crossings
            radius_arcsec: 3.0,
        };
        let (matches, _) = matcher.cross_match(&refs, &probe).unwrap();
        // Brute force nearest neighbor.
        for (pi, p) in probe.iter().enumerate() {
            let mut best: Option<(u64, f64)> = None;
            for r in &refs {
                let sep = p.unit_vec().separation_deg(r.unit_vec()) * 3600.0;
                if sep <= 3.0 && best.is_none_or(|(_, b)| sep < b) {
                    best = Some((r.obj_id, sep));
                }
            }
            let got = matches.iter().find(|m| m.probe_idx == pi as u32);
            match (best, got) {
                (Some((want_id, _)), Some(m)) => assert_eq!(m.ref_obj_id, want_id),
                (None, None) => {}
                (want, got) => panic!("probe {pi}: want {want:?}, got {got:?}"),
            }
        }
    }

    #[test]
    fn zone_index_streams_all_pairs_within_radius() {
        // neighbors_within is a pair join, not nearest-only: every
        // reference inside the radius must be reported exactly once,
        // including across zone boundaries (tiny level-12 buckets).
        let refs = reference(6);
        let probe = jittered_probe(&refs[..200], 2.0, 7);
        let radius = 5.0;
        let index = ZoneIndex::build(&refs, 12).unwrap();
        for p in &probe {
            let mut got: Vec<(u32, f64)> = Vec::new();
            index
                .neighbors_within(&refs, p.unit_vec(), radius, |ri, sep| got.push((ri, sep)))
                .unwrap();
            let mut want: Vec<u32> = refs
                .iter()
                .enumerate()
                .filter(|(_, r)| p.unit_vec().separation_deg(r.unit_vec()) * 3600.0 <= radius)
                .map(|(i, _)| i as u32)
                .collect();
            let mut got_idx: Vec<u32> = got.iter().map(|(i, _)| *i).collect();
            got_idx.sort_unstable();
            want.sort_unstable();
            assert_eq!(got_idx, want);
            for (ri, sep) in got {
                let direct = p.unit_vec().separation_deg(refs[ri as usize].unit_vec()) * 3600.0;
                assert!((sep - direct).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn level_for_radius_scales_with_cap_size() {
        assert_eq!(ZoneIndex::level_for_radius(2.0), 10);
        assert_eq!(ZoneIndex::level_for_radius(1000.0), 7);
        assert_eq!(ZoneIndex::level_for_radius(10_000.0), 4);
    }

    #[test]
    fn invalid_radius_rejected() {
        let matcher = XMatcher {
            bucket_level: 10,
            radius_arcsec: 0.0,
        };
        assert!(matcher.cross_match(&[], &[]).is_err());
    }
}
