//! The hash machine: spatial hash join for pairwise comparisons.
//!
//! Paper, §Scalable Server Architectures: "The hash phase scans the entire
//! dataset, selects a subset of the objects based on some predicate, and
//! 'hashes' each object to the appropriate buckets — a single object may
//! go to several buckets (to allow objects near the edges of a region to
//! go to all the neighboring regions as well). In a second phase all the
//! objects in a bucket are compared to one another. [...] These
//! operations are analogous to relational hash-join. [...] The
//! application of the hash-machine to tasks like finding gravitational
//! lenses or clustering by spectral type [...] should be obvious: each
//! bucket represents a neighborhood."
//!
//! Buckets are HTM trixels at a configurable level. Margin replication
//! sends each object to every trixel intersecting a cap of `margin_deg`
//! around it; with `margin ≥ pair radius` no cross-bucket pair can be
//! missed (proof in `find_pairs` docs), which the E15 ablation probes by
//! shrinking the margin below the radius.

use crate::DataflowError;
use crossbeam::channel::unbounded;
use sdss_catalog::TagObject;
use sdss_htm::{lookup_id, Cover, Region};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// User-supplied pair predicate ("bucket analysis function").
pub type PairPredicate = Arc<dyn Fn(&TagObject, &TagObject) -> bool + Send + Sync>;

/// One matched pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairResult {
    pub a: u64,
    pub b: u64,
    pub sep_arcsec: f64,
}

impl PairResult {
    /// Canonical ordering so result sets compare independent of discovery
    /// order.
    fn canonical(a: &TagObject, b: &TagObject) -> PairResult {
        let sep = a.unit_vec().separation_deg(b.unit_vec()) * 3600.0;
        if a.obj_id <= b.obj_id {
            PairResult {
                a: a.obj_id,
                b: b.obj_id,
                sep_arcsec: sep,
            }
        } else {
            PairResult {
                a: b.obj_id,
                b: a.obj_id,
                sep_arcsec: sep,
            }
        }
    }
}

/// Statistics of one hash-machine run.
#[derive(Debug, Clone)]
pub struct HashReport {
    pub n_objects: usize,
    pub n_buckets: usize,
    /// Total bucket entries (> n_objects because of margin replication).
    pub n_entries: usize,
    /// Candidate pairs actually compared.
    pub comparisons: usize,
    pub pairs: usize,
    pub wall: Duration,
}

impl HashReport {
    /// Replication overhead: entries per object (1.0 = no duplication).
    pub fn replication_factor(&self) -> f64 {
        self.n_entries as f64 / self.n_objects.max(1) as f64
    }
}

/// The hash machine configuration.
#[derive(Debug, Clone, Copy)]
pub struct HashMachine {
    /// HTM level of the buckets. Deeper ⇒ smaller neighborhoods, less
    /// quadratic work, more replication.
    pub bucket_level: u8,
    /// Replication margin in degrees (normally = the pair radius).
    pub margin_deg: f64,
    /// Worker threads for the bucket phase.
    pub n_workers: usize,
}

impl Default for HashMachine {
    fn default() -> Self {
        HashMachine {
            bucket_level: 9,
            margin_deg: 10.0 / 3600.0,
            n_workers: 4,
        }
    }
}

impl HashMachine {
    /// Find all pairs within `radius_deg` satisfying `pred`.
    ///
    /// Correctness: every pair (a, b) with `sep ≤ radius ≤ margin` is
    /// found exactly once. b is replicated to every trixel intersecting
    /// `cap(b, margin)`; since `sep(a,b) ≤ margin`, a's home trixel
    /// contains a point of that cap (a itself), so b lands in a's home
    /// bucket. The pair is emitted only from the home bucket of its
    /// smaller-id member, hence exactly once.
    pub fn find_pairs(
        &self,
        tags: &[TagObject],
        radius_deg: f64,
        pred: &PairPredicate,
    ) -> Result<(Vec<PairResult>, HashReport), DataflowError> {
        if self.n_workers == 0 {
            return Err(DataflowError::InvalidConfig("zero workers".into()));
        }
        if radius_deg < 0.0 || self.margin_deg < 0.0 {
            return Err(DataflowError::InvalidConfig(
                "negative radius or margin".into(),
            ));
        }
        let start = Instant::now();

        // --- Phase 1: hash objects to buckets (with margin replication).
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut homes: Vec<u64> = Vec::with_capacity(tags.len());
        let mut n_entries = 0usize;
        for (idx, t) in tags.iter().enumerate() {
            let v = t.unit_vec();
            let home = lookup_id(v, self.bucket_level)
                .map_err(|e| DataflowError::InvalidConfig(e.to_string()))?
                .raw();
            homes.push(home);
            if self.margin_deg > 0.0 {
                let cap = Region::circle_vec(v, self.margin_deg)
                    .map_err(|e| DataflowError::InvalidConfig(e.to_string()))?;
                let cover = Cover::compute(&cap, self.bucket_level)
                    .map_err(|e| DataflowError::InvalidConfig(e.to_string()))?;
                for id in cover.touched_ranges().iter_ids() {
                    buckets.entry(id).or_default().push(idx as u32);
                    n_entries += 1;
                }
            } else {
                buckets.entry(home).or_default().push(idx as u32);
                n_entries += 1;
            }
        }

        // --- Phase 2: per-bucket all-pairs, parallel over buckets.
        let bucket_list: Vec<(u64, Vec<u32>)> = buckets.into_iter().collect();
        let n_buckets = bucket_list.len();
        let (tx, rx) = unbounded::<PairResult>();
        let chunk = bucket_list.len().div_ceil(self.n_workers).max(1);

        std::thread::scope(|scope| {
            for work in bucket_list.chunks(chunk) {
                let tx = tx.clone();
                let pred = pred.clone();
                let homes = &homes;
                scope.spawn(move || {
                    for (bucket_id, members) in work {
                        for i in 0..members.len() {
                            for j in (i + 1)..members.len() {
                                let (ia, ib) = (members[i] as usize, members[j] as usize);
                                if ia == ib {
                                    continue;
                                }
                                let (a, b) = (&tags[ia], &tags[ib]);
                                // Emit from the smaller-id member's home
                                // bucket only (exactly-once rule).
                                let anchor_home = if a.obj_id <= b.obj_id {
                                    homes[ia]
                                } else {
                                    homes[ib]
                                };
                                if anchor_home != *bucket_id {
                                    continue;
                                }
                                let sep = a.unit_vec().separation_deg(b.unit_vec());
                                if sep <= radius_deg && pred(a, b) {
                                    let _ = tx.send(PairResult::canonical(a, b));
                                }
                            }
                        }
                    }
                });
            }
            drop(tx);
            let mut pairs = Vec::new();
            for p in rx.iter() {
                pairs.push(p);
            }
            pairs.sort_by_key(|x| (x.a, x.b));
            pairs.dedup_by(|x, y| (x.a, x.b) == (y.a, y.b));
            let comparisons = count_comparisons(&bucket_list, &homes, tags);
            let report = HashReport {
                n_objects: tags.len(),
                n_buckets,
                n_entries,
                comparisons,
                pairs: pairs.len(),
                wall: start.elapsed(),
            };
            Ok((pairs, report))
        })
    }
}

/// Count the candidate comparisons the bucket phase performs (pairs that
/// pass the exactly-once anchor rule). Separated from the hot loop so the
/// loop stays simple.
fn count_comparisons(buckets: &[(u64, Vec<u32>)], homes: &[u64], tags: &[TagObject]) -> usize {
    let mut n = 0usize;
    for (bucket_id, members) in buckets {
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let (ia, ib) = (members[i] as usize, members[j] as usize);
                let (a, b) = (&tags[ia], &tags[ib]);
                let anchor_home = if a.obj_id <= b.obj_id {
                    homes[ia]
                } else {
                    homes[ib]
                };
                if anchor_home == *bucket_id {
                    n += 1;
                }
            }
        }
    }
    n
}

/// O(n²) reference implementation for tests and the E7 crossover bench.
pub fn brute_force_pairs(
    tags: &[TagObject],
    radius_deg: f64,
    pred: &PairPredicate,
) -> Vec<PairResult> {
    let mut out = Vec::new();
    for i in 0..tags.len() {
        for j in (i + 1)..tags.len() {
            let (a, b) = (&tags[i], &tags[j]);
            let sep = a.unit_vec().separation_deg(b.unit_vec());
            if sep <= radius_deg && pred(a, b) {
                out.push(PairResult::canonical(a, b));
            }
        }
    }
    out.sort_by_key(|x| (x.a, x.b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::{SkyModel, TagObject};

    fn tags(seed: u64, n: usize) -> Vec<TagObject> {
        let model = SkyModel {
            n_galaxies: n * 7 / 10,
            n_stars: n * 2 / 10,
            n_quasars: n - n * 7 / 10 - n * 2 / 10,
            ..SkyModel::small(seed)
        };
        model
            .generate()
            .unwrap()
            .iter()
            .map(TagObject::from_photo)
            .collect()
    }

    fn any_pair() -> PairPredicate {
        Arc::new(|_, _| true)
    }

    #[test]
    fn hash_matches_brute_force_proximity() {
        let ts = tags(1, 1200);
        let radius = 30.0 / 3600.0; // 30 arcsec
        let machine = HashMachine {
            bucket_level: 8,
            margin_deg: radius,
            n_workers: 4,
        };
        let (pairs, report) = machine.find_pairs(&ts, radius, &any_pair()).unwrap();
        let brute = brute_force_pairs(&ts, radius, &any_pair());
        assert_eq!(pairs, brute, "hash machine must find exactly the pairs");
        assert!(report.pairs == brute.len());
        assert!(report.n_buckets > 0);
        // The clustered sky must actually contain close pairs for this
        // test to mean anything.
        assert!(!brute.is_empty(), "no close pairs in the test sky");
    }

    #[test]
    fn exactly_once_no_duplicates() {
        let ts = tags(2, 800);
        let radius = 60.0 / 3600.0;
        let machine = HashMachine {
            bucket_level: 7, // coarse buckets → heavy replication
            margin_deg: radius,
            n_workers: 3,
        };
        let (pairs, _) = machine.find_pairs(&ts, radius, &any_pair()).unwrap();
        let mut keys: Vec<(u64, u64)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate pairs emitted");
    }

    #[test]
    fn margin_smaller_than_radius_misses_pairs() {
        // The E15 ablation in miniature: margin 0 loses cross-bucket pairs.
        let ts = tags(3, 1500);
        let radius = 60.0 / 3600.0;
        let with_margin = HashMachine {
            bucket_level: 9,
            margin_deg: radius,
            n_workers: 4,
        };
        let without_margin = HashMachine {
            bucket_level: 9,
            margin_deg: 0.0,
            n_workers: 4,
        };
        let (full, _) = with_margin.find_pairs(&ts, radius, &any_pair()).unwrap();
        let (partial, rep) = without_margin.find_pairs(&ts, radius, &any_pair()).unwrap();
        assert!(
            partial.len() < full.len(),
            "margin 0 found {} of {} pairs — expected missing cross-bucket pairs",
            partial.len(),
            full.len()
        );
        assert!((rep.replication_factor() - 1.0).abs() < 1e-9);
        // Everything it did find is correct.
        for p in &partial {
            assert!(full.contains(p));
        }
    }

    #[test]
    fn lens_predicate_filters() {
        let ts = tags(4, 1500);
        let radius = 10.0 / 3600.0;
        // The paper's lens condition inlined: within 10 arcsec, identical
        // colors (0.1 mag tolerance), brightness differing by >= 0.5 mag.
        let lens: PairPredicate = Arc::new(move |a, b| {
            let sep = a.unit_vec().separation_deg(b.unit_vec()) * 3600.0;
            let colors_match = (a.color_ug() - b.color_ug()).abs() <= 0.1
                && (a.color_gr() - b.color_gr()).abs() <= 0.1
                && (a.color_ri() - b.color_ri()).abs() <= 0.1
                && (a.color_iz() - b.color_iz()).abs() <= 0.1;
            sep <= 10.0 && colors_match && (a.mag(2) - b.mag(2)).abs() >= 0.5
        });
        let machine = HashMachine {
            bucket_level: 9,
            margin_deg: radius,
            n_workers: 4,
        };
        let (pairs, _) = machine.find_pairs(&ts, radius, &lens).unwrap();
        let brute = brute_force_pairs(&ts, radius, &lens);
        assert_eq!(pairs, brute);
        // Lens pairs are a subset of proximity pairs.
        let (all, _) = machine.find_pairs(&ts, radius, &any_pair()).unwrap();
        assert!(pairs.len() <= all.len());
    }

    #[test]
    fn config_validation() {
        let ts = tags(5, 50);
        let bad_workers = HashMachine {
            n_workers: 0,
            ..HashMachine::default()
        };
        assert!(bad_workers.find_pairs(&ts, 0.01, &any_pair()).is_err());
        let bad_radius = HashMachine::default();
        assert!(bad_radius.find_pairs(&ts, -1.0, &any_pair()).is_err());
    }

    #[test]
    fn empty_input() {
        let machine = HashMachine::default();
        let (pairs, report) = machine.find_pairs(&[], 0.01, &any_pair()).unwrap();
        assert!(pairs.is_empty());
        assert_eq!(report.n_objects, 0);
    }

    #[test]
    fn report_counts_replication() {
        let ts = tags(6, 400);
        let radius = 120.0 / 3600.0;
        let machine = HashMachine {
            bucket_level: 10, // trixel size ~ margin → strong replication
            margin_deg: radius,
            n_workers: 2,
        };
        let (_, report) = machine.find_pairs(&ts, radius, &any_pair()).unwrap();
        assert!(report.replication_factor() >= 1.0);
        assert!(report.n_entries >= report.n_objects);
    }
}
