//! Parallel sorting: run generation + k-way merge.
//!
//! The paper cites the Sort Benchmark ("Current systems have demonstrated
//! that they can sort at about 100 MBps using commodity hardware") as the
//! simplest river system. This module is that sorting network: split the
//! input over workers, sort runs locally in parallel, merge with a loser
//! heap. The E10 bench measures MB/s versus worker count.

use crate::DataflowError;
use sdss_catalog::TagObject;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Sort key extractor.
pub type KeyFn = fn(&TagObject) -> f64;

/// Report of one parallel sort.
#[derive(Debug, Clone)]
pub struct SortReport {
    pub workers: usize,
    pub records: usize,
    pub bytes: usize,
    pub wall: Duration,
}

impl SortReport {
    pub fn mbps(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Sort tags by `key` using `workers` parallel run-sorters and a final
/// k-way merge. Stable w.r.t. nothing (keys with ties may reorder), like
/// any parallel sort.
pub fn parallel_sort_by_key(
    tags: &[TagObject],
    key: KeyFn,
    workers: usize,
) -> Result<(Vec<TagObject>, SortReport), DataflowError> {
    if workers == 0 {
        return Err(DataflowError::InvalidConfig("zero workers".into()));
    }
    let start = Instant::now();
    let chunk = tags.len().div_ceil(workers).max(1);

    // Phase 1: sorted runs in parallel.
    let mut runs: Vec<Vec<TagObject>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = tags
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    let mut run = c.to_vec();
                    run.sort_by(|a, b| key(a).total_cmp(&key(b)));
                    run
                })
            })
            .collect();
        for h in handles {
            runs.push(h.join().expect("sort worker panicked"));
        }
    });

    // Phase 2: k-way merge with a min-heap of run heads.
    struct Head {
        key: f64,
        run: usize,
        idx: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, o: &Self) -> bool {
            self.key == o.key
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Head {
        fn cmp(&self, o: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we need the min.
            o.key.total_cmp(&self.key)
        }
    }

    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (r, run) in runs.iter().enumerate() {
        if !run.is_empty() {
            heap.push(Head {
                key: key(&run[0]),
                run: r,
                idx: 0,
            });
        }
    }
    let mut out = Vec::with_capacity(tags.len());
    while let Some(h) = heap.pop() {
        out.push(runs[h.run][h.idx]);
        let next = h.idx + 1;
        if next < runs[h.run].len() {
            heap.push(Head {
                key: key(&runs[h.run][next]),
                run: h.run,
                idx: next,
            });
        }
    }

    let report = SortReport {
        workers,
        records: out.len(),
        bytes: out.len() * TagObject::SERIALIZED_LEN,
        wall: start.elapsed(),
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;

    fn tags(seed: u64) -> Vec<TagObject> {
        SkyModel::small(seed)
            .generate()
            .unwrap()
            .iter()
            .map(TagObject::from_photo)
            .collect()
    }

    fn r_mag(t: &TagObject) -> f64 {
        t.mags[2] as f64
    }

    #[test]
    fn sorted_output_matches_serial_sort() {
        let ts = tags(1);
        for workers in [1, 2, 4, 7] {
            let (sorted, report) = parallel_sort_by_key(&ts, r_mag, workers).unwrap();
            assert_eq!(sorted.len(), ts.len());
            for w in sorted.windows(2) {
                assert!(
                    r_mag(&w[0]) <= r_mag(&w[1]),
                    "not sorted ({workers} workers)"
                );
            }
            // Same multiset of keys as input.
            let mut got: Vec<f64> = sorted.iter().map(r_mag).collect();
            let mut want: Vec<f64> = ts.iter().map(r_mag).collect();
            got.sort_by(f64::total_cmp);
            want.sort_by(f64::total_cmp);
            assert_eq!(got, want);
            assert_eq!(report.records, ts.len());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (sorted, _) = parallel_sort_by_key(&[], r_mag, 4).unwrap();
        assert!(sorted.is_empty());
        let one = &tags(2)[..1];
        let (sorted, _) = parallel_sort_by_key(one, r_mag, 4).unwrap();
        assert_eq!(sorted.len(), 1);
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(parallel_sort_by_key(&tags(3), r_mag, 0).is_err());
    }

    #[test]
    fn throughput_is_reported() {
        let ts = tags(4);
        let (_, report) = parallel_sort_by_key(&ts, r_mag, 2).unwrap();
        assert!(report.mbps() > 0.0);
        assert_eq!(report.bytes, ts.len() * TagObject::SERIALIZED_LEN);
    }
}
