//! # The morsel-driven scan worker pool
//!
//! The paper's scan machine got intra-query parallelism for free: one
//! query's containers were striped across ~20 nodes, so every spindle
//! and CPU worked on the same sweep at once. This module is the
//! single-node analog: a pool of worker threads draining a shared
//! [`MorselQueue`] of container-sized work items.
//!
//! ## The morsel model
//!
//! A *morsel* is one container's worth of scan work — big enough to
//! amortize dispatch (a claim is one `fetch_add`), small enough that
//! workers re-balance at container granularity. The queue is built from
//! the touched-container list of one scan, pre-sharded into byte-balanced
//! per-worker runs by the same greedy rule `PartitionMap` uses to stripe
//! containers across servers (spatially contiguous, so each worker walks
//! neighboring containers). A worker drains its home shard first and then
//! *steals* from the fullest remaining shard; a fat container therefore
//! delays only the worker holding it, never the whole scan. Workers stop
//! between morsels when the job is cancelled, so teardown latency is one
//! morsel, not one scan.
//!
//! ## Slot accounting contract with `Archive` admission
//!
//! The query engine's admission pool (`sdss_query::Archive`) accounts
//! slots in **worker threads, not queries**: a query granted `W` workers
//! holds `W` slots for as long as its scan runs, so an 8-worker sweep
//! occupies the machine exactly like 8 single-worker queries and the
//! admission bound stays a true bound on concurrent scan threads. Pools
//! must therefore never spawn more workers than the caller was granted —
//! [`WorkerPool::run`] takes the worker count from its queue, which the
//! caller sized to its grant. Dataflow machines that schedule their own
//! jobs (no admission pool above them) account the same way through
//! [`crate::sched::BatchScheduler`]: one pool job per sweep, classed
//! [`JobClass::Interactive`] or [`JobClass::Batch`].

use crate::sched::{BatchScheduler, JobClass, JobState};
use crate::DataflowError;
use sdss_storage::MorselQueue;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a finished pool job reports.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Worker threads that ran.
    pub workers: usize,
    /// Total morsels dispatched.
    pub morsels: u64,
    /// Morsels each worker claimed (home shard + steals).
    pub per_worker_morsels: Vec<u64>,
    /// Wall time of the drain.
    pub wall: Duration,
    /// Whether the job ran to completion (false = a worker cancelled).
    pub completed: bool,
}

/// A worker pool that drains morsel queues with scoped threads, keeping
/// job-level accounting in a [`BatchScheduler`] so interactive scans and
/// batch sweeps are classed exactly like the paper's machines.
#[derive(Debug)]
pub struct WorkerPool {
    sched: Mutex<BatchScheduler>,
    job_done: Condvar,
}

impl WorkerPool {
    /// A pool running up to `slots` concurrent jobs — further jobs block
    /// in the scheduler queue until a slot frees (worker threads within
    /// a job are bounded by each job's queue, not by `slots`).
    pub fn new(slots: usize) -> WorkerPool {
        WorkerPool {
            sched: Mutex::new(BatchScheduler::new(slots)),
            job_done: Condvar::new(),
        }
    }

    /// Drain `queue` with one scoped worker thread per shard. `work`
    /// receives `(worker index, morsel index)` and returns `false` to
    /// cancel the whole job (all workers stop between morsels).
    ///
    /// The job is submitted/dispatched/completed in the pool's
    /// [`BatchScheduler`] under `class`, so observers see scan jobs in
    /// the same queue the hash/river machines use — and the slot bound
    /// is real: the call blocks until the scheduler dispatches its job.
    pub fn run(
        &self,
        name: &str,
        class: JobClass,
        est_seconds: f64,
        queue: &MorselQueue,
        work: impl Fn(usize, usize) -> bool + Sync,
    ) -> Result<PoolReport, DataflowError> {
        let job_id = {
            let mut sched = self.sched.lock().unwrap();
            let id = sched.submit(name, class, est_seconds);
            // Jobs run synchronously on the caller's thread, so wait for
            // the scheduler to actually grant a slot — completing a job
            // that never dispatched would strand it Queued forever.
            loop {
                while sched.dispatch().is_some() {}
                if sched.state_of(id) == Some(JobState::Running) {
                    break;
                }
                sched = self.job_done.wait(sched).unwrap();
            }
            id
        };
        let report = drain(queue, &work);
        self.sched.lock().unwrap().complete(job_id);
        self.job_done.notify_all();
        Ok(report)
    }

    /// Jobs finished so far (scheduler accounting).
    pub fn finished_jobs(&self) -> usize {
        self.sched.lock().unwrap().finished()
    }
}

/// Drain a [`MorselQueue`] with one scoped thread per worker shard —
/// the pool primitive, usable without scheduler accounting. `work`
/// returns `false` to cancel; all workers observe the cancel between
/// morsels.
pub fn drain(queue: &MorselQueue, work: &(impl Fn(usize, usize) -> bool + Sync)) -> PoolReport {
    let workers = queue.workers();
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Some(m) = queue.next(w) else { break };
                    if !work(w, m) {
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });
    PoolReport {
        workers,
        morsels: queue.total_dispatched(),
        per_worker_morsels: (0..workers).map(|w| queue.dispatched(w)).collect(),
        wall: start.elapsed(),
        completed: !stop.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn pool_drains_every_morsel_once() {
        let sizes: Vec<usize> = (0..53).map(|i| 500 + i * 11).collect();
        let queue = MorselQueue::build(&sizes, 4);
        let seen: Vec<AtomicUsize> = (0..53).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(2);
        let report = pool
            .run("sweep", JobClass::Interactive, 0.1, &queue, |_, m| {
                seen[m].fetch_add(1, Ordering::Relaxed);
                true
            })
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.workers, 4);
        assert_eq!(report.morsels, 53);
        assert_eq!(report.per_worker_morsels.iter().sum::<u64>(), 53);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "morsel {i}");
        }
        assert_eq!(pool.finished_jobs(), 1);
    }

    #[test]
    fn contended_pool_serializes_jobs_without_stranding_them() {
        // One slot, two concurrent jobs: the second blocks until the
        // first completes; both finish and none is left Queued/Running.
        let pool = Arc::new(WorkerPool::new(1));
        let sizes = vec![10usize; 40];
        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = pool.clone();
            let sizes = sizes.clone();
            handles.push(std::thread::spawn(move || {
                let queue = MorselQueue::build(&sizes, 2);
                pool.run("job", JobClass::Batch, 0.1, &queue, |_, _| {
                    std::thread::yield_now();
                    true
                })
                .unwrap()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().completed);
        }
        assert_eq!(
            pool.finished_jobs(),
            2,
            "a job was stranded in the scheduler"
        );
    }

    #[test]
    fn cancel_stops_all_workers() {
        let sizes = vec![100usize; 400];
        let queue = MorselQueue::build(&sizes, 4);
        let done = AtomicUsize::new(0);
        let report = drain(&queue, &|_, _| {
            // Cancel after a handful of morsels; the queue must stay
            // mostly undrained.
            done.fetch_add(1, Ordering::Relaxed) < 5
        });
        assert!(!report.completed);
        assert!(
            report.morsels < 100,
            "cancel leaked: {} morsels dispatched",
            report.morsels
        );
    }

    #[test]
    fn skewed_queue_still_engages_all_workers() {
        // One shard holds nearly all bytes; stealing spreads the drain.
        let mut sizes = vec![1usize; 64];
        sizes[0] = 1_000_000;
        let queue = MorselQueue::build(&sizes, 4);
        let report = drain(&queue, &|_, _| {
            std::thread::yield_now();
            true
        });
        assert!(report.completed);
        assert_eq!(report.morsels, 64);
    }
}
