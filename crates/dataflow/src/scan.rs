//! The scan machine.
//!
//! Paper, §Scalable Server Architectures: "Our simplest approach is to run
//! a scan machine that continuously scans the dataset evaluating
//! user-supplied predicates on each object. [...] If the data is spread
//! among the 20 nodes, they can scan the data at an aggregate rate of
//! 3 GBps. [...] The scan machine will be interactively scheduled: when an
//! astronomer has a query, it is added to the query mix immediately. All
//! data that qualifies is sent back to the astronomer, and the query
//! completes within the scan time."
//!
//! Modes:
//!
//! * [`ScanMachine::run_query`] — one-shot parallel sweep (the E4 scaling
//!   benchmark measures aggregate bytes/second vs node count);
//! * [`ScanMachine::continuous`] — the broadcast-disk mode: node threads
//!   cycle over their containers forever; queries attach at any moment
//!   and complete after one full cycle;
//! * [`TagScanMachine`] — the same sweep over the tag partition, either
//!   with zero-copy [`TagView`] predicates or with a compiled columnar
//!   predicate from the query engine running over each node's shipped
//!   [`sdss_storage::ColumnChunk`]s — the 20-node scan machine of the
//!   paper driving the batch execution substrate.

use crate::cluster::{RecordKind, SimCluster};
use crate::pool::WorkerPool;
use crate::DataflowError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sdss_catalog::{PhotoObj, TagObject};
use sdss_query::compile::BatchScratch;
use sdss_query::CompiledPredicate;
use sdss_storage::{MorselQueue, TagView, BATCH_ROWS};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A user-supplied predicate over full objects.
pub type ObjPredicate = Arc<dyn Fn(&PhotoObj) -> bool + Send + Sync>;

/// A user-supplied predicate over zero-copy tag record views.
pub type TagPredicate = Arc<dyn Fn(&TagView<'_>) -> bool + Send + Sync>;

/// Result of a one-shot scan.
#[derive(Debug, Clone)]
pub struct ScanReport {
    pub nodes: usize,
    pub wall: Duration,
    pub bytes: usize,
    pub objects: usize,
    pub matches: usize,
}

impl ScanReport {
    /// Aggregate scan rate in MB/s.
    pub fn aggregate_mbps(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The scan machine over a simulated cluster of full objects.
pub struct ScanMachine<'a> {
    cluster: &'a SimCluster,
}

impl<'a> ScanMachine<'a> {
    pub fn new(cluster: &'a SimCluster) -> Result<ScanMachine<'a>, DataflowError> {
        if cluster.kind() != RecordKind::Full {
            return Err(DataflowError::InvalidConfig(
                "scan machine needs a full-object cluster".into(),
            ));
        }
        Ok(ScanMachine { cluster })
    }

    /// One-shot parallel sweep: every node scans its containers once;
    /// matching objects stream to the caller's collector.
    pub fn run_query(
        &self,
        predicate: ObjPredicate,
        mut on_match: impl FnMut(PhotoObj),
    ) -> Result<ScanReport, DataflowError> {
        let n = self.cluster.n_nodes();
        let (tx, rx) = unbounded::<PhotoObj>();
        let bytes = AtomicUsize::new(0);
        let objects = AtomicUsize::new(0);
        let start = Instant::now();
        let mut matches = 0usize;

        std::thread::scope(|scope| {
            for node in 0..n {
                let tx = tx.clone();
                let predicate = predicate.clone();
                let bytes = &bytes;
                let objects = &objects;
                let cluster = self.cluster;
                scope.spawn(move || {
                    let mut local_bytes = 0usize;
                    let mut local_objects = 0usize;
                    for container in cluster.node(node) {
                        local_bytes += container.payload.len();
                        for i in 0..container.n_records() {
                            let obj = container.photo(i);
                            local_objects += 1;
                            if predicate(&obj) && tx.send(obj).is_err() {
                                return; // collector hung up
                            }
                        }
                    }
                    bytes.fetch_add(local_bytes, Ordering::Relaxed);
                    objects.fetch_add(local_objects, Ordering::Relaxed);
                });
            }
            drop(tx);
            for obj in rx.iter() {
                matches += 1;
                on_match(obj);
            }
        });

        Ok(ScanReport {
            nodes: n,
            wall: start.elapsed(),
            bytes: bytes.load(Ordering::Relaxed),
            objects: objects.load(Ordering::Relaxed),
            matches,
        })
    }

    /// Start the continuous scan: returns a handle queries attach to.
    pub fn continuous(&self) -> ContinuousScan<'a> {
        ContinuousScan::start(self.cluster)
    }
}

/// The scan machine over a tag-partition cluster: same parallel sweep,
/// but rows are either viewed zero-copy or scanned columnar, and the
/// containers drain morsel-driven through a [`WorkerPool`] instead of a
/// static per-node split — a slow node's containers get stolen.
pub struct TagScanMachine<'a> {
    cluster: &'a SimCluster,
    pool: WorkerPool,
}

impl<'a> TagScanMachine<'a> {
    pub fn new(cluster: &'a SimCluster) -> Result<TagScanMachine<'a>, DataflowError> {
        if cluster.kind() != RecordKind::Tag {
            return Err(DataflowError::InvalidConfig(
                "tag scan machine needs a tag cluster".into(),
            ));
        }
        Ok(TagScanMachine {
            cluster,
            pool: WorkerPool::new(cluster.n_nodes()),
        })
    }

    /// One-shot parallel sweep with a zero-copy view predicate: no
    /// record is deserialized unless it matches.
    pub fn run_query(
        &self,
        predicate: TagPredicate,
        mut on_match: impl FnMut(TagObject),
    ) -> Result<ScanReport, DataflowError> {
        self.sweep(
            move |container, send| {
                let mut bytes = 0usize;
                let mut objects = 0usize;
                for i in 0..container.n_records() {
                    let view = container.tag_view(i);
                    objects += 1;
                    if predicate(&view) && !send(view.to_tag()) {
                        return None;
                    }
                }
                bytes += container.payload.len();
                Some((bytes, objects))
            },
            &mut on_match,
        )
    }

    /// One-shot parallel sweep with a compiled columnar predicate from
    /// the query engine: each node evaluates the bytecode over its
    /// shipped column chunks in [`BATCH_ROWS`]-row batches and only
    /// materializes matching rows.
    pub fn run_compiled_query(
        &self,
        predicate: &CompiledPredicate,
        mut on_match: impl FnMut(TagObject),
    ) -> Result<ScanReport, DataflowError> {
        self.sweep(
            move |container, send| {
                let chunk = container
                    .columns
                    .as_ref()
                    .expect("tag clusters ship column chunks");
                let mut scratch = BatchScratch::new();
                for batch in chunk.batches(BATCH_ROWS) {
                    let mask = predicate.eval(&batch, &mut scratch);
                    for i in mask.iter_set() {
                        if !send(chunk.row(batch.base + i)) {
                            return None;
                        }
                    }
                }
                // Report record-image bytes like the view sweep, so the
                // two modes' bytes/sec throughputs compare apples to
                // apples (the SoA image has its own accounting in
                // `ColumnChunk::bytes`).
                Some((container.payload.len(), chunk.len()))
            },
            &mut on_match,
        )
    }

    /// Shared morsel-driven sweep plumbing: every node's containers are
    /// published as one byte-balanced [`MorselQueue`] and the worker
    /// pool drains it (one worker per node, stealing across nodes).
    /// `scan_container` returns `(bytes, objects)` per container, or
    /// `None` when the collector hung up.
    fn sweep(
        &self,
        scan_container: impl Fn(&crate::cluster::NodeContainer, &dyn Fn(TagObject) -> bool) -> Option<(usize, usize)>
            + Send
            + Sync,
        on_match: &mut impl FnMut(TagObject),
    ) -> Result<ScanReport, DataflowError> {
        let n = self.cluster.n_nodes();
        let flat: Vec<&crate::cluster::NodeContainer> = (0..n)
            .flat_map(|node| self.cluster.node(node).iter())
            .collect();
        let sizes: Vec<usize> = flat.iter().map(|c| c.payload.len()).collect();
        let queue = MorselQueue::build(&sizes, n);
        let (tx, rx) = unbounded::<TagObject>();
        let bytes = AtomicUsize::new(0);
        let objects = AtomicUsize::new(0);
        let start = Instant::now();
        let mut matches = 0usize;

        let pool_result = std::thread::scope(|scope| {
            let pool = &self.pool;
            let flat = &flat;
            let queue = &queue;
            let bytes = &bytes;
            let objects = &objects;
            let scan_container = &scan_container;
            let drainer = scope.spawn(move || {
                let send = |t: TagObject| tx.send(t).is_ok();
                pool.run(
                    "tag-sweep",
                    crate::sched::JobClass::Interactive,
                    0.0,
                    queue,
                    |_, m| {
                        match scan_container(flat[m], &send) {
                            Some((b, o)) => {
                                bytes.fetch_add(b, Ordering::Relaxed);
                                objects.fetch_add(o, Ordering::Relaxed);
                                true
                            }
                            None => false, // collector hung up
                        }
                    },
                )
            });
            for tag in rx.iter() {
                matches += 1;
                on_match(tag);
            }
            drainer.join().expect("pool drainer panicked")
        });
        pool_result?;

        Ok(ScanReport {
            nodes: n,
            wall: start.elapsed(),
            bytes: bytes.load(Ordering::Relaxed),
            objects: objects.load(Ordering::Relaxed),
            matches,
        })
    }
}

/// An attached query's lifetime bookkeeping.
struct ActiveQuery {
    predicate: ObjPredicate,
    tx: Sender<PhotoObj>,
    /// Containers this query has still to observe, per node. Each node
    /// only decrements its own slot, so a fast node cycling twice can
    /// neither double-count nor double-deliver.
    remaining_per_node: Vec<AtomicUsize>,
    /// Nodes that have finished showing this query their containers.
    nodes_remaining: AtomicUsize,
}

/// The continuous broadcast-disk scan.
pub struct ContinuousScan<'a> {
    cluster: &'a SimCluster,
    queries: Arc<Mutex<Vec<Arc<ActiveQuery>>>>,
    stop: Arc<AtomicBool>,
    /// Completed scan cycles per node (for tests / monitoring).
    cycles: Arc<AtomicUsize>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<'a> ContinuousScan<'a> {
    fn start(cluster: &'a SimCluster) -> ContinuousScan<'a> {
        let queries: Arc<Mutex<Vec<Arc<ActiveQuery>>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        // SAFETY-free trick: we only hand references into scoped data via
        // raw payload clones — nodes own Bytes which are cheap to clone,
        // so worker threads get owned container lists ('static).
        for node in 0..cluster.n_nodes() {
            let containers: Vec<_> = cluster.node(node).to_vec();
            let queries = queries.clone();
            let stop = stop.clone();
            let cycles = cycles.clone();
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for container in &containers {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        // Snapshot of currently attached queries.
                        let snapshot: Vec<Arc<ActiveQuery>> = queries.lock().clone();
                        if snapshot.is_empty() {
                            // Idle: don't burn CPU decoding for nobody.
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        }
                        // Queries this node still owes this container to.
                        let watching: Vec<&Arc<ActiveQuery>> = snapshot
                            .iter()
                            .filter(|q| q.remaining_per_node[node].load(Ordering::Acquire) > 0)
                            .collect();
                        if !watching.is_empty() {
                            for i in 0..container.n_records() {
                                let obj = container.photo(i);
                                for q in &watching {
                                    if (q.predicate)(&obj) {
                                        let _ = q.tx.send(obj.clone());
                                    }
                                }
                            }
                        }
                        for q in watching {
                            let prev = q.remaining_per_node[node].fetch_sub(1, Ordering::AcqRel);
                            if prev == 1 {
                                // This node is done with the query; the last
                                // node to finish detaches it (closing its
                                // channel once all Arcs drop).
                                let nodes_left = q.nodes_remaining.fetch_sub(1, Ordering::AcqRel);
                                if nodes_left == 1 {
                                    let mut qs = queries.lock();
                                    qs.retain(|other| !Arc::ptr_eq(other, q));
                                }
                            }
                        }
                    }
                    cycles.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        ContinuousScan {
            cluster,
            queries,
            stop,
            cycles,
            workers,
        }
    }

    /// Attach a query; it completes (channel closes) within one cycle.
    pub fn attach(&self, predicate: ObjPredicate) -> Receiver<PhotoObj> {
        let (tx, rx) = unbounded();
        let per_node: Vec<AtomicUsize> = (0..self.cluster.n_nodes())
            .map(|i| AtomicUsize::new(self.cluster.node(i).len()))
            .collect();
        // Nodes with no containers are done from the start.
        let busy_nodes = per_node
            .iter()
            .filter(|c| c.load(Ordering::Relaxed) > 0)
            .count();
        if busy_nodes == 0 {
            return rx; // empty cluster: channel closes immediately
        }
        let q = Arc::new(ActiveQuery {
            predicate,
            tx,
            remaining_per_node: per_node,
            nodes_remaining: AtomicUsize::new(busy_nodes),
        });
        self.queries.lock().push(q);
        rx
    }

    /// Number of queries currently attached.
    pub fn active_queries(&self) -> usize {
        self.queries.lock().len()
    }

    /// Completed cycles (any node).
    pub fn cycles(&self) -> usize {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Stop the machine and join its workers.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ContinuousScan<'_> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::{ObjClass, SkyModel};
    use sdss_storage::{ObjectStore, StoreConfig};

    fn cluster(seed: u64, nodes: usize) -> (SimCluster, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        (SimCluster::from_store(&s, nodes).unwrap(), objs)
    }

    #[test]
    fn one_shot_scan_finds_exactly_the_matches() {
        let (cluster, objs) = cluster(1, 4);
        let machine = ScanMachine::new(&cluster).unwrap();
        let pred: ObjPredicate = Arc::new(|o| o.class == ObjClass::Quasar && o.mag(2) < 21.0);
        let mut got = Vec::new();
        let report = machine
            .run_query(pred.clone(), |o| got.push(o.obj_id))
            .unwrap();
        let want: Vec<u64> = objs.iter().filter(|o| pred(o)).map(|o| o.obj_id).collect();
        got.sort_unstable();
        let mut want = want;
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(report.objects, objs.len());
        assert_eq!(report.matches, got.len());
        assert!(report.bytes > 0);
        assert!(report.aggregate_mbps() > 0.0);
    }

    #[test]
    fn scan_rejects_tag_cluster() {
        let objs = SkyModel::small(2).generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        let tags = sdss_storage::TagStore::from_store(&s);
        let tcluster = SimCluster::from_tags(&tags, 2).unwrap();
        assert!(ScanMachine::new(&tcluster).is_err());
        // And vice versa.
        let fcluster = SimCluster::from_store(&s, 2).unwrap();
        assert!(TagScanMachine::new(&fcluster).is_err());
    }

    #[test]
    fn tag_scan_view_and_compiled_agree_with_brute_force() {
        let objs = SkyModel::small(6).generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        let tags = sdss_storage::TagStore::from_store(&s);
        let cluster = SimCluster::from_tags(&tags, 3).unwrap();
        let machine = TagScanMachine::new(&cluster).unwrap();

        // The E5-style popular-attribute predicate, three ways.
        let mut want: Vec<u64> = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 && o.class == ObjClass::Galaxy)
            .map(|o| o.obj_id)
            .collect();
        want.sort_unstable();

        let pred: TagPredicate = Arc::new(|v| v.mag(2) < 20.0 && v.class() == ObjClass::Galaxy);
        let mut got_view = Vec::new();
        let report = machine
            .run_query(pred, |t| got_view.push(t.obj_id))
            .unwrap();
        got_view.sort_unstable();
        assert_eq!(got_view, want);
        assert_eq!(report.objects, objs.len());

        let sql_pred = {
            let q = sdss_query::parser::parse(
                "SELECT r FROM photoobj WHERE r < 20 AND class = 'GALAXY'",
            )
            .unwrap();
            let sdss_query::ast::Query::Select(sel) = q else {
                panic!()
            };
            sdss_query::compile_predicate(sel.predicate.as_ref().unwrap()).unwrap()
        };
        let mut got_compiled = Vec::new();
        let creport = machine
            .run_compiled_query(&sql_pred, |t| got_compiled.push(t.obj_id))
            .unwrap();
        got_compiled.sort_unstable();
        assert_eq!(got_compiled, want);
        assert_eq!(creport.objects, objs.len());
        assert_eq!(creport.matches, want.len());
    }

    #[test]
    fn continuous_scan_queries_complete_within_a_cycle() {
        let (cluster, objs) = cluster(3, 3);
        let machine = ScanMachine::new(&cluster).unwrap();
        let scan = machine.continuous();

        // Attach two queries at different moments.
        let rx1 = scan.attach(Arc::new(|o: &PhotoObj| o.class == ObjClass::Galaxy));
        let got1: Vec<u64> = rx1.iter().map(|o| o.obj_id).collect(); // drains until detach
        let want1 = objs.iter().filter(|o| o.class == ObjClass::Galaxy).count();
        assert_eq!(got1.len(), want1);

        let rx2 = scan.attach(Arc::new(|o: &PhotoObj| o.mag(2) < 19.0));
        let got2 = rx2.iter().count();
        let want2 = objs.iter().filter(|o| o.mag(2) < 19.0).count();
        assert_eq!(got2, want2);

        assert_eq!(scan.active_queries(), 0);
        scan.shutdown();
    }

    #[test]
    fn continuous_scan_concurrent_queries() {
        let (cluster, objs) = cluster(4, 2);
        let machine = ScanMachine::new(&cluster).unwrap();
        let scan = machine.continuous();
        let rx_a = scan.attach(Arc::new(|o: &PhotoObj| o.class == ObjClass::Star));
        let rx_b = scan.attach(Arc::new(|o: &PhotoObj| o.class == ObjClass::Quasar));
        let a = rx_a.iter().count();
        let b = rx_b.iter().count();
        assert_eq!(a, objs.iter().filter(|o| o.class == ObjClass::Star).count());
        assert_eq!(
            b,
            objs.iter().filter(|o| o.class == ObjClass::Quasar).count()
        );
        scan.shutdown();
    }
}
