//! Scheduling policies for the machines.
//!
//! Paper: "The scan machine will be interactively scheduled: when an
//! astronomer has a query, it is added to the query mix immediately. [...]
//! The hash and river machines will be batch scheduled."
//!
//! Interactive attachment is the scan machine's `attach` itself; this
//! module provides the batch queue: FIFO within a class, interactive
//! class ahead of batch.

use std::collections::VecDeque;

/// Scheduling class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Joins the mix immediately (scan-machine queries).
    Interactive,
    /// Runs when a slot frees up (hash / river jobs).
    Batch,
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
}

/// A scheduled job.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: u64,
    pub name: String,
    pub class: JobClass,
    pub state: JobState,
    /// Estimated cost (seconds) from the storage cost model, used for
    /// queue-time predictions.
    pub est_seconds: f64,
}

/// A two-class FIFO scheduler.
#[derive(Debug, Default)]
pub struct BatchScheduler {
    next_id: u64,
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    running: Vec<Job>,
    done: Vec<Job>,
    /// Concurrent slots (the paper batches hash/river jobs machine-wide).
    slots: usize,
}

impl BatchScheduler {
    pub fn new(slots: usize) -> BatchScheduler {
        BatchScheduler {
            slots: slots.max(1),
            ..BatchScheduler::default()
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, name: &str, class: JobClass, est_seconds: f64) -> u64 {
        self.next_id += 1;
        let job = Job {
            id: self.next_id,
            name: name.to_string(),
            class,
            state: JobState::Queued,
            est_seconds,
        };
        match class {
            JobClass::Interactive => self.interactive.push_back(job),
            JobClass::Batch => self.batch.push_back(job),
        }
        self.next_id
    }

    /// Dispatch the next job if a slot is free. Interactive jobs always
    /// dispatch ahead of batch jobs.
    pub fn dispatch(&mut self) -> Option<&Job> {
        if self.running.len() >= self.slots {
            return None;
        }
        let mut job = self
            .interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())?;
        job.state = JobState::Running;
        self.running.push(job);
        self.running.last()
    }

    /// Mark a running job finished.
    pub fn complete(&mut self, id: u64) -> bool {
        if let Some(pos) = self.running.iter().position(|j| j.id == id) {
            let mut job = self.running.remove(pos);
            job.state = JobState::Done;
            self.done.push(job);
            true
        } else {
            false
        }
    }

    pub fn state_of(&self, id: u64) -> Option<JobState> {
        self.interactive
            .iter()
            .chain(self.batch.iter())
            .chain(self.running.iter())
            .chain(self.done.iter())
            .find(|j| j.id == id)
            .map(|j| j.state)
    }

    /// Predicted wait before a newly submitted batch job would start:
    /// the queued work ahead of it divided by the slot count.
    pub fn predicted_batch_wait_seconds(&self) -> f64 {
        let queued: f64 = self
            .interactive
            .iter()
            .chain(self.batch.iter())
            .map(|j| j.est_seconds)
            .sum();
        let running: f64 = self.running.iter().map(|j| j.est_seconds).sum();
        (queued + running) / self.slots as f64
    }

    pub fn queued(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    pub fn running(&self) -> usize {
        self.running.len()
    }

    pub fn finished(&self) -> usize {
        self.done.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_class() {
        let mut s = BatchScheduler::new(1);
        let a = s.submit("a", JobClass::Batch, 1.0);
        let b = s.submit("b", JobClass::Batch, 1.0);
        let first = s.dispatch().unwrap().id;
        assert_eq!(first, a);
        assert!(s.dispatch().is_none(), "only one slot");
        s.complete(a);
        assert_eq!(s.dispatch().unwrap().id, b);
    }

    #[test]
    fn interactive_preempts_queue_order() {
        let mut s = BatchScheduler::new(1);
        let _b1 = s.submit("batch1", JobClass::Batch, 10.0);
        let i = s.submit("interactive", JobClass::Interactive, 0.1);
        assert_eq!(s.dispatch().unwrap().id, i, "interactive first");
    }

    #[test]
    fn lifecycle_states() {
        let mut s = BatchScheduler::new(2);
        let id = s.submit("x", JobClass::Batch, 1.0);
        assert_eq!(s.state_of(id), Some(JobState::Queued));
        s.dispatch();
        assert_eq!(s.state_of(id), Some(JobState::Running));
        assert!(s.complete(id));
        assert_eq!(s.state_of(id), Some(JobState::Done));
        assert!(!s.complete(id), "double complete is rejected");
        assert_eq!(s.state_of(999), None);
        assert_eq!(s.finished(), 1);
    }

    #[test]
    fn wait_prediction_scales_with_queue() {
        let mut s = BatchScheduler::new(2);
        assert_eq!(s.predicted_batch_wait_seconds(), 0.0);
        s.submit("a", JobClass::Batch, 10.0);
        s.submit("b", JobClass::Batch, 10.0);
        let w = s.predicted_batch_wait_seconds();
        assert!((w - 10.0).abs() < 1e-9, "two 10s jobs over 2 slots = {w}");
    }

    #[test]
    fn slots_bound_concurrency() {
        let mut s = BatchScheduler::new(3);
        for k in 0..5 {
            s.submit(&format!("j{k}"), JobClass::Batch, 1.0);
        }
        let mut dispatched = 0;
        while s.dispatch().is_some() {
            dispatched += 1;
        }
        assert_eq!(dispatched, 3);
        assert_eq!(s.running(), 3);
        assert_eq!(s.queued(), 2);
    }
}
