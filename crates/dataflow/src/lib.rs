//! # Dataflow engines: scan machine, hash machine, river
//!
//! The paper's §Scalable Server Architectures proposes three machine
//! classes over an array of commodity nodes:
//!
//! * the **scan machine** "continuously scans the dataset evaluating
//!   user-supplied predicates on each object" — interactive, a query
//!   attaches at any time and completes within one scan cycle;
//! * the **hash machine** "redistributes a subset of the data among all
//!   the nodes of the cluster. Then each node processes each hash bucket
//!   at that node" — the spatial analogue of a relational hash join,
//!   used for pair-finding (gravitational lenses) and clustering;
//! * the **river** generalizes both: "dataflow graphs where the nodes
//!   consume one or more data streams, filter and combine the data, and
//!   then produce one or more result streams".
//!
//! All three run over [`cluster::SimCluster`], a simulated array of
//! nodes — each node is a thread owning a disjoint set of storage
//! containers, standing in for the paper's 20×4-CPU Intel cluster.

pub mod cluster;
pub mod hash;
pub mod pool;
pub mod river;
pub mod scan;
pub mod sched;
pub mod sort;
pub mod xmatch;

pub use cluster::{NodeStats, RecordKind, SimCluster};
pub use hash::{brute_force_pairs, HashMachine, HashReport, PairPredicate, PairResult};
pub use pool::{PoolReport, WorkerPool};
pub use river::{RiverGraph, RiverReport, RiverStage};
pub use scan::{
    ContinuousScan, ObjPredicate, ScanMachine, ScanReport, TagPredicate, TagScanMachine,
};
pub use sched::{BatchScheduler, JobClass, JobState};
pub use sort::{parallel_sort_by_key, SortReport};
pub use xmatch::{Match, XMatchReport, XMatcher};

/// Errors produced by the dataflow crate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// Invalid machine configuration (zero nodes, bad level...).
    InvalidConfig(String),
    /// A worker thread panicked or a channel closed unexpectedly.
    WorkerFailed(String),
    /// Underlying storage error.
    Storage(String),
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            DataflowError::WorkerFailed(m) => write!(f, "worker failed: {m}"),
            DataflowError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<sdss_storage::StorageError> for DataflowError {
    fn from(e: sdss_storage::StorageError) -> Self {
        DataflowError::Storage(e.to_string())
    }
}
