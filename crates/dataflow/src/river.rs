//! The river: general dataflow graphs over record streams.
//!
//! Paper, §Scalable Server Architectures: "We propose to let astronomers
//! construct dataflow graphs where the nodes consume one or more data
//! streams, filter and combine the data, and then produce one or more
//! result streams. These dataflow graphs will be executed on a
//! river-machine similar to the scan and hash machine. The simplest river
//! systems are sorting networks."
//!
//! A [`RiverGraph`] is a linear pipeline of stages, each running
//! `n_workers` threads connected by bounded channels (record batches).
//! Filter/Map stages stream; the terminal stage either collects or
//! sort-merges (the sorting network). Stage workers pull from a shared
//! input channel — automatic load balancing exactly like River's
//! distributed queues.

use crate::sort::KeyFn;
use crate::DataflowError;
use crossbeam::channel::{bounded, Receiver, Sender};
use sdss_catalog::TagObject;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batch size for river channels.
const BATCH: usize = 256;
const DEPTH: usize = 8;

/// A pipeline stage.
#[derive(Clone)]
pub enum RiverStage {
    /// Keep records satisfying the predicate.
    Filter(Arc<dyn Fn(&TagObject) -> bool + Send + Sync>),
    /// Transform records.
    Map(Arc<dyn Fn(TagObject) -> TagObject + Send + Sync>),
}

impl std::fmt::Debug for RiverStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RiverStage::Filter(_) => f.write_str("Filter"),
            RiverStage::Map(_) => f.write_str("Map"),
        }
    }
}

/// Report of one river run.
#[derive(Debug, Clone)]
pub struct RiverReport {
    pub workers: usize,
    pub stages: usize,
    pub records_in: usize,
    pub records_out: usize,
    pub wall: Duration,
}

impl RiverReport {
    pub fn mbps_in(&self) -> f64 {
        (self.records_in * TagObject::SERIALIZED_LEN) as f64
            / 1e6
            / self.wall.as_secs_f64().max(1e-9)
    }
}

/// A linear dataflow pipeline.
pub struct RiverGraph {
    n_workers: usize,
    stages: Vec<RiverStage>,
    /// Terminal sort key (None = plain collect).
    sort_key: Option<KeyFn>,
}

impl RiverGraph {
    pub fn new(n_workers: usize) -> Result<RiverGraph, DataflowError> {
        if n_workers == 0 {
            return Err(DataflowError::InvalidConfig("zero workers".into()));
        }
        Ok(RiverGraph {
            n_workers,
            stages: Vec::new(),
            sort_key: None,
        })
    }

    pub fn filter(mut self, f: impl Fn(&TagObject) -> bool + Send + Sync + 'static) -> Self {
        self.stages.push(RiverStage::Filter(Arc::new(f)));
        self
    }

    pub fn map(mut self, f: impl Fn(TagObject) -> TagObject + Send + Sync + 'static) -> Self {
        self.stages.push(RiverStage::Map(Arc::new(f)));
        self
    }

    /// Terminate with a sorting network on `key`.
    pub fn sort_by(mut self, key: KeyFn) -> Self {
        self.sort_key = Some(key);
        self
    }

    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Run the pipeline over `input`, returning the output stream's
    /// records and a throughput report.
    pub fn run(&self, input: &[TagObject]) -> Result<(Vec<TagObject>, RiverReport), DataflowError> {
        let start = Instant::now();
        let n = self.n_workers;

        // Channel fabric: source → stage1 → ... → stageK → sink.
        // Each stage has one shared input channel its workers pull from.
        #[allow(clippy::type_complexity)]
        let mut channels: Vec<(Sender<Vec<TagObject>>, Receiver<Vec<TagObject>>)> =
            Vec::with_capacity(self.stages.len() + 1);
        for _ in 0..=self.stages.len() {
            channels.push(bounded(DEPTH * n));
        }

        let out = std::thread::scope(|scope| {
            // Source: feed input batches into the first channel.
            {
                let tx = channels[0].0.clone();
                scope.spawn(move || {
                    for batch in input.chunks(BATCH) {
                        if tx.send(batch.to_vec()).is_err() {
                            return;
                        }
                    }
                });
            }

            // Stages: n workers each, pulling from stage input, pushing to
            // stage output.
            for (i, stage) in self.stages.iter().enumerate() {
                for _ in 0..n {
                    let rx = channels[i].1.clone();
                    let tx = channels[i + 1].0.clone();
                    let stage = stage.clone();
                    scope.spawn(move || {
                        for batch in rx.iter() {
                            let out_batch: Vec<TagObject> = match &stage {
                                RiverStage::Filter(f) => {
                                    batch.into_iter().filter(|t| f(t)).collect()
                                }
                                RiverStage::Map(f) => batch.into_iter().map(|t| f(t)).collect(),
                            };
                            if !out_batch.is_empty() && tx.send(out_batch).is_err() {
                                return;
                            }
                        }
                    });
                }
            }

            // Keep only the sink's receiver; dropping the original
            // sender/receiver pairs ensures each channel closes as soon as
            // the upstream workers holding its clones finish.
            let sink_rx = channels[self.stages.len()].1.clone();
            channels.clear();

            // Sink: collect everything.
            let mut out: Vec<TagObject> = Vec::new();
            for batch in sink_rx.iter() {
                out.extend(batch);
            }
            out
        });

        // Terminal sorting network (parallel runs + merge).
        let (records_out, out) = match self.sort_key {
            Some(key) => {
                let (sorted, _) = crate::sort::parallel_sort_by_key(&out, key, n)?;
                (sorted.len(), sorted)
            }
            None => (out.len(), out),
        };

        let report = RiverReport {
            workers: n,
            stages: self.stages.len(),
            records_in: input.len(),
            records_out,
            wall: start.elapsed(),
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::{ObjClass, SkyModel};

    fn tags(seed: u64) -> Vec<TagObject> {
        SkyModel::small(seed)
            .generate()
            .unwrap()
            .iter()
            .map(TagObject::from_photo)
            .collect()
    }

    #[test]
    fn filter_map_pipeline_matches_serial() {
        let ts = tags(1);
        let graph = RiverGraph::new(4)
            .unwrap()
            .filter(|t| t.class == ObjClass::Galaxy)
            .map(|mut t| {
                // Extinction-correct r by a constant for the test.
                t.mags[2] -= 0.1;
                t
            })
            .filter(|t| t.mags[2] < 21.0);
        let (out, report) = graph.run(&ts).unwrap();

        let want: Vec<u64> = ts
            .iter()
            .filter(|t| t.class == ObjClass::Galaxy)
            .map(|t| (t.obj_id, t.mags[2] - 0.1))
            .filter(|(_, r)| *r < 21.0)
            .map(|(id, _)| id)
            .collect();
        let mut got: Vec<u64> = out.iter().map(|t| t.obj_id).collect();
        got.sort_unstable();
        let mut want = want;
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(report.records_in, ts.len());
        assert_eq!(report.records_out, got.len());
        assert_eq!(report.stages, 3);
    }

    #[test]
    fn sorting_network_terminal() {
        let ts = tags(2);
        let graph = RiverGraph::new(3)
            .unwrap()
            .filter(|t| t.mags[2] < 22.0)
            .sort_by(|t| t.mags[2] as f64);
        let (out, _) = graph.run(&ts).unwrap();
        assert!(!out.is_empty());
        for w in out.windows(2) {
            assert!(w[0].mags[2] <= w[1].mags[2]);
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let ts = tags(3);
        let graph = RiverGraph::new(2).unwrap();
        let (out, report) = graph.run(&ts).unwrap();
        assert_eq!(out.len(), ts.len());
        assert_eq!(report.records_out, ts.len());
        let mut got: Vec<u64> = out.iter().map(|t| t.obj_id).collect();
        let mut want: Vec<u64> = ts.iter().map(|t| t.obj_id).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(RiverGraph::new(0).is_err());
    }

    #[test]
    fn empty_input() {
        let graph = RiverGraph::new(2).unwrap().filter(|_| true);
        let (out, report) = graph.run(&[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.records_in, 0);
        assert!(report.mbps_in() >= 0.0);
    }
}
