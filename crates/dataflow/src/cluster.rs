//! The simulated commodity cluster.
//!
//! Stands in for the paper's "array of 20 nodes \[each\] 4 Intel Xeon
//! processors ... 12x18GB disks": every node is a worker thread owning a
//! disjoint, spatially contiguous set of containers (from
//! [`PartitionMap`]). Container payloads are page images; scans
//! deserialize records exactly like the real store, so measured node
//! throughput includes the full decode cost.

use crate::DataflowError;
use bytes::Bytes;
use sdss_catalog::{PhotoObj, TagObject};
use sdss_storage::{ColumnChunk, ObjectStore, PartitionMap, TagStore, TagView};
use std::sync::Arc;

/// What record type a cluster holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    Full,
    Tag,
}

/// One container's shipped image on a node.
#[derive(Debug, Clone)]
pub struct NodeContainer {
    pub container_raw: u64,
    pub payload: Bytes,
    pub record_len: usize,
    /// The container's struct-of-arrays image (tag clusters only):
    /// nodes scan these columns directly with compiled predicates
    /// instead of deserializing records. `Arc`-shared with the store —
    /// shipping a chunk costs a refcount, not a copy.
    pub columns: Option<Arc<ColumnChunk>>,
}

impl NodeContainer {
    pub fn n_records(&self) -> usize {
        self.payload.len() / self.record_len
    }

    /// Deserialize record `i` as a full object.
    pub fn photo(&self, i: usize) -> PhotoObj {
        let mut slice = &self.payload[i * self.record_len..(i + 1) * self.record_len];
        PhotoObj::read_from(&mut slice).expect("cluster holds valid records")
    }

    /// Deserialize record `i` as a tag object.
    pub fn tag(&self, i: usize) -> TagObject {
        let mut slice = &self.payload[i * self.record_len..(i + 1) * self.record_len];
        TagObject::read_from(&mut slice).expect("cluster holds valid tag records")
    }

    /// Zero-copy view of tag record `i` (no deserialization).
    pub fn tag_view(&self, i: usize) -> TagView<'_> {
        TagView::new(&self.payload[i * self.record_len..(i + 1) * self.record_len])
    }
}

/// Per-node summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    pub containers: usize,
    pub bytes: usize,
    pub records: usize,
}

/// A simulated cluster: `nodes[i]` is the container set of node `i`.
#[derive(Debug)]
pub struct SimCluster {
    kind: RecordKind,
    nodes: Vec<Vec<NodeContainer>>,
}

impl SimCluster {
    /// Partition a full-object store over `n_nodes`.
    pub fn from_store(store: &ObjectStore, n_nodes: usize) -> Result<SimCluster, DataflowError> {
        let pm = PartitionMap::build(store, n_nodes)?;
        let mut nodes: Vec<Vec<NodeContainer>> = vec![Vec::new(); n_nodes];
        for c in store.containers() {
            let server = pm
                .server_of(c.id().raw())
                .expect("partition covers all containers");
            // Ship the container as one contiguous payload.
            let mut payload = Vec::with_capacity(c.bytes());
            for rec in c.iter_records() {
                payload.extend_from_slice(rec);
            }
            nodes[server].push(NodeContainer {
                container_raw: c.id().raw(),
                payload: Bytes::from(payload),
                record_len: c.record_len(),
                columns: None,
            });
        }
        Ok(SimCluster {
            kind: RecordKind::Full,
            nodes,
        })
    }

    /// Partition a tag store over `n_nodes` (containers in id order,
    /// byte-balanced greedily like [`PartitionMap`]).
    pub fn from_tags(tags: &TagStore, n_nodes: usize) -> Result<SimCluster, DataflowError> {
        if n_nodes == 0 {
            return Err(DataflowError::InvalidConfig("zero nodes".into()));
        }
        let total: usize = tags.bytes();
        let target = total as f64 / n_nodes as f64;
        let mut nodes: Vec<Vec<NodeContainer>> = vec![Vec::new(); n_nodes];
        let mut server = 0usize;
        let mut server_bytes = 0usize;
        for c in tags.containers() {
            if server + 1 < n_nodes && server_bytes as f64 >= target {
                server += 1;
                server_bytes = 0;
            }
            let mut payload = Vec::with_capacity(c.bytes());
            for rec in c.iter_records() {
                payload.extend_from_slice(rec);
            }
            server_bytes += payload.len();
            nodes[server].push(NodeContainer {
                container_raw: c.id().raw(),
                payload: Bytes::from(payload),
                record_len: c.record_len(),
                columns: tags.column_chunk(c.id().raw()).cloned(),
            });
        }
        Ok(SimCluster {
            kind: RecordKind::Tag,
            nodes,
        })
    }

    pub fn kind(&self) -> RecordKind {
        self.kind
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, i: usize) -> &[NodeContainer] {
        &self.nodes[i]
    }

    pub fn node_stats(&self, i: usize) -> NodeStats {
        let containers = &self.nodes[i];
        NodeStats {
            containers: containers.len(),
            bytes: containers.iter().map(|c| c.payload.len()).sum(),
            records: containers.iter().map(|c| c.n_records()).sum(),
        }
    }

    pub fn total_bytes(&self) -> usize {
        (0..self.n_nodes()).map(|i| self.node_stats(i).bytes).sum()
    }

    pub fn total_records(&self) -> usize {
        (0..self.n_nodes())
            .map(|i| self.node_stats(i).records)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;
    use sdss_storage::StoreConfig;

    fn store(seed: u64) -> ObjectStore {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        s
    }

    #[test]
    fn cluster_preserves_every_record() {
        let s = store(1);
        let cluster = SimCluster::from_store(&s, 4).unwrap();
        assert_eq!(cluster.n_nodes(), 4);
        assert_eq!(cluster.total_records(), s.len());
        assert_eq!(cluster.total_bytes(), s.bytes());
        // Records deserialize identically to the store's.
        let c = &cluster.node(0)[0];
        let obj = c.photo(0);
        let from_store = s.get(obj.obj_id).unwrap();
        assert_eq!(obj, from_store);
    }

    #[test]
    fn tag_cluster_matches_tag_store() {
        let s = store(2);
        let tags = TagStore::from_store(&s);
        let cluster = SimCluster::from_tags(&tags, 3).unwrap();
        assert_eq!(cluster.kind(), RecordKind::Tag);
        assert_eq!(cluster.total_records(), tags.len());
        assert_eq!(cluster.total_bytes(), tags.bytes());
    }

    #[test]
    fn nodes_are_balanced() {
        let s = store(3);
        let cluster = SimCluster::from_store(&s, 4).unwrap();
        let sizes: Vec<usize> = (0..4).map(|i| cluster.node_stats(i).bytes).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<usize>() as f64 / 4.0;
        assert!(max / mean < 2.0, "sizes {sizes:?}");
    }

    #[test]
    fn zero_nodes_rejected() {
        let s = store(4);
        assert!(SimCluster::from_store(&s, 0).is_err());
        let tags = TagStore::from_store(&s);
        assert!(SimCluster::from_tags(&tags, 0).is_err());
    }

    #[test]
    fn more_nodes_than_containers_leaves_empties() {
        let s = store(5);
        let n = s.num_containers() + 5;
        let cluster = SimCluster::from_store(&s, n).unwrap();
        assert_eq!(cluster.total_records(), s.len());
    }
}
