//! Columnar (struct-of-arrays) storage for the tag partition.
//!
//! The paper's E5 argument is that the 64-byte tag record cuts the bytes
//! a popular-attribute scan reads ~19×. This module pushes the same idea
//! one level further: inside each container the tag attributes are *also*
//! kept as contiguous per-attribute arrays (a [`ColumnChunk`]), so a
//! predicate like `r < 20 AND gr < 0.8` touches only the `r`/`g` columns
//! and runs at memory bandwidth instead of deserializing a `TagObject`
//! per row. Batches of [`BATCH_ROWS`] rows flow through the query
//! engine's compiled predicates with a [`SelectionMask`] carrying which
//! rows survive (the cover test, the predicate, sampling).
//!
//! [`TagView`] is the row-wise little sibling: a zero-copy view over one
//! serialized 64-byte tag record that decodes single fields on demand,
//! for paths that still walk records (boundary-trixel exact tests, the
//! dataflow machines' shipped page images).

use sdss_catalog::{ObjClass, TagObject};
use sdss_skycoords::UnitVec3;

/// Rows per execution batch. 1024 rows keeps every column of a batch
/// (8 KB for an f64 column) comfortably inside L1/L2 while amortizing
/// per-batch overhead.
pub const BATCH_ROWS: usize = 1024;

/// Struct-of-arrays projection of one container's tag records.
///
/// Built incrementally at insert/projection time next to the serialized
/// record bytes; the record bytes remain the durable format, the chunk is
/// the scan-optimized image of the same rows (insertion order matches
/// record slot order).
#[derive(Debug, Clone, Default)]
pub struct ColumnChunk {
    pub obj_id: Vec<u64>,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub z: Vec<f64>,
    /// One column per band: u, g, r, i, z.
    pub mags: [Vec<f32>; 5],
    pub size: Vec<f32>,
    /// `ObjClass` discriminant per row.
    pub class: Vec<u8>,
    /// Level-20 HTM id per row (the cover filter's integer-compare key).
    pub htm20: Vec<u64>,
}

impl ColumnChunk {
    pub fn new() -> ColumnChunk {
        ColumnChunk::default()
    }

    pub fn len(&self) -> usize {
        self.obj_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.obj_id.is_empty()
    }

    /// Heap bytes held by the columns (the SoA cost accounting).
    pub fn bytes(&self) -> usize {
        self.len() * (8 + 24 + 20 + 4 + 1 + 8)
    }

    /// Append one row.
    pub fn push(&mut self, tag: &TagObject, htm20: u64) {
        self.obj_id.push(tag.obj_id);
        self.x.push(tag.x);
        self.y.push(tag.y);
        self.z.push(tag.z);
        for (col, &m) in self.mags.iter_mut().zip(tag.mags.iter()) {
            col.push(m);
        }
        self.size.push(tag.size);
        self.class.push(tag.class as u8);
        self.htm20.push(htm20);
    }

    /// Rebuild row `i` as an owned record (the inverse projection).
    pub fn row(&self, i: usize) -> TagObject {
        TagObject {
            obj_id: self.obj_id[i],
            x: self.x[i],
            y: self.y[i],
            z: self.z[i],
            mags: [
                self.mags[0][i],
                self.mags[1][i],
                self.mags[2][i],
                self.mags[3][i],
                self.mags[4][i],
            ],
            size: self.size[i],
            class: ObjClass::from_u8(self.class[i]).expect("chunk holds valid class bytes"),
        }
    }

    /// Iterate the chunk as [`ColumnBatch`]es of at most `rows` rows.
    pub fn batches(&self, rows: usize) -> impl Iterator<Item = ColumnBatch<'_>> {
        let rows = rows.max(1);
        let n = self.len();
        (0..n.div_ceil(rows)).map(move |b| {
            let lo = b * rows;
            let hi = (lo + rows).min(n);
            ColumnBatch {
                base: lo,
                obj_id: &self.obj_id[lo..hi],
                x: &self.x[lo..hi],
                y: &self.y[lo..hi],
                z: &self.z[lo..hi],
                mags: [
                    &self.mags[0][lo..hi],
                    &self.mags[1][lo..hi],
                    &self.mags[2][lo..hi],
                    &self.mags[3][lo..hi],
                    &self.mags[4][lo..hi],
                ],
                size: &self.size[lo..hi],
                class: &self.class[lo..hi],
                htm20: &self.htm20[lo..hi],
            }
        })
    }
}

/// A borrowed window of up to [`BATCH_ROWS`] rows of one [`ColumnChunk`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnBatch<'a> {
    /// Row offset of this batch inside its chunk.
    pub base: usize,
    pub obj_id: &'a [u64],
    pub x: &'a [f64],
    pub y: &'a [f64],
    pub z: &'a [f64],
    pub mags: [&'a [f32]; 5],
    pub size: &'a [f32],
    pub class: &'a [u8],
    pub htm20: &'a [u64],
}

impl ColumnBatch<'_> {
    pub fn len(&self) -> usize {
        self.obj_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.obj_id.is_empty()
    }

    pub fn unit_vec(&self, i: usize) -> UnitVec3 {
        UnitVec3::new_unchecked(self.x[i], self.y[i], self.z[i])
    }

    /// Rebuild row `i` of this batch as an owned record — the batch-
    /// windowed sibling of [`ColumnChunk::row`] (the MATCH probe side
    /// and the direct columnar INTO path both need whole rows back out
    /// of the lanes).
    pub fn row(&self, i: usize) -> TagObject {
        TagObject {
            obj_id: self.obj_id[i],
            x: self.x[i],
            y: self.y[i],
            z: self.z[i],
            mags: [
                self.mags[0][i],
                self.mags[1][i],
                self.mags[2][i],
                self.mags[3][i],
                self.mags[4][i],
            ],
            size: self.size[i],
            class: ObjClass::from_u8(self.class[i]).expect("batch holds valid class bytes"),
        }
    }
}

/// Zero-copy view over one serialized 64-byte tag record: decodes single
/// fields straight out of container bytes, no `TagObject` materialized.
#[derive(Debug, Clone, Copy)]
pub struct TagView<'a> {
    rec: &'a [u8],
}

impl<'a> TagView<'a> {
    /// Wrap a record slice (must be exactly the serialized tag width).
    #[inline]
    pub fn new(rec: &'a [u8]) -> TagView<'a> {
        debug_assert_eq!(rec.len(), TagObject::SERIALIZED_LEN);
        TagView { rec }
    }

    #[inline]
    fn f64_at(&self, off: usize) -> f64 {
        f64::from_le_bytes(self.rec[off..off + 8].try_into().unwrap())
    }

    #[inline]
    fn f32_at(&self, off: usize) -> f32 {
        f32::from_le_bytes(self.rec[off..off + 4].try_into().unwrap())
    }

    #[inline]
    pub fn obj_id(&self) -> u64 {
        u64::from_le_bytes(self.rec[0..8].try_into().unwrap())
    }

    #[inline]
    pub fn x(&self) -> f64 {
        self.f64_at(8)
    }

    #[inline]
    pub fn y(&self) -> f64 {
        self.f64_at(16)
    }

    #[inline]
    pub fn z(&self) -> f64 {
        self.f64_at(24)
    }

    /// Band magnitude `b` (0 = u .. 4 = z).
    #[inline]
    pub fn mag(&self, b: usize) -> f32 {
        debug_assert!(b < 5);
        self.f32_at(32 + 4 * b)
    }

    #[inline]
    pub fn size(&self) -> f32 {
        self.f32_at(52)
    }

    #[inline]
    pub fn class_byte(&self) -> u8 {
        self.rec[56]
    }

    #[inline]
    pub fn class(&self) -> ObjClass {
        ObjClass::from_u8(self.class_byte()).expect("valid stored class")
    }

    #[inline]
    pub fn unit_vec(&self) -> UnitVec3 {
        UnitVec3::new_unchecked(self.x(), self.y(), self.z())
    }

    /// Materialize the full record (the slow path this view avoids).
    pub fn to_tag(&self) -> TagObject {
        let mut slice = self.rec;
        TagObject::read_from(&mut slice).expect("valid tag record")
    }
}

/// A per-batch selection bitmap: bit `i` set ⇔ row `i` survives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    pub fn all_set(len: usize) -> SelectionMask {
        let mut m = SelectionMask {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        m.trim_tail();
        m
    }

    pub fn none_set(len: usize) -> SelectionMask {
        SelectionMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Reset in place to all-clear for `len` rows, reusing the word
    /// buffer (no allocation when capacity suffices).
    pub fn reset_false(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Clear bits beyond `len` so popcounts stay honest.
    fn trim_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    pub fn and_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    pub fn or_with(&mut self, other: &SelectionMask) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    pub fn invert(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.trim_tail();
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Indices of selected rows, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Raw words (for fused mask kernels in the query compiler).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Re-clamp after raw word writes.
    pub fn normalize(&mut self) {
        self.trim_tail();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;
    use sdss_htm::HtmId;

    fn chunk_from_sky(n_take: usize) -> (ColumnChunk, Vec<TagObject>) {
        let objs = SkyModel::small(11).generate().unwrap();
        let mut chunk = ColumnChunk::new();
        let tags: Vec<TagObject> = objs
            .iter()
            .take(n_take)
            .map(|o| {
                let t = TagObject::from_photo(o);
                chunk.push(&t, o.htm20);
                t
            })
            .collect();
        (chunk, tags)
    }

    #[test]
    fn push_and_row_roundtrip() {
        let (chunk, tags) = chunk_from_sky(500);
        assert_eq!(chunk.len(), tags.len());
        for (i, t) in tags.iter().enumerate() {
            assert_eq!(&chunk.row(i), t);
        }
    }

    #[test]
    fn batches_cover_every_row_once() {
        let (chunk, tags) = chunk_from_sky(2500);
        let mut seen = 0usize;
        for batch in chunk.batches(BATCH_ROWS) {
            assert_eq!(batch.base, seen);
            assert!(batch.len() <= BATCH_ROWS);
            for i in 0..batch.len() {
                assert_eq!(batch.obj_id[i], tags[seen + i].obj_id);
                assert_eq!(batch.mags[2][i], tags[seen + i].mags[2]);
            }
            seen += batch.len();
        }
        assert_eq!(seen, tags.len());
    }

    #[test]
    fn tag_view_reads_every_field() {
        let (_, tags) = chunk_from_sky(64);
        for t in &tags {
            let mut buf = Vec::new();
            t.write_to(&mut buf);
            let v = TagView::new(&buf);
            assert_eq!(v.obj_id(), t.obj_id);
            assert_eq!(v.x(), t.x);
            assert_eq!(v.y(), t.y);
            assert_eq!(v.z(), t.z);
            for b in 0..5 {
                assert_eq!(v.mag(b), t.mags[b]);
            }
            assert_eq!(v.size(), t.size);
            assert_eq!(v.class(), t.class);
            assert_eq!(v.to_tag(), *t);
        }
    }

    #[test]
    fn selection_mask_ops() {
        let mut m = SelectionMask::all_set(130);
        assert_eq!(m.count(), 130);
        m.clear(0);
        m.clear(129);
        assert_eq!(m.count(), 128);
        assert!(!m.get(0) && !m.get(129) && m.get(64));
        let mut inv = m.clone();
        inv.invert();
        assert_eq!(inv.count(), 2);
        assert_eq!(inv.iter_set().collect::<Vec<_>>(), vec![0, 129]);
        m.and_with(&inv);
        assert_eq!(m.count(), 0);
        assert!(!m.any());
        let mut o = SelectionMask::none_set(130);
        o.set(7);
        o.or_with(&inv);
        assert_eq!(o.iter_set().collect::<Vec<_>>(), vec![0, 7, 129]);
    }

    #[test]
    fn chunk_row_order_matches_container_slots() {
        // The chunk must stay slot-parallel with the serialized records.
        let objs = SkyModel::small(13).generate().unwrap();
        let mut chunk = ColumnChunk::new();
        for o in objs.iter().take(100) {
            chunk.push(&TagObject::from_photo(o), o.htm20);
        }
        for (i, o) in objs.iter().take(100).enumerate() {
            assert_eq!(chunk.obj_id[i], o.obj_id);
            let deep = HtmId::from_raw(chunk.htm20[i]).unwrap();
            assert_eq!(deep.raw(), o.htm20);
        }
    }
}
