//! Morsel-driven work distribution over container-sized work items.
//!
//! The paper's scan machine stripes containers across ~20 nodes so one
//! query uses every spindle and CPU at once. On a single node the same
//! idea becomes *morsel-driven parallelism*: the touched-container list
//! of one scan is published as a queue of small work items ("morsels" —
//! here, one container each), pre-sharded into byte-balanced per-worker
//! runs by the same greedy rule [`crate::PartitionMap`] uses to stripe
//! containers across servers. Workers drain their home shard first
//! (spatially contiguous, cache- and prefetch-friendly) and then steal
//! from the fullest remaining shard, so a skewed container can't leave
//! the other workers idle.
//!
//! The queue is index-based and payload-agnostic: callers keep their own
//! morsel table (e.g. [`crate::vertical::TagScanPlan`]) and feed
//! `(index, bytes)` pairs here.

use crate::partition::PartitionMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One per-worker run of morsel indices with a claim cursor.
#[derive(Debug)]
struct Shard {
    morsels: Vec<u32>,
    next: AtomicUsize,
}

impl Shard {
    /// Claim the next unclaimed morsel of this shard, if any.
    fn claim(&self) -> Option<u32> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.morsels.get(i).copied()
    }

    fn remaining(&self) -> usize {
        self.morsels
            .len()
            .saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

/// A byte-balanced, work-stealing queue of morsel indices shared by the
/// workers of one parallel scan.
#[derive(Debug)]
pub struct MorselQueue {
    shards: Vec<Shard>,
    /// Morsels dispatched per worker (observability: `QueryStats` and
    /// the parallel-scan bench assert the pool actually engaged).
    per_worker: Vec<AtomicU64>,
}

impl MorselQueue {
    /// Shard `sizes[i]` = byte weight of morsel `i` into `workers`
    /// byte-balanced runs, preserving index order within and across
    /// shards (morsel order is container id order — spatially coherent).
    pub fn build(sizes: &[usize], workers: usize) -> MorselQueue {
        let workers = workers.max(1);
        let pm = PartitionMap::build_from_sizes(
            sizes.iter().enumerate().map(|(i, &b)| (i as u64, b)),
            workers,
        )
        .expect("workers >= 1");
        let shards = (0..workers)
            .map(|w| Shard {
                morsels: pm
                    .containers_of(w)
                    .into_iter()
                    .map(|id| id as u32)
                    .collect(),
                next: AtomicUsize::new(0),
            })
            .collect();
        MorselQueue {
            shards,
            per_worker: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Total morsels in the queue (claimed or not).
    pub fn n_morsels(&self) -> usize {
        self.shards.iter().map(|s| s.morsels.len()).sum()
    }

    /// Claim the next morsel for `worker`: its home shard first, then
    /// steal from the shard with the most work left. Returns `None` when
    /// every morsel has been claimed.
    pub fn next(&self, worker: usize) -> Option<usize> {
        debug_assert!(worker < self.shards.len());
        let claimed = self.shards[worker].claim().or_else(|| {
            loop {
                // Racy snapshot of the fullest victim; claim() is the
                // linearization point, so at worst we retry.
                let victim = self
                    .shards
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != worker)
                    .max_by_key(|(_, s)| s.remaining())
                    .filter(|(_, s)| s.remaining() > 0)?
                    .0;
                if let Some(m) = self.shards[victim].claim() {
                    return Some(m);
                }
            }
        })?;
        self.per_worker[worker].fetch_add(1, Ordering::Relaxed);
        Some(claimed as usize)
    }

    /// Morsels worker `w` has claimed so far.
    pub fn dispatched(&self, worker: usize) -> u64 {
        self.per_worker[worker].load(Ordering::Relaxed)
    }

    /// Morsels claimed across all workers.
    pub fn total_dispatched(&self) -> u64 {
        self.per_worker
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn every_morsel_dispatched_exactly_once() {
        let sizes: Vec<usize> = (0..97).map(|i| 1000 + i * 13).collect();
        let q = Arc::new(MorselQueue::build(&sizes, 4));
        assert_eq!(q.n_morsels(), 97);
        let mut handles = Vec::new();
        for w in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(m) = q.next(w) {
                    got.push(m);
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..97).collect::<Vec<_>>());
        assert_eq!(q.total_dispatched(), 97);
    }

    #[test]
    fn shards_are_byte_balanced() {
        // Uniform sizes split evenly; per-worker dispatch counters see
        // only home-shard work when a single thread drains in order.
        let sizes = vec![100usize; 80];
        let q = MorselQueue::build(&sizes, 4);
        for w in 0..4 {
            let mut n = 0;
            while q.shards[w].claim().is_some() {
                n += 1;
            }
            assert_eq!(n, 20, "worker {w} shard size");
        }
    }

    #[test]
    fn stealing_drains_a_skewed_queue() {
        // A lone worker must drain its home shard and then steal every
        // other shard dry.
        let sizes = vec![1usize; 10];
        let q = MorselQueue::build(&sizes, 4);
        let mut got = Vec::new();
        while let Some(m) = q.next(3) {
            got.push(m);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(q.dispatched(3), 10);
        assert_eq!(q.dispatched(0), 0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let q = MorselQueue::build(&[10, 20], 0);
        assert_eq!(q.workers(), 1);
        assert_eq!(q.next(0), Some(0));
        assert_eq!(q.next(0), Some(1));
        assert_eq!(q.next(0), None);
    }
}
