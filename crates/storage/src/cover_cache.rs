//! Memoized HTM covers.
//!
//! Computing a region cover walks the HTM mesh recursively — cheap next
//! to a cold scan, but pure overhead when the same region is queried
//! repeatedly (dashboards re-rendering a field, the E5/E14 experiment
//! loops, the batch scheduler re-admitting a query class). Every store
//! owns a [`CoverCache`] keyed by `(domain fingerprint, level)` so
//! repeated region scans skip `Cover::compute` entirely.

use sdss_htm::{Cover, Domain, HtmError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Entries kept before the cache wholesale resets (covers for distinct
/// regions are small; this bound only guards pathological workloads that
/// never repeat a region).
const CACHE_CAP: usize = 128;

/// One cached cover with the domain that defined it.
#[derive(Debug)]
struct Entry {
    domain: Domain,
    cover: Arc<Cover>,
}

#[derive(Debug, Default)]
pub struct CoverCache {
    /// Keyed by fingerprint; each entry keeps the defining [`Domain`] so
    /// a fingerprint collision is detected (equality check on hit)
    /// instead of silently returning the wrong cover.
    map: Mutex<HashMap<(u128, u8), Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CoverCache {
    pub fn new() -> CoverCache {
        CoverCache::default()
    }

    /// The cover of `domain` at `level`, computed at most once per
    /// distinct `(domain, level)` for the cache's lifetime.
    pub fn get_or_compute(&self, domain: &Domain, level: u8) -> Result<Arc<Cover>, HtmError> {
        let key = (domain.fingerprint(), level);
        if let Some(entry) = self.map.lock().unwrap().get(&key) {
            if &entry.domain == domain {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.cover.clone());
            }
            // Fingerprint collision: fall through and compute fresh
            // (correctness first; the colliding entry keeps its slot).
        }
        // Compute outside the lock: concurrent scans of the same fresh
        // region may both compute, but neither blocks the other.
        let cover = Arc::new(Cover::compute(domain, level)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().unwrap();
        if map.len() >= CACHE_CAP {
            map.clear();
        }
        map.entry(key).or_insert_with(|| Entry {
            domain: domain.clone(),
            cover: cover.clone(),
        });
        Ok(cover)
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_htm::Region;

    #[test]
    fn second_lookup_hits() {
        let cache = CoverCache::new();
        let d = Region::circle(185.0, 15.0, 1.0).unwrap();
        let a = cache.get_or_compute(&d, 10).unwrap();
        let b = cache.get_or_compute(&d, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        // A rebuilt-but-identical domain also hits.
        let d2 = Region::circle(185.0, 15.0, 1.0).unwrap();
        let c = cache.get_or_compute(&d2, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn level_and_region_distinguish_entries() {
        let cache = CoverCache::new();
        let d = Region::circle(185.0, 15.0, 1.0).unwrap();
        let e = Region::circle(185.0, 15.0, 2.0).unwrap();
        let a10 = cache.get_or_compute(&d, 10).unwrap();
        let a12 = cache.get_or_compute(&d, 12).unwrap();
        let b10 = cache.get_or_compute(&e, 10).unwrap();
        assert!(!Arc::ptr_eq(&a10, &a12));
        assert!(!Arc::ptr_eq(&a10, &b10));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
    }
}
