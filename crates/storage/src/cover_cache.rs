//! Memoized HTM covers with LRU eviction.
//!
//! Computing a region cover walks the HTM mesh recursively — cheap next
//! to a cold scan, but pure overhead when the same region is queried
//! repeatedly (dashboards re-rendering a field, the E5/E14 experiment
//! loops, prepared queries re-executed with new parameters). Every store
//! owns a [`CoverCache`] keyed by `(domain fingerprint, level)` so
//! repeated region scans skip `Cover::compute` entirely.
//!
//! Eviction is least-recently-used with byte accounting: each entry
//! charges its cover's interval lists plus the defining domain, and the
//! cache evicts the coldest entries until both the entry-count and byte
//! capacities hold. Dashboard-style workloads that cycle through a
//! handful of hot regions keep them resident even while one-off queries
//! churn the rest of the cache (the wholesale clear the previous
//! implementation did threw the hot set away with the cold).

use sdss_htm::{Cover, Domain, HtmError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default entry capacity.
const DEFAULT_CAP_ENTRIES: usize = 128;
/// Default byte budget for cached covers (~a few thousand interval
/// entries per cover at most; 4 MiB holds any realistic hot set).
const DEFAULT_CAP_BYTES: usize = 4 << 20;

/// One cached cover with the domain that defined it.
#[derive(Debug)]
struct Entry {
    domain: Domain,
    cover: Arc<Cover>,
    bytes: usize,
    /// Logical timestamp of the last hit (monotone per cache).
    last_used: u64,
}

/// Interior state guarded by one mutex: the map plus the LRU clock and
/// the byte account.
#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(u128, u8), Entry>,
    clock: u64,
    bytes: usize,
}

#[derive(Debug)]
pub struct CoverCache {
    /// Keyed by fingerprint; each entry keeps the defining [`Domain`] so
    /// a fingerprint collision is detected (equality check on hit)
    /// instead of silently returning the wrong cover.
    inner: Mutex<Inner>,
    cap_entries: usize,
    cap_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CoverCache {
    fn default() -> CoverCache {
        CoverCache::with_capacity(DEFAULT_CAP_ENTRIES, DEFAULT_CAP_BYTES)
    }
}

/// Approximate resident size of one cache entry.
fn entry_bytes(domain: &Domain, cover: &Cover) -> usize {
    let ranges = cover.full_ranges().num_intervals() + cover.partial_ranges().num_intervals();
    let convex_bytes: usize = domain
        .convexes()
        .iter()
        .map(|c| std::mem::size_of_val(c.halfspaces()))
        .sum();
    std::mem::size_of::<Entry>() + ranges * std::mem::size_of::<(u64, u64)>() + convex_bytes
}

impl CoverCache {
    pub fn new() -> CoverCache {
        CoverCache::default()
    }

    /// A cache with explicit entry-count and byte capacities (both are
    /// enforced; eviction runs until the cache satisfies the tighter of
    /// the two).
    pub fn with_capacity(cap_entries: usize, cap_bytes: usize) -> CoverCache {
        CoverCache {
            inner: Mutex::new(Inner::default()),
            cap_entries: cap_entries.max(1),
            cap_bytes: cap_bytes.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cover of `domain` at `level`, computed at most once per
    /// distinct `(domain, level)` while the entry stays resident.
    pub fn get_or_compute(&self, domain: &Domain, level: u8) -> Result<Arc<Cover>, HtmError> {
        Ok(self.get_or_compute_traced(domain, level)?.0)
    }

    /// Like [`CoverCache::get_or_compute`], additionally reporting
    /// whether the lookup hit (`true`) or computed fresh (`false`) so
    /// scans can attribute cache behavior to individual queries.
    pub fn get_or_compute_traced(
        &self,
        domain: &Domain,
        level: u8,
    ) -> Result<(Arc<Cover>, bool), HtmError> {
        let key = (domain.fingerprint(), level);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                if &entry.domain == domain {
                    entry.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry.cover.clone(), true));
                }
                // Fingerprint collision: fall through and compute fresh
                // (correctness first; the colliding entry keeps its slot).
            }
        }
        // Compute outside the lock: concurrent scans of the same fresh
        // region may both compute, but neither blocks the other.
        let cover = Arc::new(Cover::compute(domain, level)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = entry_bytes(domain, &cover);
        if bytes > self.cap_bytes {
            // An entry that alone busts the budget must not be cached:
            // admitting it would evict the entire (hotter) resident set
            // first and then itself — the wholesale clear this LRU
            // replaced.
            return Ok((cover, false));
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if let std::collections::hash_map::Entry::Vacant(slot) = inner.map.entry(key) {
            slot.insert(Entry {
                domain: domain.clone(),
                cover: cover.clone(),
                bytes,
                last_used: clock,
            });
            inner.bytes += bytes;
            self.evict_to_capacity(&mut inner);
        }
        Ok((cover, false))
    }

    /// Evict least-recently-used entries until both capacities hold.
    /// O(n) argmin per eviction — n is bounded by `cap_entries` (a few
    /// hundred), and eviction only runs on insert.
    fn evict_to_capacity(&self, inner: &mut Inner) {
        while inner.map.len() > self.cap_entries || inner.bytes > self.cap_bytes {
            let Some((&key, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&key) {
                inner.bytes -= evicted.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries evicted by the LRU policy since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resident bytes charged to cached covers.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().bytes
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_htm::Region;

    #[test]
    fn second_lookup_hits() {
        let cache = CoverCache::new();
        let d = Region::circle(185.0, 15.0, 1.0).unwrap();
        let a = cache.get_or_compute(&d, 10).unwrap();
        let b = cache.get_or_compute(&d, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        // A rebuilt-but-identical domain also hits.
        let d2 = Region::circle(185.0, 15.0, 1.0).unwrap();
        let c = cache.get_or_compute(&d2, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn level_and_region_distinguish_entries() {
        let cache = CoverCache::new();
        let d = Region::circle(185.0, 15.0, 1.0).unwrap();
        let e = Region::circle(185.0, 15.0, 2.0).unwrap();
        let a10 = cache.get_or_compute(&d, 10).unwrap();
        let a12 = cache.get_or_compute(&d, 12).unwrap();
        let b10 = cache.get_or_compute(&e, 10).unwrap();
        assert!(!Arc::ptr_eq(&a10, &a12));
        assert!(!Arc::ptr_eq(&a10, &b10));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn traced_lookups_report_hit_state() {
        let cache = CoverCache::new();
        let d = Region::circle(10.0, 5.0, 1.0).unwrap();
        let (_, hit) = cache.get_or_compute_traced(&d, 9).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_compute_traced(&d, 9).unwrap();
        assert!(hit);
    }

    #[test]
    fn lru_keeps_the_hot_entry() {
        // Capacity 3: touch A repeatedly while B/C/D stream through —
        // A must stay resident; the cold entries evict.
        let cache = CoverCache::with_capacity(3, usize::MAX);
        let hot = Region::circle(185.0, 15.0, 1.0).unwrap();
        cache.get_or_compute(&hot, 10).unwrap();
        for i in 0..6 {
            let cold = Region::circle(100.0 + i as f64, -10.0, 0.5).unwrap();
            cache.get_or_compute(&cold, 10).unwrap();
            // Re-touch the hot entry after every insert.
            let (_, hit) = cache.get_or_compute_traced(&hot, 10).unwrap();
            assert!(hit, "hot entry evicted after {i} cold inserts");
        }
        assert!(cache.len() <= 3);
        assert!(cache.evictions() >= 4);
    }

    #[test]
    fn byte_capacity_bounds_residency() {
        // A 1-byte budget admits nothing: every cover alone exceeds it,
        // and oversized entries are never cached (they would evict the
        // whole hot set first).
        let cache = CoverCache::with_capacity(1024, 1);
        for i in 0..5 {
            let d = Region::circle(50.0 + i as f64, 0.0, 1.0).unwrap();
            cache.get_or_compute(&d, 10).unwrap();
        }
        assert!(cache.is_empty(), "len {}", cache.len());
        assert_eq!(cache.resident_bytes(), 0);

        // An oversized insert leaves an existing hot set untouched.
        let roomy = CoverCache::with_capacity(1024, 4 << 20);
        let hot = Region::circle(185.0, 15.0, 1.0).unwrap();
        roomy.get_or_compute(&hot, 10).unwrap();
        let resident = roomy.resident_bytes();
        assert!(resident > 0);
        // Shrink the budget conceptually by building a tiny cache and
        // checking the guard path directly: entry > cap is not admitted.
        let tiny = CoverCache::with_capacity(1024, resident.saturating_sub(1));
        tiny.get_or_compute(&hot, 10).unwrap();
        assert!(tiny.is_empty());
    }
}
