//! The object store: containers keyed by HTM trixel, region scans driven
//! by covers.
//!
//! The index tree of the paper in action: a region query computes a deep
//! HTM cover, coarsens it to the container level, and then
//!
//! * containers **fully inside** the cover stream every object with *no*
//!   geometric test ("wholly accepted"),
//! * containers **bisected** by the query test each object — first against
//!   the deep cover via the object's precomputed level-20 HTM id (integer
//!   compare), and only in the boundary trixels against the exact region
//!   geometry,
//! * everything else is never read ("if a node is rejected, that node's
//!   children can be ignored").

use crate::container::Container;
use crate::cover_cache::CoverCache;
use crate::StorageError;
use sdss_catalog::PhotoObj;
use sdss_htm::{Domain, HtmId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// HTM level of the clustering containers. Level 6 gives 32768 sky
    /// cells (~1.6 deg each) — a good default for the experiment scales
    /// in this repo.
    pub container_level: u8,
    /// Deep cover level used for region scans (must be ≥ container level;
    /// objects carry level-20 ids so it must also be ≤ 20).
    pub scan_cover_level: u8,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            container_level: 6,
            scan_cover_level: 10,
        }
    }
}

/// Read/write touch counters (atomic: shared with scan threads).
#[derive(Debug, Default)]
pub struct TouchCounters {
    /// Containers opened for writing (the loader's touch-once metric).
    pub write_touches: AtomicU64,
    /// Containers read by scans.
    pub read_touches: AtomicU64,
    /// Payload bytes read by scans.
    pub bytes_read: AtomicU64,
    /// Objects tested against exact region geometry.
    pub exact_tests: AtomicU64,
}

impl TouchCounters {
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.write_touches.load(Ordering::Relaxed),
            self.read_touches.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
            self.exact_tests.load(Ordering::Relaxed),
        )
    }

    pub fn reset(&self) {
        self.write_touches.store(0, Ordering::Relaxed);
        self.read_touches.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.exact_tests.store(0, Ordering::Relaxed);
    }
}

/// Statistics of one region scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionScan {
    pub containers_full: usize,
    pub containers_partial: usize,
    pub objects_yielded: usize,
    /// Objects that needed the exact geometric test.
    pub objects_exact_tested: usize,
    pub bytes_scanned: usize,
    /// Cover-cache lookups this scan answered from cache / computed
    /// fresh (a single region scan does one lookup; aggregated scans
    /// accumulate).
    pub cover_cache_hits: u64,
    pub cover_cache_misses: u64,
}

impl RegionScan {
    /// Accumulate another scan's counters into this one (per-morsel
    /// stats merging into per-worker and per-query totals).
    pub fn merge(&mut self, other: &RegionScan) {
        self.containers_full += other.containers_full;
        self.containers_partial += other.containers_partial;
        self.objects_yielded += other.objects_yielded;
        self.objects_exact_tested += other.objects_exact_tested;
        self.bytes_scanned += other.bytes_scanned;
        self.cover_cache_hits += other.cover_cache_hits;
        self.cover_cache_misses += other.cover_cache_misses;
    }
}

/// The container-clustered photometric object store.
#[derive(Debug)]
pub struct ObjectStore {
    config: StoreConfig,
    containers: BTreeMap<u64, Container>,
    /// obj_id → (container raw id, slot).
    id_index: std::collections::HashMap<u64, (u64, u32)>,
    touches: TouchCounters,
    /// Serialization scratch reused across single-object inserts.
    scratch: Vec<u8>,
    /// Memoized region covers for repeated queries.
    cover_cache: CoverCache,
}

impl ObjectStore {
    pub fn new(config: StoreConfig) -> Result<ObjectStore, StorageError> {
        if config.container_level > 20 {
            return Err(StorageError::InvalidConfig(
                "container level deeper than the stored htm20 ids".into(),
            ));
        }
        if config.scan_cover_level < config.container_level || config.scan_cover_level > 20 {
            return Err(StorageError::InvalidConfig(format!(
                "scan cover level {} must be in [container level {}, 20]",
                config.scan_cover_level, config.container_level
            )));
        }
        Ok(ObjectStore {
            config,
            containers: BTreeMap::new(),
            id_index: std::collections::HashMap::new(),
            touches: TouchCounters::default(),
            scratch: Vec::with_capacity(PhotoObj::SERIALIZED_LEN),
            cover_cache: CoverCache::new(),
        })
    }

    #[inline]
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    pub fn touches(&self) -> &TouchCounters {
        &self.touches
    }

    /// Cover-cache (hits, misses) — observability for repeated queries.
    pub fn cover_cache_stats(&self) -> (u64, u64) {
        self.cover_cache.stats()
    }

    /// The memoized cover cache (shared with plan-time estimation).
    pub fn cover_cache(&self) -> &CoverCache {
        &self.cover_cache
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.containers.values().map(Container::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.containers.values().all(Container::is_empty)
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> usize {
        self.containers.values().map(Container::bytes).sum()
    }

    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    /// The container trixel id an object belongs to.
    pub fn container_id_of(&self, obj: &PhotoObj) -> Result<HtmId, StorageError> {
        let deep = HtmId::from_raw(obj.htm20)?;
        Ok(deep.ancestor_at(self.config.container_level))
    }

    /// Insert one object. Counts one write touch per container *opened*,
    /// so arrival-order loading shows its cost (experiment E9). The
    /// serialization scratch buffer lives on the store and is reused
    /// across calls.
    pub fn insert(&mut self, obj: &PhotoObj) -> Result<(), StorageError> {
        let cid = self.container_id_of(obj)?;
        self.touches.write_touches.fetch_add(1, Ordering::Relaxed);
        let container = self
            .containers
            .entry(cid.raw())
            .or_insert_with(|| Container::new(cid, PhotoObj::SERIALIZED_LEN));
        let slot = container.len() as u32;
        container.push_photo(obj, &mut self.scratch)?;
        self.id_index.insert(obj.obj_id, (cid.raw(), slot));
        Ok(())
    }

    /// Insert a batch grouped by container: each container is opened
    /// (touched) once per group — the fast path the paper's loader uses.
    pub fn insert_batch(&mut self, objs: &[PhotoObj]) -> Result<(), StorageError> {
        // Group object indexes by destination container.
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, obj) in objs.iter().enumerate() {
            let cid = self.container_id_of(obj)?;
            groups.entry(cid.raw()).or_default().push(i);
        }
        let mut scratch = Vec::with_capacity(PhotoObj::SERIALIZED_LEN);
        for (raw, indexes) in groups {
            self.touches.write_touches.fetch_add(1, Ordering::Relaxed);
            let cid = HtmId::from_raw(raw)?;
            let container = self
                .containers
                .entry(raw)
                .or_insert_with(|| Container::new(cid, PhotoObj::SERIALIZED_LEN));
            for i in indexes {
                let slot = container.len() as u32;
                container.push_photo(&objs[i], &mut scratch)?;
                self.id_index.insert(objs[i].obj_id, (raw, slot));
            }
        }
        Ok(())
    }

    /// Point lookup by object id.
    pub fn get(&self, obj_id: u64) -> Result<PhotoObj, StorageError> {
        let &(raw, slot) = self
            .id_index
            .get(&obj_id)
            .ok_or(StorageError::NotFound(obj_id))?;
        let container = self
            .containers
            .get(&raw)
            .ok_or(StorageError::NotFound(obj_id))?;
        let mut rec = container
            .record(slot as usize)
            .ok_or(StorageError::NotFound(obj_id))?;
        Ok(PhotoObj::read_from(&mut rec)?)
    }

    /// Iterate all objects in container (spatial) order.
    pub fn iter_all(&self) -> impl Iterator<Item = PhotoObj> + '_ {
        self.containers.values().flat_map(|c| {
            c.iter_records().map(|mut rec| {
                PhotoObj::read_from(&mut rec).expect("store contains only valid records")
            })
        })
    }

    /// The containers themselves (for partitioning / dataflow engines).
    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    pub fn container(&self, raw: u64) -> Option<&Container> {
        self.containers.get(&raw)
    }

    /// Full scan with a callback; returns bytes scanned. The scan and
    /// dataflow machines build on this.
    pub fn scan_all(&self, mut f: impl FnMut(&PhotoObj)) -> usize {
        self.scan_all_until(|obj| {
            f(obj);
            true
        })
        .0
    }

    /// Like [`ObjectStore::scan_all`] but the callback may return
    /// `false` to stop early (cancelled queries). Returns
    /// `(bytes_scanned, containers_read)` for the containers actually
    /// opened.
    pub fn scan_all_until(&self, mut f: impl FnMut(&PhotoObj) -> bool) -> (usize, usize) {
        let mut bytes = 0;
        let mut containers = 0;
        'outer: for c in self.containers.values() {
            self.touches.read_touches.fetch_add(1, Ordering::Relaxed);
            bytes += c.bytes();
            containers += 1;
            for mut rec in c.iter_records() {
                let obj = PhotoObj::read_from(&mut rec).expect("valid record");
                if !f(&obj) {
                    break 'outer;
                }
            }
        }
        self.touches
            .bytes_read
            .fetch_add(bytes as u64, Ordering::Relaxed);
        (bytes, containers)
    }

    /// Region scan: yields every object inside `domain` exactly once.
    ///
    /// `cover_level` overrides the configured scan cover depth (used by
    /// the E14 ablation); pass `None` for the default.
    pub fn scan_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&PhotoObj),
    ) -> Result<RegionScan, StorageError> {
        self.scan_region_until(domain, cover_level, |obj| {
            f(obj);
            true
        })
    }

    /// Like [`ObjectStore::scan_region`] but the callback may return
    /// `false` to stop early (streaming `LIMIT`, cancelled queries).
    pub fn scan_region_until(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&PhotoObj) -> bool,
    ) -> Result<RegionScan, StorageError> {
        let level = cover_level.unwrap_or(self.config.scan_cover_level);
        if level < self.config.container_level || level > 20 {
            return Err(StorageError::InvalidConfig(format!(
                "cover level {level} outside [{}, 20]",
                self.config.container_level
            )));
        }
        let (cover, cache_hit) = self.cover_cache.get_or_compute_traced(domain, level)?;
        let full = cover.full_ranges();
        let partial = cover.partial_ranges();
        let touched = cover
            .touched_ranges()
            .coarsen(level, self.config.container_level);

        let mut stats = RegionScan::default();
        if cache_hit {
            stats.cover_cache_hits = 1;
        } else {
            stats.cover_cache_misses = 1;
        }
        let shift = 2 * (20 - level) as u64;
        let mut stopped = false;

        'outer: for &(lo, hi) in touched.ranges() {
            for (_, container) in self.containers.range(lo..hi) {
                self.touches.read_touches.fetch_add(1, Ordering::Relaxed);
                stats.bytes_scanned += container.bytes();

                // Whole container inside the full cover: stream, no tests.
                let (clo, chi) = container.id().deep_range(level);
                if full.contains_range(clo, chi) {
                    stats.containers_full += 1;
                    for mut rec in container.iter_records() {
                        let obj = PhotoObj::read_from(&mut rec)?;
                        stats.objects_yielded += 1;
                        if !f(&obj) {
                            stopped = true;
                            break 'outer;
                        }
                    }
                    continue;
                }

                stats.containers_partial += 1;
                for mut rec in container.iter_records() {
                    let obj = PhotoObj::read_from(&mut rec)?;
                    let deep_id = obj.htm20 >> shift;
                    if full.contains(deep_id) {
                        stats.objects_yielded += 1;
                        if !f(&obj) {
                            stopped = true;
                            break 'outer;
                        }
                    } else if partial.contains(deep_id) {
                        stats.objects_exact_tested += 1;
                        if domain.contains(obj.unit_vec()) {
                            stats.objects_yielded += 1;
                            if !f(&obj) {
                                stopped = true;
                                break 'outer;
                            }
                        }
                    }
                    // else: outside the cover entirely — rejected for free.
                }
            }
        }
        let _ = stopped;
        self.touches
            .bytes_read
            .fetch_add(stats.bytes_scanned as u64, Ordering::Relaxed);
        self.touches
            .exact_tests
            .fetch_add(stats.objects_exact_tested as u64, Ordering::Relaxed);
        Ok(stats)
    }

    /// Convenience: collect a region scan into a vector.
    pub fn query_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
    ) -> Result<(Vec<PhotoObj>, RegionScan), StorageError> {
        let mut out = Vec::new();
        let stats = self.scan_region(domain, cover_level, |obj| out.push(obj.clone()))?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;
    use sdss_htm::Region;

    fn store_with_sky(seed: u64) -> (ObjectStore, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        (store, objs)
    }

    #[test]
    fn config_validation() {
        assert!(ObjectStore::new(StoreConfig {
            container_level: 21,
            scan_cover_level: 21
        })
        .is_err());
        assert!(ObjectStore::new(StoreConfig {
            container_level: 8,
            scan_cover_level: 6
        })
        .is_err());
        assert!(ObjectStore::new(StoreConfig::default()).is_ok());
    }

    #[test]
    fn insert_and_count() {
        let (store, objs) = store_with_sky(1);
        assert_eq!(store.len(), objs.len());
        assert!(!store.is_empty());
        assert_eq!(store.bytes(), objs.len() * PhotoObj::SERIALIZED_LEN);
        // The 5-degree test cap spans several containers at level 6.
        assert!(store.num_containers() > 3, "{}", store.num_containers());
    }

    #[test]
    fn get_by_id() {
        let (store, objs) = store_with_sky(2);
        for obj in objs.iter().step_by(97) {
            let got = store.get(obj.obj_id).unwrap();
            assert_eq!(&got, obj);
        }
        assert!(matches!(
            store.get(0xdead_beef_dead_beef),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn iter_all_is_spatially_clustered() {
        let (store, objs) = store_with_sky(3);
        let seen: Vec<PhotoObj> = store.iter_all().collect();
        assert_eq!(seen.len(), objs.len());
        // Objects come out grouped by container: consecutive objects share
        // container ids far more often than random order would.
        let level = store.config().container_level;
        let mut same = 0usize;
        for w in seen.windows(2) {
            let a = HtmId::from_raw(w[0].htm20).unwrap().ancestor_at(level);
            let b = HtmId::from_raw(w[1].htm20).unwrap().ancestor_at(level);
            if a == b {
                same += 1;
            }
        }
        assert!(
            same * 10 > seen.len() * 8,
            "only {same}/{} adjacent pairs share a container",
            seen.len()
        );
    }

    #[test]
    fn region_scan_matches_brute_force() {
        let (store, objs) = store_with_sky(4);
        for radius in [0.3, 1.0, 2.5] {
            let domain = Region::circle(185.0, 15.0, radius).unwrap();
            let (got, stats) = store.query_region(&domain, None).unwrap();
            let want: Vec<&PhotoObj> = objs
                .iter()
                .filter(|o| domain.contains(o.unit_vec()))
                .collect();
            assert_eq!(got.len(), want.len(), "radius {radius}");
            assert_eq!(stats.objects_yielded, want.len());
            // No duplicates.
            let mut ids: Vec<u64> = got.iter().map(|o| o.obj_id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), got.len());
        }
    }

    #[test]
    fn region_scan_reads_less_than_full_scan() {
        let (store, _) = store_with_sky(5);
        let total = store.bytes();
        let domain = Region::circle(185.0, 15.0, 0.5).unwrap();
        let (_, stats) = store.query_region(&domain, None).unwrap();
        assert!(
            stats.bytes_scanned < total / 4,
            "index scan read {} of {} bytes",
            stats.bytes_scanned,
            total
        );
    }

    #[test]
    fn deep_cover_reduces_exact_tests() {
        let (store, _) = store_with_sky(6);
        let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
        let (rows_shallow, shallow) = store.query_region(&domain, Some(6)).unwrap();
        let (rows_deep, deep) = store.query_region(&domain, Some(12)).unwrap();
        assert_eq!(rows_shallow.len(), rows_deep.len(), "results must agree");
        assert!(
            deep.objects_exact_tested < shallow.objects_exact_tested,
            "deep {} !< shallow {}",
            deep.objects_exact_tested,
            shallow.objects_exact_tested
        );
    }

    #[test]
    fn empty_region_scans_nothing() {
        let (store, _) = store_with_sky(7);
        // A cap on the far side of the sky.
        let domain = Region::circle(5.0, -15.0, 1.0).unwrap();
        let (rows, stats) = store.query_region(&domain, None).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.bytes_scanned, 0, "no container should be read");
    }

    #[test]
    fn write_touch_accounting() {
        let objs = SkyModel::small(8).generate().unwrap();
        // Batch insert: one touch per distinct container.
        let mut batch = ObjectStore::new(StoreConfig::default()).unwrap();
        batch.insert_batch(&objs).unwrap();
        let batch_touches = batch.touches().snapshot().0;
        assert_eq!(batch_touches, batch.num_containers() as u64);

        // One-by-one insert in generation order: many more touches.
        let mut single = ObjectStore::new(StoreConfig::default()).unwrap();
        for o in &objs {
            single.insert(o).unwrap();
        }
        let single_touches = single.touches().snapshot().0;
        assert_eq!(single_touches, objs.len() as u64);
        assert!(single_touches > batch_touches * 3);
    }

    #[test]
    fn scan_all_visits_everything() {
        let (store, objs) = store_with_sky(9);
        let mut n = 0;
        let bytes = store.scan_all(|_| n += 1);
        assert_eq!(n, objs.len());
        assert_eq!(bytes, store.bytes());
    }
}
