//! Server-side result sets: the session workspace's storage layer.
//!
//! The paper's science scenarios are multi-step — "the query agent
//! selects a candidate set, then the astronomer refines, cross-matches
//! and aggregates *that set*" — so results must land somewhere queries
//! can compose over, not just stream past once. A [`ResultSet`] is that
//! landing place: a materialized bag of tag objects stored in the same
//! struct-of-arrays [`ColumnChunk`] layout as the tag partition's
//! containers, split into fixed-size chunks so a scan over the set has
//! morsels to parallelize across (one chunk = one morsel, byte-weighted
//! exactly like a tag container).
//!
//! Because the chunks are `ColumnChunk`s, the query engine's compiled
//! predicates and projections run over a stored set *unchanged*: a
//! [`ResultSet::scan_chunk`] yields the same `(ColumnBatch,
//! SelectionMask)` pairs as `TagStore::scan_morsel`, so `FROM <set>`
//! queries take the identical memory-bandwidth path as tag scans —
//! stored sets are not a row-at-a-time side door.
//!
//! Sets carry no HTM container clustering (their rows are whatever a
//! query yielded, in arrival order); spatial predicates over a set
//! therefore evaluate row-wise through the compiled `SpatialMask` /
//! interpreter geometry instead of a cover, and every chunk scan starts
//! from an all-set selection mask.

use crate::column::{ColumnBatch, ColumnChunk, SelectionMask, BATCH_ROWS};
use crate::store::RegionScan;
use sdss_catalog::TagObject;
use std::sync::Arc;

/// Default rows per chunk (= per scan morsel) of a materialized set.
/// Large enough to amortize per-morsel overhead, small enough that a
/// few-thousand-row workspace still yields several morsels for the
/// worker pool.
pub const RESULT_SET_CHUNK_ROWS: usize = 4096;

/// A named server-side result set: tag objects materialized columnar.
///
/// Immutable once built (sessions replace a name by swapping the
/// `Arc`'d set, so in-flight scans keep reading their snapshot).
#[derive(Debug, Clone)]
pub struct ResultSet {
    chunks: Vec<Arc<ColumnChunk>>,
    rows: usize,
    bytes: usize,
}

impl ResultSet {
    /// Rows stored in the set.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Heap bytes held by the set's columns (the session quota unit).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of chunks — the morsel count of a scan over this set.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The SoA chunks, in materialization order.
    pub fn chunks(&self) -> &[Arc<ColumnChunk>] {
        &self.chunks
    }

    /// Byte weight per chunk (the morsel-queue sharding input).
    pub fn chunk_bytes(&self) -> Vec<usize> {
        self.chunks.iter().map(|c| c.bytes()).collect()
    }

    /// Scan one chunk of the set, streaming its [`ColumnBatch`]es with
    /// all-set selection masks — the stored-set analog of
    /// `TagStore::scan_morsel` (sets have no cover; every row is
    /// selected until predicates run). The callback may return `false`
    /// to stop early. Returns the chunk's scan accounting and whether it
    /// ran to completion.
    pub fn scan_chunk(
        &self,
        idx: usize,
        mut f: impl FnMut(&ColumnBatch<'_>, &SelectionMask) -> bool,
    ) -> (RegionScan, bool) {
        let chunk = &self.chunks[idx];
        let mut stats = RegionScan {
            bytes_scanned: chunk.bytes(),
            containers_full: 1,
            ..RegionScan::default()
        };
        for batch in chunk.batches(BATCH_ROWS) {
            stats.objects_yielded += batch.len();
            let sel = SelectionMask::all_set(batch.len());
            if !f(&batch, &sel) {
                return (stats, false);
            }
        }
        (stats, true)
    }
}

/// Incremental [`ResultSet`] construction — the `INTO` writer sink's
/// fold target. Rows append in arrival order; a new chunk opens every
/// `chunk_rows` rows. Byte accounting is live so quota checks can run
/// per batch while the source query is still streaming.
#[derive(Debug)]
pub struct ResultSetBuilder {
    chunk_rows: usize,
    current: ColumnChunk,
    done: Vec<Arc<ColumnChunk>>,
    done_bytes: usize,
    rows: usize,
}

impl ResultSetBuilder {
    /// A builder cutting chunks of `chunk_rows` rows (clamped to ≥ 1).
    pub fn new(chunk_rows: usize) -> ResultSetBuilder {
        ResultSetBuilder {
            chunk_rows: chunk_rows.max(1),
            current: ColumnChunk::new(),
            done: Vec::new(),
            done_bytes: 0,
            rows: 0,
        }
    }

    /// Append one tag row (with its level-20 HTM id, kept for future
    /// cross-match support; stored-set scans never consult it today).
    pub fn push(&mut self, tag: &TagObject, htm20: u64) {
        self.current.push(tag, htm20);
        self.rows += 1;
        if self.current.len() >= self.chunk_rows {
            self.done_bytes += self.current.bytes();
            self.done.push(Arc::new(std::mem::take(&mut self.current)));
        }
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Live byte total (sealed chunks + the open one) — the number
    /// session quotas are enforced against mid-materialization.
    pub fn bytes(&self) -> usize {
        self.done_bytes + self.current.bytes()
    }

    /// Seal the open chunk and produce the immutable set.
    pub fn finish(mut self) -> ResultSet {
        if !self.current.is_empty() {
            self.done_bytes += self.current.bytes();
            self.done.push(Arc::new(self.current));
        }
        ResultSet {
            chunks: self.done,
            rows: self.rows,
            bytes: self.done_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;

    fn tags(n: usize, seed: u64) -> Vec<(TagObject, u64)> {
        SkyModel::small(seed)
            .generate()
            .unwrap()
            .iter()
            .take(n)
            .map(|o| (TagObject::from_photo(o), o.htm20))
            .collect()
    }

    #[test]
    fn builder_cuts_chunks_and_counts_bytes() {
        let rows = tags(950, 7);
        assert_eq!(rows.len(), 950, "sky model too small for this test");
        let mut b = ResultSetBuilder::new(400);
        for (t, h) in &rows {
            b.push(t, *h);
        }
        assert_eq!(b.rows(), 950);
        let live_bytes = b.bytes();
        let set = b.finish();
        assert_eq!(set.rows(), 950);
        assert_eq!(set.n_chunks(), 3); // 400 + 400 + 150
        assert_eq!(set.bytes(), live_bytes);
        assert_eq!(
            set.bytes(),
            set.chunks().iter().map(|c| c.bytes()).sum::<usize>()
        );
        assert_eq!(set.chunk_bytes().len(), 3);
    }

    #[test]
    fn scan_chunk_yields_every_row_in_order() {
        let rows = tags(900, 8);
        assert!(rows.len() > 512, "need at least two chunks");
        let mut b = ResultSetBuilder::new(512);
        for (t, h) in &rows {
            b.push(t, *h);
        }
        let set = b.finish();
        let mut seen: Vec<u64> = Vec::new();
        let mut total = RegionScan::default();
        for idx in 0..set.n_chunks() {
            let (stats, done) = set.scan_chunk(idx, |batch, sel| {
                assert_eq!(sel.count(), batch.len(), "sets start all-selected");
                seen.extend(batch.obj_id);
                true
            });
            assert!(done);
            total.merge(&stats);
        }
        let want: Vec<u64> = rows.iter().map(|(t, _)| t.obj_id).collect();
        assert_eq!(seen, want, "chunk scans preserve arrival order");
        assert_eq!(total.objects_yielded, rows.len());
        assert_eq!(total.bytes_scanned, set.bytes());
        assert_eq!(total.containers_full, set.n_chunks());
    }

    #[test]
    fn scan_chunk_early_stop() {
        let rows = tags(800, 9);
        let mut b = ResultSetBuilder::new(4096);
        for (t, h) in &rows {
            b.push(t, *h);
        }
        let set = b.finish();
        let mut batches = 0;
        let (_, done) = set.scan_chunk(0, |_, _| {
            batches += 1;
            false
        });
        assert!(!done);
        assert_eq!(batches, 1);
    }

    #[test]
    fn empty_set_is_well_formed() {
        let set = ResultSetBuilder::new(100).finish();
        assert!(set.is_empty());
        assert_eq!(set.n_chunks(), 0);
        assert_eq!(set.bytes(), 0);
    }
}
