//! Fixed-size pages of fixed-width records.
//!
//! Containers store their objects in 8 KB pages of serialized records, so
//! every scan pays honest serialization/deserialization and byte-count
//! costs — the quantities the paper's scan-rate arguments are about.

use crate::StorageError;
use bytes::{Bytes, BytesMut};

/// Page size in bytes. 8 KB, the classic database page.
pub const PAGE_SIZE: usize = 8192;

/// A page of fixed-width records.
#[derive(Debug, Clone)]
pub struct Page {
    buf: BytesMut,
    record_len: usize,
}

impl Page {
    /// Create an empty page for records of `record_len` bytes.
    pub fn new(record_len: usize) -> Result<Page, StorageError> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge {
                len: record_len,
                max: PAGE_SIZE,
            });
        }
        Ok(Page {
            buf: BytesMut::with_capacity(PAGE_SIZE.min(record_len * 8)),
            record_len,
        })
    }

    /// Records currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() / self.record_len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records per page.
    #[inline]
    pub fn capacity(&self) -> usize {
        PAGE_SIZE / self.record_len
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Bytes of payload stored.
    #[inline]
    pub fn bytes_used(&self) -> usize {
        self.buf.len()
    }

    /// Append a record. Returns `false` (and stores nothing) if full.
    pub fn push_record(&mut self, record: &[u8]) -> Result<bool, StorageError> {
        if record.len() != self.record_len {
            return Err(StorageError::Corrupt(format!(
                "record of {} bytes in a page of {}-byte records",
                record.len(),
                self.record_len
            )));
        }
        if self.is_full() {
            return Ok(false);
        }
        self.buf.extend_from_slice(record);
        Ok(true)
    }

    /// Record at `slot`.
    pub fn record(&self, slot: usize) -> Option<&[u8]> {
        if slot < self.len() {
            Some(&self.buf[slot * self.record_len..(slot + 1) * self.record_len])
        } else {
            None
        }
    }

    /// Iterate over record slices.
    pub fn iter(&self) -> PageIter<'_> {
        PageIter {
            page: self,
            next: 0,
        }
    }

    /// The raw payload (for shipping pages between simulated nodes).
    pub fn payload(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Rebuild a page from a shipped payload.
    pub fn from_payload(payload: &[u8], record_len: usize) -> Result<Page, StorageError> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge {
                len: record_len,
                max: PAGE_SIZE,
            });
        }
        if !payload.len().is_multiple_of(record_len) || payload.len() > PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "payload of {} bytes is not a whole number of {}-byte records",
                payload.len(),
                record_len
            )));
        }
        let mut buf = BytesMut::with_capacity(payload.len());
        buf.extend_from_slice(payload);
        Ok(Page { buf, record_len })
    }
}

/// Iterator over the records of a page.
pub struct PageIter<'a> {
    page: &'a Page,
    next: usize,
}

impl<'a> Iterator for PageIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let r = self.page.record(self.next);
        if r.is_some() {
            self.next += 1;
        }
        r
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.page.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PageIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read() {
        let mut p = Page::new(16).unwrap();
        assert_eq!(p.capacity(), PAGE_SIZE / 16);
        let rec_a = [0xAAu8; 16];
        let rec_b = [0xBBu8; 16];
        assert!(p.push_record(&rec_a).unwrap());
        assert!(p.push_record(&rec_b).unwrap());
        assert_eq!(p.len(), 2);
        assert_eq!(p.record(0).unwrap(), &rec_a);
        assert_eq!(p.record(1).unwrap(), &rec_b);
        assert_eq!(p.record(2), None);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn fills_up_exactly() {
        let mut p = Page::new(1000).unwrap();
        let rec = [7u8; 1000];
        for _ in 0..p.capacity() {
            assert!(p.push_record(&rec).unwrap());
        }
        assert!(p.is_full());
        assert!(!p.push_record(&rec).unwrap(), "push on a full page");
        assert_eq!(p.len(), 8); // 8192 / 1000
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(Page::new(0).is_err());
        assert!(Page::new(PAGE_SIZE + 1).is_err());
        let mut p = Page::new(8).unwrap();
        assert!(p.push_record(&[0u8; 9]).is_err());
    }

    #[test]
    fn payload_roundtrip() {
        let mut p = Page::new(32).unwrap();
        for i in 0..10u8 {
            p.push_record(&[i; 32]).unwrap();
        }
        let shipped = p.payload();
        let back = Page::from_payload(&shipped, 32).unwrap();
        assert_eq!(back.len(), 10);
        assert_eq!(back.record(7).unwrap(), &[7u8; 32]);
        // Corrupt payloads rejected.
        assert!(Page::from_payload(&shipped[..33], 32).is_err());
    }

    proptest! {
        #[test]
        fn prop_records_come_back_in_order(
            record_len in 1usize..256,
            n in 0usize..64,
        ) {
            let mut p = Page::new(record_len).unwrap();
            let mut pushed = Vec::new();
            for i in 0..n {
                let rec: Vec<u8> = (0..record_len).map(|j| ((i * 31 + j) % 251) as u8).collect();
                if p.push_record(&rec).unwrap() {
                    pushed.push(rec);
                } else {
                    break;
                }
            }
            let got: Vec<Vec<u8>> = p.iter().map(|r| r.to_vec()).collect();
            prop_assert_eq!(got, pushed);
        }
    }
}
