//! The tag store: the paper's vertical partition of popular attributes.
//!
//! A parallel, container-clustered store of 64-byte [`TagObject`] records
//! projected from the full store. Queries that touch only the ten popular
//! attributes run here and read ~19× fewer bytes (experiment E5); the
//! pointer (`obj_id`) fetches the full object on demand.
//!
//! Each container additionally keeps a struct-of-arrays [`ColumnChunk`]
//! image of its rows, built at projection time. [`TagStore::scan_batches`]
//! streams those chunks as [`ColumnBatch`]es with a [`SelectionMask`]
//! pre-filled from the HTM cover (full trixels set, boundary trixels
//! exact-tested, everything else cleared) — the substrate the query
//! engine's compiled predicates run on at memory bandwidth.

use crate::column::{ColumnBatch, ColumnChunk, SelectionMask, BATCH_ROWS};
use crate::container::Container;
use crate::cover_cache::CoverCache;
use crate::store::{ObjectStore, RegionScan};
use crate::StorageError;
use sdss_catalog::{PhotoObj, TagObject};
use sdss_htm::{Cover, Domain, HtmId, HtmRangeSet};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Precomputed cover machinery for one region scan, shared by the row
/// and batch scan paths.
struct CoverWalk {
    cover: Arc<Cover>,
    /// Touched deep ranges coarsened to the container level.
    touched: HtmRangeSet,
    level: u8,
    /// Bit shift from level-20 ids down to the cover level.
    shift: u64,
    /// Did the cover come from the cache?
    cache_hit: bool,
}

/// One unit of parallel scan work: a single touched container of a
/// planned batch scan.
#[derive(Debug, Clone, Copy)]
pub struct TagMorsel {
    /// Raw container id.
    pub container: u64,
    /// Wholly inside the cover: every row selected without geometry.
    pub full: bool,
    /// Serialized payload bytes — the byte-balancing weight for
    /// [`crate::MorselQueue`] sharding.
    pub bytes: usize,
}

/// A resolved columnar scan: the HTM cover decision made once, the
/// touched containers listed as morsels. Shareable across scan workers
/// (`Send + Sync`, typically behind an `Arc`).
#[derive(Debug)]
pub struct TagScanPlan {
    morsels: Vec<TagMorsel>,
    /// `None` for unrestricted sweeps (no geometry at all).
    cover: Option<Arc<Cover>>,
    domain: Option<Domain>,
    /// Bit shift from level-20 ids down to the cover level.
    shift: u64,
    cache_hit: bool,
}

impl TagScanPlan {
    /// The touched containers, in container-id (spatial) order.
    pub fn morsels(&self) -> &[TagMorsel] {
        &self.morsels
    }

    /// Byte weights per morsel (the [`crate::MorselQueue`] input).
    pub fn morsel_bytes(&self) -> Vec<usize> {
        self.morsels.iter().map(|m| m.bytes).collect()
    }

    pub fn is_empty(&self) -> bool {
        self.morsels.is_empty()
    }

    /// Whether the plan-time cover lookup hit the cache (`None` when the
    /// scan is an unrestricted sweep and no cover was needed).
    pub fn cover_cache_hit(&self) -> Option<bool> {
        self.cover.as_ref().map(|_| self.cache_hit)
    }
}

/// Vertical partition holding tag objects, clustered like the full store.
#[derive(Debug)]
pub struct TagStore {
    container_level: u8,
    scan_cover_level: u8,
    containers: BTreeMap<u64, Container>,
    /// Slot-parallel SoA image of each container (`Arc` so simulated
    /// cluster nodes can ship chunks without copying the columns).
    columns: BTreeMap<u64, Arc<ColumnChunk>>,
    /// Serialization scratch reused across inserts.
    scratch: Vec<u8>,
    /// Memoized region covers for repeated queries.
    cover_cache: CoverCache,
}

impl TagStore {
    /// Project the vertical partition out of a full store.
    pub fn from_store(store: &ObjectStore) -> TagStore {
        let mut out = TagStore {
            container_level: store.config().container_level,
            scan_cover_level: store.config().scan_cover_level,
            containers: BTreeMap::new(),
            columns: BTreeMap::new(),
            scratch: Vec::with_capacity(TagObject::SERIALIZED_LEN),
            cover_cache: CoverCache::new(),
        };
        for container in store.containers() {
            for mut rec in container.iter_records() {
                let obj = PhotoObj::read_from(&mut rec).expect("valid store record");
                out.insert(&obj).expect("projection of a valid object");
            }
        }
        out
    }

    /// Insert the tag projection of one object (row bytes + columns).
    pub fn insert(&mut self, obj: &PhotoObj) -> Result<(), StorageError> {
        let tag = TagObject::from_photo(obj);
        let deep = HtmId::from_raw(obj.htm20)?;
        let cid = deep.ancestor_at(self.container_level);
        let container = self
            .containers
            .entry(cid.raw())
            .or_insert_with(|| Container::new(cid, TagObject::SERIALIZED_LEN));
        self.scratch.clear();
        tag.write_to(&mut self.scratch);
        container.push_record(&self.scratch, tag.mag(2), tag.class)?;
        let chunk = self.columns.entry(cid.raw()).or_default();
        Arc::make_mut(chunk).push(&tag, obj.htm20);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.containers.values().map(Container::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes — the "much less space" of the paper.
    pub fn bytes(&self) -> usize {
        self.containers.values().map(Container::bytes).sum()
    }

    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// The SoA chunks, keyed by raw container id.
    pub fn column_chunks(&self) -> impl Iterator<Item = (u64, &Arc<ColumnChunk>)> {
        self.columns.iter().map(|(&raw, c)| (raw, c))
    }

    pub fn column_chunk(&self, raw: u64) -> Option<&Arc<ColumnChunk>> {
        self.columns.get(&raw)
    }

    /// Cover-cache (hits, misses) — observability for repeated queries.
    pub fn cover_cache_stats(&self) -> (u64, u64) {
        self.cover_cache.stats()
    }

    /// The memoized cover cache (shared with plan-time estimation).
    pub fn cover_cache(&self) -> &CoverCache {
        &self.cover_cache
    }

    /// HTM level of the clustering containers.
    pub fn container_level(&self) -> u8 {
        self.container_level
    }

    /// Full scan of all tags.
    pub fn scan_all(&self, mut f: impl FnMut(&TagObject)) -> usize {
        self.scan_all_until(|tag| {
            f(tag);
            true
        })
        .0
    }

    /// Like [`TagStore::scan_all`] but the callback may return `false`
    /// to stop early (cancelled queries). Returns
    /// `(bytes_scanned, containers_read)` for the containers actually
    /// opened.
    pub fn scan_all_until(&self, mut f: impl FnMut(&TagObject) -> bool) -> (usize, usize) {
        let mut bytes = 0;
        let mut containers = 0;
        'outer: for c in self.containers.values() {
            bytes += c.bytes();
            containers += 1;
            for mut rec in c.iter_records() {
                let tag = TagObject::read_from(&mut rec).expect("valid tag record");
                if !f(&tag) {
                    break 'outer;
                }
            }
        }
        (bytes, containers)
    }

    fn check_level(&self, cover_level: Option<u8>) -> Result<u8, StorageError> {
        let level = cover_level.unwrap_or(self.scan_cover_level);
        if level < self.container_level || level > 20 {
            return Err(StorageError::InvalidConfig(format!(
                "cover level {level} outside [{}, 20]",
                self.container_level
            )));
        }
        Ok(level)
    }

    /// Resolve the cover machinery for one region scan (shared by the
    /// row and batch paths so the cover logic exists exactly once).
    fn cover_walk(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
    ) -> Result<CoverWalk, StorageError> {
        let level = self.check_level(cover_level)?;
        let (cover, cache_hit) = self.cover_cache.get_or_compute_traced(domain, level)?;
        let touched = cover.touched_ranges().coarsen(level, self.container_level);
        Ok(CoverWalk {
            cover,
            touched,
            level,
            shift: 2 * (20 - level) as u64,
            cache_hit,
        })
    }

    /// Record one cover lookup into scan stats.
    fn record_cover(walk: &CoverWalk, stats: &mut RegionScan) {
        if walk.cache_hit {
            stats.cover_cache_hits += 1;
        } else {
            stats.cover_cache_misses += 1;
        }
    }

    /// Walk every touched container of a cover, classifying each as
    /// wholly inside the full cover or bisected — the single
    /// classification rule shared by the row scan, the batch scan plan,
    /// and anything else that shards by container.
    fn touched_containers<'a>(
        &'a self,
        walk: &'a CoverWalk,
    ) -> impl Iterator<Item = (u64, &'a Container, bool)> + 'a {
        let full = walk.cover.full_ranges();
        walk.touched.ranges().iter().flat_map(move |&(lo, hi)| {
            self.containers.range(lo..hi).map(move |(&raw, container)| {
                let (clo, chi) = container.id().deep_range(walk.level);
                (raw, container, full.contains_range(clo, chi))
            })
        })
    }

    /// [`TagStore::touched_containers`] plus the common byte/container
    /// stats accounting. `f` returns `false` to stop early.
    fn for_each_touched_container(
        &self,
        walk: &CoverWalk,
        stats: &mut RegionScan,
        mut f: impl FnMut(&u64, &Container, bool, &mut RegionScan) -> bool,
    ) {
        for (raw, container, container_full) in self.touched_containers(walk) {
            stats.bytes_scanned += container.bytes();
            if container_full {
                stats.containers_full += 1;
            } else {
                stats.containers_partial += 1;
            }
            if !f(&raw, container, container_full, stats) {
                return;
            }
        }
    }

    /// Region scan over tags, same cover logic as the full store.
    pub fn scan_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&TagObject),
    ) -> Result<RegionScan, StorageError> {
        self.scan_region_until(domain, cover_level, |t| {
            f(t);
            true
        })
    }

    /// Like [`TagStore::scan_region`] but the callback may return `false`
    /// to stop early.
    pub fn scan_region_until(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&TagObject) -> bool,
    ) -> Result<RegionScan, StorageError> {
        let walk = self.cover_walk(domain, cover_level)?;
        let (full, partial) = (walk.cover.full_ranges(), walk.cover.partial_ranges());

        let mut stats = RegionScan::default();
        Self::record_cover(&walk, &mut stats);
        let mut err: Option<StorageError> = None;
        self.for_each_touched_container(
            &walk,
            &mut stats,
            |raw, container, container_full, stats| {
                let mut read = |mut rec: &[u8]| match TagObject::read_from(&mut rec) {
                    Ok(tag) => Some(tag),
                    Err(e) => {
                        err = Some(e.into());
                        None
                    }
                };
                if container_full {
                    for rec in container.iter_records() {
                        let Some(tag) = read(rec) else { return false };
                        stats.objects_yielded += 1;
                        if !f(&tag) {
                            return false;
                        }
                    }
                    return true;
                }
                let deep_ids = &self.columns[raw].htm20;
                for (slot, rec) in container.iter_records().enumerate() {
                    let deep_id = deep_ids[slot] >> walk.shift;
                    if full.contains(deep_id) {
                        let Some(tag) = read(rec) else { return false };
                        stats.objects_yielded += 1;
                        if !f(&tag) {
                            return false;
                        }
                    } else if partial.contains(deep_id) {
                        let Some(tag) = read(rec) else { return false };
                        stats.objects_exact_tested += 1;
                        if domain.contains(tag.unit_vec()) {
                            stats.objects_yielded += 1;
                            if !f(&tag) {
                                return false;
                            }
                        }
                    }
                }
                true
            },
        );
        match err {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Resolve a columnar scan into a [`TagScanPlan`]: the cover decided
    /// exactly once, and every touched container listed as one morsel
    /// with its classification (wholly inside the cover vs bisected) and
    /// byte weight. The plan is `Send + Sync`; parallel scans share it
    /// behind an `Arc` and workers drain morsels independently via
    /// [`TagStore::scan_morsel`]. `domain = None` plans an unrestricted
    /// sweep (every container, no geometry).
    pub fn plan_batch_scan(
        &self,
        domain: Option<&Domain>,
        cover_level: Option<u8>,
    ) -> Result<TagScanPlan, StorageError> {
        let Some(domain) = domain else {
            let morsels = self
                .containers
                .iter()
                .map(|(&raw, c)| TagMorsel {
                    container: raw,
                    full: true,
                    bytes: c.bytes(),
                })
                .collect();
            return Ok(TagScanPlan {
                morsels,
                cover: None,
                domain: None,
                shift: 0,
                cache_hit: false,
            });
        };

        let walk = self.cover_walk(domain, cover_level)?;
        let morsels = self
            .touched_containers(&walk)
            .map(|(raw, container, full)| TagMorsel {
                container: raw,
                full,
                bytes: container.bytes(),
            })
            .collect();
        Ok(TagScanPlan {
            morsels,
            cover: Some(walk.cover),
            domain: Some(domain.clone()),
            shift: walk.shift,
            cache_hit: walk.cache_hit,
        })
    }

    /// Scan one morsel of a plan, streaming its [`ColumnBatch`]es with
    /// selection masks exactly as [`TagStore::scan_batches`] does. The
    /// callback may return `false` to stop. Returns this morsel's scan
    /// accounting (cover-cache counters stay zero — the lookup happened
    /// at plan time) and whether the morsel ran to completion.
    pub fn scan_morsel(
        &self,
        plan: &TagScanPlan,
        idx: usize,
        mut f: impl FnMut(&ColumnBatch<'_>, &SelectionMask) -> bool,
    ) -> (RegionScan, bool) {
        let m = &plan.morsels[idx];
        let mut stats = RegionScan::default();
        let container = &self.containers[&m.container];
        let chunk = &self.columns[&m.container];
        stats.bytes_scanned += container.bytes();
        if m.full {
            stats.containers_full += 1;
        } else {
            stats.containers_partial += 1;
        }
        for batch in chunk.batches(BATCH_ROWS) {
            let sel = if m.full {
                stats.objects_yielded += batch.len();
                SelectionMask::all_set(batch.len())
            } else {
                let cover = plan.cover.as_ref().expect("bisected morsels have a cover");
                let domain = plan
                    .domain
                    .as_ref()
                    .expect("bisected morsels have a domain");
                let (full, partial) = (cover.full_ranges(), cover.partial_ranges());
                let mut sel = SelectionMask::none_set(batch.len());
                for (i, &deep) in batch.htm20.iter().enumerate() {
                    let deep_id = deep >> plan.shift;
                    if full.contains(deep_id) {
                        sel.set(i);
                    } else if partial.contains(deep_id) {
                        stats.objects_exact_tested += 1;
                        if domain.contains(batch.unit_vec(i)) {
                            sel.set(i);
                        }
                    }
                }
                stats.objects_yielded += sel.count();
                sel
            };
            if !f(&batch, &sel) {
                return (stats, false);
            }
        }
        (stats, true)
    }

    /// Columnar region scan: streams each container's [`ColumnBatch`]es
    /// with a [`SelectionMask`] already encoding the spatial decision —
    /// rows in fully-covered trixels are set without any geometry, rows
    /// in boundary trixels are exact-tested, everything else is cleared.
    /// `domain = None` scans the whole store with all bits set.
    ///
    /// This is the serial driver over [`TagStore::plan_batch_scan`] +
    /// [`TagStore::scan_morsel`] — the query engine's parallel scan
    /// drains the same morsels from a worker pool instead.
    ///
    /// The callback may return `false` to stop early. `objects_yielded`
    /// counts selected rows.
    pub fn scan_batches(
        &self,
        domain: Option<&Domain>,
        cover_level: Option<u8>,
        mut f: impl FnMut(&ColumnBatch<'_>, &SelectionMask) -> bool,
    ) -> Result<RegionScan, StorageError> {
        let plan = self.plan_batch_scan(domain, cover_level)?;
        let mut stats = RegionScan::default();
        if let Some(hit) = plan.cover_cache_hit() {
            if hit {
                stats.cover_cache_hits += 1;
            } else {
                stats.cover_cache_misses += 1;
            }
        }
        for idx in 0..plan.morsels().len() {
            let (morsel_stats, completed) = self.scan_morsel(&plan, idx, &mut f);
            stats.merge(&morsel_stats);
            if !completed {
                break;
            }
        }
        Ok(stats)
    }

    /// Collect a region scan.
    pub fn query_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
    ) -> Result<(Vec<TagObject>, RegionScan), StorageError> {
        let mut out = Vec::new();
        let stats = self.scan_region(domain, cover_level, |t| out.push(*t))?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use sdss_catalog::SkyModel;
    use sdss_htm::Region;

    fn stores(seed: u64) -> (ObjectStore, TagStore, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let tags = TagStore::from_store(&store);
        (store, tags, objs)
    }

    #[test]
    fn projection_is_complete() {
        let (store, tags, objs) = stores(1);
        assert_eq!(tags.len(), objs.len());
        assert_eq!(tags.num_containers(), store.num_containers());
        // Chunks are slot-parallel with the record containers.
        for (raw, chunk) in tags.column_chunks() {
            let container = tags
                .containers()
                .find(|c| c.id().raw() == raw)
                .expect("chunk has a container");
            assert_eq!(chunk.len(), container.len());
        }
    }

    #[test]
    fn tag_store_is_much_smaller() {
        let (store, tags, _) = stores(2);
        let ratio = store.bytes() as f64 / tags.bytes() as f64;
        assert!(ratio > 10.0, "byte ratio {ratio:.1} must exceed 10x");
    }

    #[test]
    fn region_scan_agrees_with_full_store() {
        let (store, tags, _) = stores(3);
        for radius in [0.4, 1.5] {
            let domain = Region::circle(185.0, 15.0, radius).unwrap();
            let (full_rows, _) = store.query_region(&domain, None).unwrap();
            let (tag_rows, tag_stats) = tags.query_region(&domain, None).unwrap();
            assert_eq!(full_rows.len(), tag_rows.len(), "radius {radius}");
            let mut a: Vec<u64> = full_rows.iter().map(|o| o.obj_id).collect();
            let mut b: Vec<u64> = tag_rows.iter().map(|t| t.obj_id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            // And reads far fewer bytes.
            let (_, full_stats) = store.query_region(&domain, None).unwrap();
            assert!(tag_stats.bytes_scanned * 10 < full_stats.bytes_scanned);
        }
    }

    #[test]
    fn tags_point_back_to_full_objects() {
        let (store, tags, _) = stores(4);
        let domain = Region::circle(185.0, 15.0, 0.5).unwrap();
        let (tag_rows, _) = tags.query_region(&domain, None).unwrap();
        for tag in tag_rows.iter().take(25) {
            let full = store.get(tag.obj_id).unwrap();
            assert_eq!(full.obj_id, tag.obj_id);
            assert!((full.mag(2) - tag.mag(2)).abs() < 1e-6);
            assert_eq!(full.class, tag.class);
        }
    }

    #[test]
    fn batch_scan_selects_same_rows_as_row_scan() {
        let (_, tags, _) = stores(5);
        for radius in [0.4, 1.5, 3.0] {
            let domain = Region::circle(185.0, 15.0, radius).unwrap();
            let (rows, row_stats) = tags.query_region(&domain, None).unwrap();
            let mut batch_ids: Vec<u64> = Vec::new();
            let batch_stats = tags
                .scan_batches(Some(&domain), None, |batch, sel| {
                    batch_ids.extend(sel.iter_set().map(|i| batch.obj_id[i]));
                    true
                })
                .unwrap();
            let mut row_ids: Vec<u64> = rows.iter().map(|t| t.obj_id).collect();
            row_ids.sort_unstable();
            batch_ids.sort_unstable();
            assert_eq!(row_ids, batch_ids, "radius {radius}");
            assert_eq!(batch_stats.objects_yielded, row_stats.objects_yielded);
            assert_eq!(
                batch_stats.objects_exact_tested,
                row_stats.objects_exact_tested
            );
            assert_eq!(batch_stats.bytes_scanned, row_stats.bytes_scanned);
        }
    }

    #[test]
    fn batch_scan_unrestricted_covers_everything() {
        let (_, tags, objs) = stores(6);
        let mut n = 0usize;
        let stats = tags
            .scan_batches(None, None, |batch, sel| {
                assert_eq!(sel.count(), batch.len());
                n += batch.len();
                true
            })
            .unwrap();
        assert_eq!(n, objs.len());
        assert_eq!(stats.objects_yielded, objs.len());
    }

    #[test]
    fn batch_scan_early_stop() {
        let (_, tags, _) = stores(7);
        let mut batches = 0usize;
        tags.scan_batches(None, None, |_, _| {
            batches += 1;
            false
        })
        .unwrap();
        assert_eq!(batches, 1);
    }

    #[test]
    fn repeated_region_scans_hit_the_cover_cache() {
        let (_, tags, _) = stores(8);
        let domain = Region::circle(185.0, 15.0, 1.0).unwrap();
        let (a, _) = tags.query_region(&domain, None).unwrap();
        let (hits0, misses0) = tags.cover_cache_stats();
        assert_eq!((hits0, misses0), (0, 1));
        let (b, _) = tags.query_region(&domain, None).unwrap();
        assert_eq!(a.len(), b.len());
        let (hits1, misses1) = tags.cover_cache_stats();
        assert_eq!((hits1, misses1), (1, 1));
    }
}
