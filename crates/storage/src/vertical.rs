//! The tag store: the paper's vertical partition of popular attributes.
//!
//! A parallel, container-clustered store of 64-byte [`TagObject`] records
//! projected from the full store. Queries that touch only the ten popular
//! attributes run here and read ~19× fewer bytes (experiment E5); the
//! pointer (`obj_id`) fetches the full object on demand.

use crate::container::Container;
use crate::store::{ObjectStore, RegionScan};
use crate::StorageError;
use sdss_catalog::{PhotoObj, TagObject};
use sdss_htm::{Cover, Domain, HtmId};
use std::collections::BTreeMap;

/// Vertical partition holding tag objects, clustered like the full store.
#[derive(Debug)]
pub struct TagStore {
    container_level: u8,
    scan_cover_level: u8,
    containers: BTreeMap<u64, Container>,
    /// tag record slot → htm20, parallel to insertion order per container
    /// (tags don't carry their deep id; we keep it for cover filtering).
    deep_ids: BTreeMap<u64, Vec<u64>>,
}

impl TagStore {
    /// Project the vertical partition out of a full store.
    pub fn from_store(store: &ObjectStore) -> TagStore {
        let mut out = TagStore {
            container_level: store.config().container_level,
            scan_cover_level: store.config().scan_cover_level,
            containers: BTreeMap::new(),
            deep_ids: BTreeMap::new(),
        };
        let mut scratch = Vec::with_capacity(TagObject::SERIALIZED_LEN);
        for container in store.containers() {
            for mut rec in container.iter_records() {
                let obj = PhotoObj::read_from(&mut rec).expect("valid store record");
                out.insert(&obj, &mut scratch)
                    .expect("projection of a valid object");
            }
        }
        out
    }

    /// Insert the tag projection of one object.
    pub fn insert(&mut self, obj: &PhotoObj, scratch: &mut Vec<u8>) -> Result<(), StorageError> {
        let tag = TagObject::from_photo(obj);
        let deep = HtmId::from_raw(obj.htm20)?;
        let cid = deep.ancestor_at(self.container_level);
        let container = self
            .containers
            .entry(cid.raw())
            .or_insert_with(|| Container::new(cid, TagObject::SERIALIZED_LEN));
        scratch.clear();
        tag.write_to(scratch);
        container.push_record(scratch, tag.mag(2), tag.class)?;
        self.deep_ids.entry(cid.raw()).or_default().push(obj.htm20);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.containers.values().map(Container::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes — the "much less space" of the paper.
    pub fn bytes(&self) -> usize {
        self.containers.values().map(Container::bytes).sum()
    }

    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    pub fn containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Full scan of all tags.
    pub fn scan_all(&self, mut f: impl FnMut(&TagObject)) -> usize {
        let mut bytes = 0;
        for c in self.containers.values() {
            bytes += c.bytes();
            for mut rec in c.iter_records() {
                let tag = TagObject::read_from(&mut rec).expect("valid tag record");
                f(&tag);
            }
        }
        bytes
    }

    /// Region scan over tags, same cover logic as the full store.
    pub fn scan_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&TagObject),
    ) -> Result<RegionScan, StorageError> {
        self.scan_region_until(domain, cover_level, |t| {
            f(t);
            true
        })
    }

    /// Like [`TagStore::scan_region`] but the callback may return `false`
    /// to stop early.
    pub fn scan_region_until(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
        mut f: impl FnMut(&TagObject) -> bool,
    ) -> Result<RegionScan, StorageError> {
        let level = cover_level.unwrap_or(self.scan_cover_level);
        if level < self.container_level || level > 20 {
            return Err(StorageError::InvalidConfig(format!(
                "cover level {level} outside [{}, 20]",
                self.container_level
            )));
        }
        let cover = Cover::compute(domain, level)?;
        let full = cover.full_ranges();
        let partial = cover.partial_ranges();
        let touched = cover.touched_ranges().coarsen(level, self.container_level);
        let shift = 2 * (20 - level) as u64;

        let mut stats = RegionScan::default();
        'outer: for &(lo, hi) in touched.ranges() {
            for (raw, container) in self.containers.range(lo..hi) {
                stats.bytes_scanned += container.bytes();
                let deep_ids = &self.deep_ids[raw];
                let (clo, chi) = container.id().deep_range(level);
                if full.contains_range(clo, chi) {
                    stats.containers_full += 1;
                    for mut rec in container.iter_records() {
                        let tag = TagObject::read_from(&mut rec)?;
                        stats.objects_yielded += 1;
                        if !f(&tag) {
                            break 'outer;
                        }
                    }
                    continue;
                }
                stats.containers_partial += 1;
                for (slot, mut rec) in container.iter_records().enumerate() {
                    let deep_id = deep_ids[slot] >> shift;
                    if full.contains(deep_id) {
                        let tag = TagObject::read_from(&mut rec)?;
                        stats.objects_yielded += 1;
                        if !f(&tag) {
                            break 'outer;
                        }
                    } else if partial.contains(deep_id) {
                        let tag = TagObject::read_from(&mut rec)?;
                        stats.objects_exact_tested += 1;
                        if domain.contains(tag.unit_vec()) {
                            stats.objects_yielded += 1;
                            if !f(&tag) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Collect a region scan.
    pub fn query_region(
        &self,
        domain: &Domain,
        cover_level: Option<u8>,
    ) -> Result<(Vec<TagObject>, RegionScan), StorageError> {
        let mut out = Vec::new();
        let stats = self.scan_region(domain, cover_level, |t| out.push(*t))?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use sdss_catalog::SkyModel;
    use sdss_htm::Region;

    fn stores(seed: u64) -> (ObjectStore, TagStore, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let tags = TagStore::from_store(&store);
        (store, tags, objs)
    }

    #[test]
    fn projection_is_complete() {
        let (store, tags, objs) = stores(1);
        assert_eq!(tags.len(), objs.len());
        assert_eq!(tags.num_containers(), store.num_containers());
    }

    #[test]
    fn tag_store_is_much_smaller() {
        let (store, tags, _) = stores(2);
        let ratio = store.bytes() as f64 / tags.bytes() as f64;
        assert!(ratio > 10.0, "byte ratio {ratio:.1} must exceed 10x");
    }

    #[test]
    fn region_scan_agrees_with_full_store() {
        let (store, tags, _) = stores(3);
        for radius in [0.4, 1.5] {
            let domain = Region::circle(185.0, 15.0, radius).unwrap();
            let (full_rows, _) = store.query_region(&domain, None).unwrap();
            let (tag_rows, tag_stats) = tags.query_region(&domain, None).unwrap();
            assert_eq!(full_rows.len(), tag_rows.len(), "radius {radius}");
            let mut a: Vec<u64> = full_rows.iter().map(|o| o.obj_id).collect();
            let mut b: Vec<u64> = tag_rows.iter().map(|t| t.obj_id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            // And reads far fewer bytes.
            let (_, full_stats) = store.query_region(&domain, None).unwrap();
            assert!(tag_stats.bytes_scanned * 10 < full_stats.bytes_scanned);
        }
    }

    #[test]
    fn tags_point_back_to_full_objects() {
        let (store, tags, _) = stores(4);
        let domain = Region::circle(185.0, 15.0, 0.5).unwrap();
        let (tag_rows, _) = tags.query_region(&domain, None).unwrap();
        for tag in tag_rows.iter().take(25) {
            let full = store.get(tag.obj_id).unwrap();
            assert_eq!(full.obj_id, tag.obj_id);
            assert!((full.mag(2) - tag.mag(2)).abs() < 1e-6);
            assert_eq!(full.class, tag.class);
        }
    }
}
