//! Spatial partitioning of containers across servers.
//!
//! Paper, §Indexing the Sky: "The SDSS data is too large to fit on one
//! disk or even one server. The base-data objects will be spatially
//! partitioned among the servers. As new servers are added, the data will
//! repartition."
//!
//! Containers are assigned in HTM id order (spatially coherent: the
//! quad-tree's depth-first order keeps neighbors together) with a greedy
//! byte-balancing rule. The dataflow cluster instantiates one simulated
//! node per server from this map.

use crate::store::ObjectStore;
use crate::StorageError;

/// Assignment of containers to `n_servers` servers.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    n_servers: usize,
    /// (container raw id, server) sorted by container id.
    assignment: Vec<(u64, usize)>,
    /// Bytes per server.
    server_bytes: Vec<usize>,
}

impl PartitionMap {
    /// Build a partition of the store's containers over `n_servers`,
    /// walking containers in id order and always filling the emptiest-so-
    /// far prefix server (contiguous ranges, greedy balance).
    pub fn build(store: &ObjectStore, n_servers: usize) -> Result<PartitionMap, StorageError> {
        Self::build_from_sizes(
            store.containers().map(|c| (c.id().raw(), c.bytes())),
            n_servers,
        )
    }

    /// The generic core of [`PartitionMap::build`]: assign any id-ordered
    /// `(id, bytes)` sequence to `n_servers` contiguous byte-balanced
    /// ranges. The tag store's parallel scan uses this to shard its
    /// touched-container list into per-worker morsel runs, so the
    /// cluster partitioner and the intra-query sharder are one rule.
    pub fn build_from_sizes(
        items: impl IntoIterator<Item = (u64, usize)>,
        n_servers: usize,
    ) -> Result<PartitionMap, StorageError> {
        if n_servers == 0 {
            return Err(StorageError::InvalidConfig("zero servers".into()));
        }
        let items: Vec<(u64, usize)> = items.into_iter().collect();
        let total_bytes: usize = items.iter().map(|&(_, b)| b).sum();
        let target = total_bytes as f64 / n_servers as f64;
        let mut assignment = Vec::with_capacity(items.len());
        let mut server_bytes = vec![0usize; n_servers];
        let mut server = 0usize;
        for (id, bytes) in items {
            // Move to the next server once this one reached its share —
            // but never run past the last server.
            if server + 1 < n_servers && (server_bytes[server] as f64) >= target {
                server += 1;
            }
            assignment.push((id, server));
            server_bytes[server] += bytes;
        }
        Ok(PartitionMap {
            n_servers,
            assignment,
            server_bytes,
        })
    }

    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Which server owns a container (`None` if the container is unknown).
    pub fn server_of(&self, container_raw: u64) -> Option<usize> {
        self.assignment
            .binary_search_by_key(&container_raw, |&(id, _)| id)
            .ok()
            .map(|i| self.assignment[i].1)
    }

    /// Container ids owned by `server`, in id order.
    pub fn containers_of(&self, server: usize) -> Vec<u64> {
        self.assignment
            .iter()
            .filter(|&&(_, s)| s == server)
            .map(|&(id, _)| id)
            .collect()
    }

    /// Bytes per server.
    pub fn server_bytes(&self) -> &[usize] {
        &self.server_bytes
    }

    /// Total bytes across every server (the whole assigned store).
    pub fn total_bytes(&self) -> usize {
        self.server_bytes.iter().sum()
    }

    /// Load imbalance: max server bytes / mean server bytes (1.0 = even).
    pub fn imbalance(&self) -> f64 {
        let max = self.server_bytes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.server_bytes.iter().sum::<usize>() as f64 / self.n_servers as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Repartition for a new server count — the paper's "as new servers
    /// are added, the data will repartition".
    pub fn repartition(
        &self,
        store: &ObjectStore,
        n_servers: usize,
    ) -> Result<PartitionMap, StorageError> {
        PartitionMap::build(store, n_servers)
    }

    /// Number of containers that change servers between two partitions.
    pub fn moved_containers(&self, other: &PartitionMap) -> usize {
        let mut moved = 0;
        for &(id, s) in &self.assignment {
            if other.server_of(id) != Some(s) {
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use sdss_catalog::SkyModel;

    fn store(seed: u64) -> ObjectStore {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        s
    }

    #[test]
    fn every_container_is_assigned_once() {
        let s = store(1);
        let pm = PartitionMap::build(&s, 4).unwrap();
        for c in s.containers() {
            assert!(pm.server_of(c.id().raw()).is_some());
        }
        let total: usize = (0..4).map(|srv| pm.containers_of(srv).len()).sum();
        assert_eq!(total, s.num_containers());
        assert_eq!(pm.server_of(0xffff_ffff), None);
    }

    #[test]
    fn bytes_are_roughly_balanced() {
        let s = store(2);
        let pm = PartitionMap::build(&s, 4).unwrap();
        // Clustered data is lumpy; the greedy ranges still keep the
        // imbalance bounded (one fat container can't be split, so allow 2x).
        assert!(
            pm.imbalance() < 2.0,
            "imbalance {} with per-server {:?}",
            pm.imbalance(),
            pm.server_bytes()
        );
        assert_eq!(
            pm.server_bytes().iter().sum::<usize>(),
            s.bytes(),
            "all bytes assigned"
        );
    }

    #[test]
    fn assignment_is_spatially_contiguous() {
        // In id order, the server index never decreases: contiguous ranges.
        let s = store(3);
        let pm = PartitionMap::build(&s, 5).unwrap();
        let mut prev = 0usize;
        for c in s.containers() {
            let srv = pm.server_of(c.id().raw()).unwrap();
            assert!(srv >= prev, "server went backwards");
            prev = srv;
        }
    }

    #[test]
    fn one_server_owns_all() {
        let s = store(4);
        let pm = PartitionMap::build(&s, 1).unwrap();
        assert_eq!(pm.containers_of(0).len(), s.num_containers());
        assert!((pm.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_servers_rejected() {
        let s = store(5);
        assert!(PartitionMap::build(&s, 0).is_err());
    }

    #[test]
    fn repartition_preserves_total_bytes() {
        let s = store(7);
        let pm3 = PartitionMap::build(&s, 3).unwrap();
        assert_eq!(pm3.total_bytes(), s.bytes());
        for n in [1, 2, 5, 9] {
            let pm = pm3.repartition(&s, n).unwrap();
            assert_eq!(pm.total_bytes(), s.bytes(), "n_servers = {n}");
            assert_eq!(
                (0..n).map(|srv| pm.containers_of(srv).len()).sum::<usize>(),
                s.num_containers()
            );
        }
    }

    #[test]
    fn noop_repartition_moves_nothing() {
        let s = store(8);
        let pm = PartitionMap::build(&s, 4).unwrap();
        let same = pm.repartition(&s, 4).unwrap();
        // Identical inputs produce an identical greedy assignment: the
        // minimal move set for a no-op repartition is empty.
        assert_eq!(pm.moved_containers(&same), 0);
        assert_eq!(same.moved_containers(&pm), 0);
    }

    #[test]
    fn imbalance_bounded_on_skewed_sizes() {
        // A synthetic skewed store: one dense strip holds most of the
        // data in a few fat containers while a long tail of sparse
        // containers carries the rest. No single container exceeds 1/4
        // of the total, so a 4-way greedy split must stay within 2x of
        // the mean.
        let mut items: Vec<(u64, usize)> = Vec::new();
        let mut total = 0usize;
        for i in 0..64u64 {
            let bytes = if i < 4 {
                200_000
            } else {
                3_000 + (i as usize * 37) % 900
            };
            items.push((i, bytes));
            total += bytes;
        }
        let fat = 200_000usize;
        assert!(fat * 4 < total, "no container may dominate the total");
        for n in [2usize, 4, 8] {
            let pm = PartitionMap::build_from_sizes(items.iter().copied(), n).unwrap();
            assert_eq!(pm.total_bytes(), total);
            assert!(
                pm.imbalance() < 2.0,
                "{n} servers: imbalance {} with {:?}",
                pm.imbalance(),
                pm.server_bytes()
            );
        }
    }

    #[test]
    fn repartition_moves_bounded_fraction() {
        let s = store(6);
        let pm4 = PartitionMap::build(&s, 4).unwrap();
        let pm5 = pm4.repartition(&s, 5).unwrap();
        assert_eq!(pm5.n_servers(), 5);
        let moved = pm4.moved_containers(&pm5);
        // Range repartitioning moves data, but never more than everything.
        assert!(moved <= s.num_containers());
        // And the new partition is still balanced.
        assert!(pm5.imbalance() < 2.5, "imbalance {}", pm5.imbalance());
    }
}
