//! # Container-clustered object store
//!
//! The archive's storage layer, modeled on the paper's Objectivity/DB
//! deployment but built from scratch:
//!
//! > "Data can be quantized into containers. Each container has objects of
//! > similar properties, e.g. colors, from the same region of the sky. If
//! > the containers are stored as clusters, data locality will be very
//! > high [...] These containers represent a coarse-grained density map of
//! > the data. They define the base of an index tree that tells us whether
//! > containers are fully inside, outside or bisected by our query."
//!
//! * [`page`] — fixed-size slotted pages of serialized records
//! * [`container`] — one clustering unit per HTM trixel at the store's
//!   partition level, with per-container statistics (the density map)
//! * [`store`] — the object store: bulk insert, id lookup, region scans
//!   driven by HTM covers
//! * [`vertical`] — the tag-object vertical partition (paper §Desktop
//!   Data Analysis)
//! * [`column`] — struct-of-arrays tag columns per container, batch
//!   views with selection bitmaps, and the zero-copy `TagView` (the E5
//!   scan path's memory-bandwidth substrate)
//! * [`cover_cache`] — memoized HTM covers keyed by
//!   `(domain fingerprint, level)` for repeated region queries
//! * [`resultset`] — server-side result sets (session workspaces):
//!   query results materialized into the same SoA chunk layout so
//!   `FROM <set>` scans ride the compiled morsel-parallel path
//! * [`sample`] — deterministic percentage samples ("a 1% sample ... to
//!   quickly test and debug programs")
//! * [`partition`] — spatial partitioning of containers over servers
//! * [`morsel`] — byte-balanced, work-stealing morsel queues (the
//!   single-node analog of striping one scan across the scan machine)
//! * [`estimate`] — output volume / search time prediction from the
//!   intersection volume

pub mod column;
pub mod container;
pub mod cover_cache;
pub mod estimate;
pub mod morsel;
pub mod page;
pub mod partition;
pub mod resultset;
pub mod sample;
pub mod store;
pub mod vertical;
pub mod zone;

pub use column::{ColumnBatch, ColumnChunk, SelectionMask, TagView, BATCH_ROWS};
pub use container::{Container, ContainerStats};
pub use cover_cache::CoverCache;
pub use estimate::{CostModel, QueryEstimate};
pub use morsel::MorselQueue;
pub use page::{Page, PageIter, PAGE_SIZE};
pub use partition::PartitionMap;
pub use resultset::{ResultSet, ResultSetBuilder, RESULT_SET_CHUNK_ROWS};
pub use sample::sample_hash_keep;
pub use store::{ObjectStore, RegionScan, StoreConfig, TouchCounters};
pub use vertical::{TagMorsel, TagScanPlan, TagStore};
pub use zone::ZoneIndex;

/// Errors produced by the storage crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Record larger than a page.
    RecordTooLarge { len: usize, max: usize },
    /// Deserialization failure inside a page.
    Corrupt(String),
    /// HTM layer error (invalid level etc.).
    Htm(String),
    /// Unknown object id.
    NotFound(u64),
    /// Invalid configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page payload {max}")
            }
            StorageError::Corrupt(m) => write!(f, "corrupt page: {m}"),
            StorageError::Htm(m) => write!(f, "htm: {m}"),
            StorageError::NotFound(id) => write!(f, "object {id:#x} not found"),
            StorageError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<sdss_htm::HtmError> for StorageError {
    fn from(e: sdss_htm::HtmError) -> Self {
        StorageError::Htm(e.to_string())
    }
}

impl From<sdss_catalog::CatalogError> for StorageError {
    fn from(e: sdss_catalog::CatalogError) -> Self {
        StorageError::Corrupt(e.to_string())
    }
}
