//! Query cost prediction from the coarse-grained density map.
//!
//! Paper, §Spatial Data Structures: "These containers represent a
//! coarse-grained density map of the data. They define the base of an
//! index tree that tells us whether containers are fully inside, outside
//! or bisected by our query. [...] A prediction of the output data volume
//! and search time can be computed from the intersection volume."
//!
//! The estimator classifies containers against the query region:
//! fully-inside containers contribute their exact counts; bisected ones
//! contribute `count × (intersection volume / container volume)`
//! (area-proportional, assuming in-container uniformity). Bytes to read
//! are exact (whole touched containers); time is bytes / calibrated scan
//! bandwidth.

use crate::container::Container;
use crate::cover_cache::CoverCache;
use crate::store::ObjectStore;
use crate::vertical::TagStore;
use crate::StorageError;
use sdss_htm::cover::{classify_trixel_domain, Classification};
use sdss_htm::{Cover, Domain, Trixel};
use std::sync::Arc;

/// Calibration constants for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Sustained scan bandwidth of one server, bytes/second. The default
    /// is deliberately conservative; benches calibrate it from a measured
    /// scan before asking for predictions.
    pub scan_bandwidth_bps: f64,
    /// Cover depth used for estimating the bisected-container overlap.
    pub overlap_level: u8,
    /// Seconds per probe row of a cross-match join (the per-probe HTM
    /// zone lookup dominates; see the query crate's MATCH estimator).
    pub match_probe_seconds: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_bandwidth_bps: 150.0e6, // the paper's 150 MB/s/node figure
            overlap_level: 11,
            match_probe_seconds: 25.0e-6, // measured per-probe cover cost
        }
    }
}

/// Prediction for one region query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEstimate {
    /// Predicted number of matching objects (output volume).
    pub est_rows: f64,
    /// Exact bytes the scan will read (touched containers).
    pub est_bytes: u64,
    /// Predicted wall time on one server, seconds.
    pub est_seconds: f64,
    /// Containers fully inside / bisected.
    pub containers_full: usize,
    pub containers_partial: usize,
}

impl CostModel {
    /// Estimate a region query against a store using only container
    /// statistics and geometry — no object data is read.
    pub fn estimate(
        &self,
        store: &ObjectStore,
        domain: &Domain,
    ) -> Result<QueryEstimate, StorageError> {
        self.estimate_containers(
            store.containers(),
            store.config().container_level,
            domain,
            Some(store.cover_cache()),
        )
    }

    /// Estimate a region query against the tag vertical partition: same
    /// geometry classification, tag-store byte counts (the bytes a
    /// tag-routed scan would actually read).
    pub fn estimate_tags(
        &self,
        tags: &TagStore,
        domain: &Domain,
    ) -> Result<QueryEstimate, StorageError> {
        self.estimate_containers(
            tags.containers(),
            tags.container_level(),
            domain,
            Some(tags.cover_cache()),
        )
    }

    /// Exact prediction for an unrestricted sweep: every container is
    /// read whole.
    pub fn estimate_sweep<'a>(
        &self,
        containers: impl Iterator<Item = &'a Container>,
    ) -> QueryEstimate {
        let mut est = QueryEstimate {
            est_rows: 0.0,
            est_bytes: 0,
            est_seconds: 0.0,
            containers_full: 0,
            containers_partial: 0,
        };
        for container in containers {
            est.containers_full += 1;
            est.est_rows += container.stats().count as f64;
            est.est_bytes += container.bytes() as u64;
        }
        est.est_seconds = est.est_bytes as f64 / self.scan_bandwidth_bps;
        est
    }

    /// The shared estimator core: classify an arbitrary container set
    /// against the query region. `cache` (when given) memoizes the deep
    /// overlap cover so repeated prepares of the same region are free.
    pub fn estimate_containers<'a>(
        &self,
        containers: impl Iterator<Item = &'a Container>,
        container_level: u8,
        domain: &Domain,
        cache: Option<&CoverCache>,
    ) -> Result<QueryEstimate, StorageError> {
        let mut est = QueryEstimate {
            est_rows: 0.0,
            est_bytes: 0,
            est_seconds: 0.0,
            containers_full: 0,
            containers_partial: 0,
        };
        let level = self.overlap_level.max(container_level);
        // One deep cover shared by all bisected containers.
        let cover = match cache {
            Some(cache) => cache.get_or_compute(domain, level)?,
            None => Arc::new(Cover::compute(domain, level)?),
        };
        let full = cover.full_ranges();
        let partial = cover.partial_ranges();

        for container in containers {
            let t = Trixel::from_id(container.id());
            match classify_trixel_domain(&t, domain) {
                Classification::Inside => {
                    est.containers_full += 1;
                    est.est_rows += container.stats().count as f64;
                    est.est_bytes += container.bytes() as u64;
                }
                Classification::Outside => {}
                Classification::Partial => {
                    est.containers_partial += 1;
                    est.est_bytes += container.bytes() as u64;
                    // Overlap fraction from deep trixel counts under this
                    // container: full deep trixels count 1, partial ½.
                    let (lo, hi) = container.id().deep_range(level);
                    let total = (hi - lo) as f64;
                    let n_full = full.intersect(&range_set(lo, hi)).count() as f64;
                    let n_part = partial.intersect(&range_set(lo, hi)).count() as f64;
                    let frac = ((n_full + 0.5 * n_part) / total).clamp(0.0, 1.0);
                    est.est_rows += container.stats().count as f64 * frac;
                }
            }
        }
        est.est_seconds = est.est_bytes as f64 / self.scan_bandwidth_bps;
        Ok(est)
    }
}

fn range_set(lo: u64, hi: u64) -> sdss_htm::HtmRangeSet {
    sdss_htm::HtmRangeSet::from_unsorted(vec![(lo, hi)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use sdss_catalog::SkyModel;
    use sdss_htm::Region;

    fn store(seed: u64) -> ObjectStore {
        let model = SkyModel {
            n_galaxies: 3500,
            n_stars: 1200,
            n_quasars: 300,
            ..SkyModel::small(seed)
        };
        let objs = model.generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        s
    }

    #[test]
    fn estimate_tracks_actual_rows() {
        let s = store(1);
        let model = CostModel::default();
        for radius in [1.0, 2.5, 4.0] {
            let domain = Region::circle(185.0, 15.0, radius).unwrap();
            let est = model.estimate(&s, &domain).unwrap();
            let (rows, stats) = s.query_region(&domain, None).unwrap();
            let actual = rows.len() as f64;
            // Clustered data makes per-container uniformity approximate;
            // demand the estimate be within a factor of 2 (the paper uses
            // it for scheduling, not billing).
            assert!(
                est.est_rows > actual * 0.5 && est.est_rows < actual * 2.0 + 20.0,
                "radius {radius}: est {:.0} vs actual {actual}",
                est.est_rows
            );
            // Bytes prediction is exact for whole-container reads.
            assert_eq!(est.est_bytes, stats.bytes_scanned as u64);
        }
    }

    #[test]
    fn estimate_is_cheap_no_reads() {
        let s = store(2);
        s.touches().reset();
        let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
        let _ = CostModel::default().estimate(&s, &domain).unwrap();
        let (_, read_touches, bytes_read, _) = s.touches().snapshot();
        assert_eq!(read_touches, 0, "estimator must not read containers");
        assert_eq!(bytes_read, 0);
    }

    #[test]
    fn empty_region_estimates_zero() {
        let s = store(3);
        let domain = Region::circle(5.0, -40.0, 1.0).unwrap();
        let est = CostModel::default().estimate(&s, &domain).unwrap();
        assert_eq!(est.est_bytes, 0);
        assert_eq!(est.est_rows, 0.0);
        assert_eq!(est.est_seconds, 0.0);
    }

    #[test]
    fn seconds_scale_with_bandwidth() {
        let s = store(4);
        let domain = Region::circle(185.0, 15.0, 3.0).unwrap();
        let slow = CostModel {
            scan_bandwidth_bps: 10e6,
            ..CostModel::default()
        };
        let fast = CostModel {
            scan_bandwidth_bps: 100e6,
            ..CostModel::default()
        };
        let es = slow.estimate(&s, &domain).unwrap();
        let ef = fast.estimate(&s, &domain).unwrap();
        assert!(es.est_seconds > ef.est_seconds * 9.9);
    }
}
