//! Zone-partitioned spatial index for cross-identification.
//!
//! Paper, §Data Products: "each subsequent astronomical survey will want
//! to cross-identify its objects with the SDSS catalog". The primitive
//! behind every cross-match — the dataflow hash machine's nearest
//! neighbor and the query engine's `MATCH(a, b, radius)` pair join — is
//! the same: file the build side under its home HTM trixel (a *zone*),
//! and expand each probe by the match radius so candidates come from
//! exactly the zones the match cap can intersect (the hash machine's
//! one-sided replication argument — expanding one side suffices for
//! completeness, including across zone boundaries).
//!
//! It lives in the storage crate, beneath both consumers: the query
//! engine joins [`crate::ResultSet`] chunks against it and
//! `dataflow::xmatch` re-exports it as the build side of its
//! nearest-neighbor matcher.

use crate::StorageError;
use sdss_catalog::TagObject;
use sdss_htm::{lookup_id, Cover, Region};
use sdss_skycoords::UnitVec3;
use std::collections::HashMap;

/// A zone-partitioned spatial index over a reference catalog: reference
/// row indices bucketed by home HTM trixel at a fixed level.
#[derive(Debug, Clone)]
pub struct ZoneIndex {
    level: u8,
    buckets: HashMap<u64, Vec<u32>>,
}

impl ZoneIndex {
    /// Index `reference` at the given bucket level.
    pub fn build(reference: &[TagObject], level: u8) -> Result<ZoneIndex, StorageError> {
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, r) in reference.iter().enumerate() {
            let home =
                lookup_id(r.unit_vec(), level).map_err(|e| StorageError::Htm(e.to_string()))?;
            buckets.entry(home.raw()).or_default().push(i as u32);
        }
        Ok(ZoneIndex { level, buckets })
    }

    /// Index rows by their stored level-20 HTM ids — no spherical
    /// lookup at all: the level-`level` home bucket is the deep id's
    /// ancestor, `htm20 >> 2*(20 - level)` (the same shift the tag
    /// scan's cover filter uses). This is why materialized result sets
    /// keep `htm20` per row: the cross-match build side indexes at
    /// integer-shift speed.
    pub fn build_from_deep(htm20: &[u64], level: u8) -> ZoneIndex {
        // Clamp the stored level too: probe covers are computed at
        // `self.level`, so it must be the same level the buckets were
        // keyed at.
        let level = level.min(20);
        let shift = 2 * (20 - level) as u64;
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, &deep) in htm20.iter().enumerate() {
            buckets.entry(deep >> shift).or_default().push(i as u32);
        }
        ZoneIndex { level, buckets }
    }

    /// A bucket level matched to the radius: fine zones for arcsecond
    /// astrometric tolerances, coarser ones once the match cap spans
    /// whole trixels (a level-10 trixel subtends ~3 arcmin).
    pub fn level_for_radius(radius_arcsec: f64) -> u8 {
        if radius_arcsec <= 200.0 {
            10
        } else if radius_arcsec <= 3600.0 {
            7
        } else {
            4
        }
    }

    /// The bucket level this index was built at.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Stream every reference object within `radius_arcsec` of `probe`
    /// as `(reference index, separation arcsec)` — *all* pairs, not just
    /// the nearest (the pair-join primitive). Returns the number of
    /// candidate distance computations performed.
    pub fn neighbors_within(
        &self,
        reference: &[TagObject],
        probe: UnitVec3,
        radius_arcsec: f64,
        mut f: impl FnMut(u32, f64),
    ) -> Result<usize, StorageError> {
        let cap = Region::circle_vec(probe, radius_arcsec / 3600.0)
            .map_err(|e| StorageError::Htm(e.to_string()))?;
        let cover =
            Cover::compute(&cap, self.level).map_err(|e| StorageError::Htm(e.to_string()))?;
        let mut comparisons = 0usize;
        for bucket in cover.touched_ranges().iter_ids() {
            let Some(members) = self.buckets.get(&bucket) else {
                continue;
            };
            for &ri in members {
                comparisons += 1;
                let sep = probe.separation_deg(reference[ri as usize].unit_vec()) * 3600.0;
                if sep <= radius_arcsec {
                    f(ri, sep);
                }
            }
        }
        Ok(comparisons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_catalog::SkyModel;

    #[test]
    fn deep_id_build_matches_spherical_build() {
        // The shift-ancestor bucketing must agree with the spherical
        // lookup at every level the radius heuristic picks.
        let objs = SkyModel::small(31).generate().unwrap();
        let tags: Vec<TagObject> = objs.iter().map(TagObject::from_photo).collect();
        let deep: Vec<u64> = objs.iter().map(|o| o.htm20).collect();
        for level in [4u8, 7, 10] {
            let spherical = ZoneIndex::build(&tags, level).unwrap();
            let shifted = ZoneIndex::build_from_deep(&deep, level);
            let collect = |ix: &ZoneIndex, probe: &TagObject| {
                let mut v = Vec::new();
                ix.neighbors_within(&tags, probe.unit_vec(), 300.0, |ri, _| v.push(ri))
                    .unwrap();
                v.sort_unstable();
                v
            };
            for probe in tags.iter().step_by(40) {
                assert_eq!(
                    collect(&spherical, probe),
                    collect(&shifted, probe),
                    "level {level}"
                );
            }
        }
    }
}
