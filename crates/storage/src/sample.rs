//! Deterministic random samples.
//!
//! Paper, §Desktop Data Analysis: "We also plan to offer a 1% sample
//! (about 10 GB) of the whole database that can be used to quickly test
//! and debug programs. Combining partitioning and sampling converts a
//! 2 TB data set into 2 gigabytes."
//!
//! Sampling is a pure function of the object id (a splitmix64 hash), so
//! the sample is stable across loads, machines and time — re-running a
//! debugged query on the sample always sees the same objects.

use crate::store::{ObjectStore, StoreConfig};
use crate::vertical::TagStore;
use crate::StorageError;

/// splitmix64 — a tiny, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically decide whether `obj_id` belongs to a sample of the
/// given `fraction` (0.0–1.0).
#[inline]
pub fn sample_hash_keep(obj_id: u64, fraction: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&fraction));
    // Map the hash to [0,1) and compare; top 53 bits for a clean mantissa.
    let h = splitmix64(obj_id) >> 11;
    let unit = (h as f64) / ((1u64 << 53) as f64);
    unit < fraction
}

/// Build a sampled sub-store (same clustering configuration).
pub fn build_sample(store: &ObjectStore, fraction: f64) -> Result<ObjectStore, StorageError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(StorageError::InvalidConfig(format!(
            "sample fraction {fraction} outside [0,1]"
        )));
    }
    let mut out = ObjectStore::new(StoreConfig {
        container_level: store.config().container_level,
        scan_cover_level: store.config().scan_cover_level,
    })?;
    let sampled: Vec<_> = store
        .iter_all()
        .filter(|o| sample_hash_keep(o.obj_id, fraction))
        .collect();
    out.insert_batch(&sampled)?;
    Ok(out)
}

/// Build a sampled tag store — the paper's "2 TB → 2 GB" combination of
/// vertical partitioning and sampling.
pub fn build_sample_tags(store: &ObjectStore, fraction: f64) -> Result<TagStore, StorageError> {
    let sample = build_sample(store, fraction)?;
    Ok(TagStore::from_store(&sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sdss_catalog::SkyModel;

    fn store(seed: u64, n: usize) -> ObjectStore {
        let model = SkyModel {
            n_galaxies: n * 7 / 10,
            n_stars: n * 2 / 10,
            n_quasars: n - n * 7 / 10 - n * 2 / 10,
            ..SkyModel::small(seed)
        };
        let objs = model.generate().unwrap();
        let mut s = ObjectStore::new(StoreConfig::default()).unwrap();
        s.insert_batch(&objs).unwrap();
        s
    }

    #[test]
    fn sample_fraction_is_respected() {
        let s = store(1, 4000);
        let sample = build_sample(&s, 0.01).unwrap();
        let got = sample.len() as f64 / s.len() as f64;
        // Binomial(4000, 0.01): sd ≈ 0.0016 — allow 4 sigma.
        assert!(
            (got - 0.01).abs() < 0.0064,
            "sample fraction {got} too far from 1%"
        );
    }

    #[test]
    fn sampling_is_deterministic_and_nested() {
        let s = store(2, 2000);
        let a = build_sample(&s, 0.05).unwrap();
        let b = build_sample(&s, 0.05).unwrap();
        let ids = |st: &ObjectStore| {
            let mut v: Vec<u64> = st.iter_all().map(|o| o.obj_id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&a), ids(&b), "same fraction ⇒ same sample");
        // Smaller fractions are subsets of larger ones (hash thresholding).
        let small = build_sample(&s, 0.01).unwrap();
        let small_ids = ids(&small);
        let big_ids = ids(&a);
        for id in &small_ids {
            assert!(big_ids.binary_search(id).is_ok(), "1% ⊄ 5%");
        }
    }

    #[test]
    fn extremes() {
        let s = store(3, 500);
        assert_eq!(build_sample(&s, 0.0).unwrap().len(), 0);
        assert_eq!(build_sample(&s, 1.0).unwrap().len(), s.len());
        assert!(build_sample(&s, 1.5).is_err());
        assert!(build_sample(&s, -0.1).is_err());
    }

    #[test]
    fn partition_plus_sampling_compounds() {
        // The paper's 2 TB → 2 GB argument: vertical partition (~19x
        // here) times 1% sampling ≈ 3 orders of magnitude.
        let s = store(4, 4000);
        let sampled_tags = build_sample_tags(&s, 0.01).unwrap();
        let reduction = s.bytes() as f64 / (sampled_tags.bytes() as f64).max(1.0);
        assert!(reduction > 500.0, "combined reduction only {reduction:.0}x");
    }

    proptest! {
        #[test]
        fn prop_keep_is_deterministic(id in any::<u64>(), f in 0.0f64..1.0) {
            prop_assert_eq!(sample_hash_keep(id, f), sample_hash_keep(id, f));
        }

        #[test]
        fn prop_keep_monotone_in_fraction(id in any::<u64>(), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            // Kept at lo ⇒ kept at hi.
            if sample_hash_keep(id, lo) {
                prop_assert!(sample_hash_keep(id, hi));
            }
        }

        #[test]
        fn prop_fraction_statistics(f in 0.05f64..0.95) {
            let n = 4000u64;
            let kept = (0..n).filter(|&i| sample_hash_keep(splitmix64(i), f)).count() as f64;
            let expect = f * n as f64;
            let sd = (n as f64 * f * (1.0 - f)).sqrt();
            prop_assert!((kept - expect).abs() < 5.0 * sd, "kept {kept} expect {expect}");
        }
    }
}
