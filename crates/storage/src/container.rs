//! Containers: the clustering units of the archive.
//!
//! One container per HTM trixel at the store's partition level. Each
//! container keeps summary statistics — the paper's "coarse-grained
//! density map of the data" — which the cost model uses to predict output
//! volumes, and the loader uses to prove its touch-once property.

use crate::page::Page;
use crate::StorageError;
use sdss_catalog::{ObjClass, PhotoObj};
use sdss_htm::HtmId;

/// Summary statistics of one container (the density map entry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerStats {
    pub count: u64,
    /// r-band magnitude range of the contents.
    pub r_min: f32,
    pub r_max: f32,
    /// Per-class counts: [unknown, star, galaxy, quasar].
    pub class_counts: [u64; 4],
}

impl Default for ContainerStats {
    fn default() -> Self {
        ContainerStats {
            count: 0,
            r_min: f32::INFINITY,
            r_max: f32::NEG_INFINITY,
            class_counts: [0; 4],
        }
    }
}

impl ContainerStats {
    fn update(&mut self, r_mag: f32, class: ObjClass) {
        self.count += 1;
        self.r_min = self.r_min.min(r_mag);
        self.r_max = self.r_max.max(r_mag);
        self.class_counts[class as usize] += 1;
    }
}

/// A clustering unit: serialized records of one sky trixel in page order.
#[derive(Debug, Clone)]
pub struct Container {
    id: HtmId,
    record_len: usize,
    pages: Vec<Page>,
    stats: ContainerStats,
}

impl Container {
    pub fn new(id: HtmId, record_len: usize) -> Container {
        Container {
            id,
            record_len,
            pages: Vec::new(),
            stats: ContainerStats::default(),
        }
    }

    #[inline]
    pub fn id(&self) -> HtmId {
        self.id
    }

    #[inline]
    pub fn stats(&self) -> &ContainerStats {
        &self.stats
    }

    #[inline]
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.stats.count as usize
    }

    pub fn is_empty(&self) -> bool {
        self.stats.count == 0
    }

    /// Total payload bytes (what a scan of this container reads).
    pub fn bytes(&self) -> usize {
        self.pages.iter().map(Page::bytes_used).sum()
    }

    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Append a serialized record with its stat fields.
    pub fn push_record(
        &mut self,
        record: &[u8],
        r_mag: f32,
        class: ObjClass,
    ) -> Result<(), StorageError> {
        let need_new = match self.pages.last() {
            Some(p) => p.is_full(),
            None => true,
        };
        if need_new {
            self.pages.push(Page::new(self.record_len)?);
        }
        let page = self.pages.last_mut().expect("just ensured a page exists");
        let pushed = page.push_record(record)?;
        debug_assert!(pushed, "fresh/non-full page cannot reject a record");
        self.stats.update(r_mag, class);
        Ok(())
    }

    /// Append a full photometric object (serializing it).
    pub fn push_photo(
        &mut self,
        obj: &PhotoObj,
        scratch: &mut Vec<u8>,
    ) -> Result<(), StorageError> {
        scratch.clear();
        obj.write_to(scratch);
        self.push_record(scratch, obj.mag(2), obj.class)
    }

    /// Iterate over raw record slices in insertion order.
    pub fn iter_records(&self) -> impl Iterator<Item = &[u8]> {
        self.pages.iter().flat_map(|p| p.iter())
    }

    /// Record at a global slot index.
    pub fn record(&self, slot: usize) -> Option<&[u8]> {
        let per_page = crate::page::PAGE_SIZE / self.record_len;
        let page = slot / per_page;
        let in_page = slot % per_page;
        self.pages.get(page)?.record(in_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdss_htm::HtmId;

    fn container() -> Container {
        Container::new(HtmId::root(0), 64)
    }

    #[test]
    fn push_updates_stats() {
        let mut c = container();
        c.push_record(&[1u8; 64], 18.0, ObjClass::Galaxy).unwrap();
        c.push_record(&[2u8; 64], 21.0, ObjClass::Star).unwrap();
        c.push_record(&[3u8; 64], 16.5, ObjClass::Galaxy).unwrap();
        let s = c.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.r_min, 16.5);
        assert_eq!(s.r_max, 21.0);
        assert_eq!(s.class_counts[ObjClass::Galaxy as usize], 2);
        assert_eq!(s.class_counts[ObjClass::Star as usize], 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.bytes(), 3 * 64);
    }

    #[test]
    fn pages_roll_over() {
        let mut c = container();
        let per_page = crate::page::PAGE_SIZE / 64;
        for i in 0..(per_page + 3) {
            c.push_record(&[(i % 251) as u8; 64], 20.0, ObjClass::Star)
                .unwrap();
        }
        assert_eq!(c.num_pages(), 2);
        assert_eq!(c.len(), per_page + 3);
        // Order preserved across the page boundary.
        let rec = c.record(per_page).unwrap();
        assert_eq!(rec[0], (per_page % 251) as u8);
        assert_eq!(c.iter_records().count(), per_page + 3);
    }

    #[test]
    fn slot_out_of_range() {
        let mut c = container();
        c.push_record(&[0u8; 64], 20.0, ObjClass::Star).unwrap();
        assert!(c.record(0).is_some());
        assert!(c.record(1).is_none());
    }

    #[test]
    fn photo_roundtrip_through_container() {
        let mut c = Container::new(HtmId::root(3), PhotoObj::SERIALIZED_LEN);
        let objs = sdss_catalog::SkyModel::small(3).generate().unwrap();
        let mut scratch = Vec::new();
        for obj in objs.iter().take(20) {
            c.push_photo(obj, &mut scratch).unwrap();
        }
        for (i, rec) in c.iter_records().enumerate() {
            let mut slice = rec;
            let back = PhotoObj::read_from(&mut slice).unwrap();
            assert_eq!(&back, &objs[i]);
        }
    }
}
