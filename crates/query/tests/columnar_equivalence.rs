//! Property test: the compiled columnar scan path returns *bit-identical*
//! results to the row-at-a-time interpreter over randomized predicates,
//! projections, regions and sampling clauses.
//!
//! A seeded generator (deterministic run to run) draws queries from a
//! grammar covering the tag value domain — attribute/color/derived-
//! position arithmetic, comparisons, BETWEEN, class equality, boolean
//! logic, the special operators (DIST/FRAMELAT/FRAMELON/COLORDIST/ABS/
//! SQRT/LOG10), spatial factors both extracted (CIRCLE conjuncts) and
//! residual (inside OR) — plus NaN-producing shapes (SQRT of negatives,
//! 0/0) whose rows the interpreter drops via comparison errors.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdss_catalog::SkyModel;
use sdss_query::{Archive, ArchiveConfig, ExecMode, Value};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

/// Bitwise value identity: NaN == NaN, -0.0 != +0.0.
fn value_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

struct QueryGen {
    rng: ChaCha8Rng,
}

impl QueryGen {
    fn new(seed: u64) -> QueryGen {
        QueryGen {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.rng.gen_range(0usize..options.len())]
    }

    fn num_attr(&mut self) -> String {
        self.pick(&[
            "ra", "dec", "cx", "cy", "cz", "u", "g", "r", "i", "z", "ug", "gr", "ri", "iz", "size",
        ])
        .to_string()
    }

    fn literal(&mut self) -> String {
        match self.rng.gen_range(0u8..4) {
            0 => format!("{:.4}", self.rng.gen_range(-2.0f64..2.0)),
            1 => format!("{:.4}", self.rng.gen_range(14.0f64..24.0)),
            2 => format!("{}", self.rng.gen_range(0u8..30)),
            _ => format!("{:.4}", self.rng.gen_range(-200.0f64..400.0)),
        }
    }

    fn num_expr(&mut self, depth: usize) -> String {
        if depth == 0 {
            return if self.rng.gen_bool(0.6) {
                self.num_attr()
            } else {
                self.literal()
            };
        }
        match self.rng.gen_range(0u8..8) {
            0..=2 => {
                let op = self.pick(&["+", "-", "*", "/"]);
                format!(
                    "({} {op} {})",
                    self.num_expr(depth - 1),
                    self.num_expr(depth - 1)
                )
            }
            3 => format!("-({})", self.num_expr(depth - 1)),
            4 => {
                let f = self.pick(&["ABS", "SQRT", "LOG10"]);
                format!("{f}({})", self.num_expr(depth - 1))
            }
            5 => format!(
                "DIST({:.3}, {:.3})",
                self.rng.gen_range(180.0f64..190.0),
                self.rng.gen_range(10.0f64..20.0)
            ),
            6 => {
                let f = self.pick(&["FRAMELAT", "FRAMELON"]);
                let frame = self.pick(&["'GALACTIC'", "'ECL'", "'J2000'", "'SGAL'"]);
                format!("{f}({frame})")
            }
            _ => format!(
                "COLORDIST({}, {}, {}, {})",
                self.num_expr(0),
                self.num_expr(0),
                self.num_expr(0),
                self.num_expr(0)
            ),
        }
    }

    fn bool_expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return match self.rng.gen_range(0u8..6) {
                0..=2 => {
                    let op = self.pick(&["<", "<=", ">", ">=", "=", "!="]);
                    format!("{} {op} {}", self.num_expr(1), self.num_expr(1))
                }
                3 => {
                    let lo = self.rng.gen_range(14.0f64..20.0);
                    format!(
                        "{} BETWEEN {:.3} AND {:.3}",
                        self.num_attr(),
                        lo,
                        lo + self.rng.gen_range(0.0f64..6.0)
                    )
                }
                4 => {
                    let op = self.pick(&["=", "!="]);
                    let class = self.pick(&["'GALAXY'", "'STAR'", "'QSO'", "'galaxy'", "'NOPE'"]);
                    format!("class {op} {class}")
                }
                _ => format!(
                    "CIRCLE({:.3}, {:.3}, {:.3})",
                    self.rng.gen_range(182.0f64..188.0),
                    self.rng.gen_range(12.0f64..18.0),
                    self.rng.gen_range(0.2f64..3.0)
                ),
            };
        }
        match self.rng.gen_range(0u8..3) {
            0 => format!(
                "({} AND {})",
                self.bool_expr(depth - 1),
                self.bool_expr(depth - 1)
            ),
            1 => format!(
                "({} OR {})",
                self.bool_expr(depth - 1),
                self.bool_expr(depth - 1)
            ),
            _ => format!("NOT ({})", self.bool_expr(depth - 1)),
        }
    }

    fn projection(&mut self) -> String {
        let n = self.rng.gen_range(1usize..5);
        let mut cols = Vec::with_capacity(n + 1);
        cols.push("objid".to_string()); // keeps rows attributable in failures
        for _ in 0..n {
            cols.push(match self.rng.gen_range(0u8..4) {
                0 => self.num_attr(),
                1 => "class".to_string(),
                2 => format!("{} - {}", self.num_attr(), self.num_attr()),
                _ => self.num_expr(1),
            });
        }
        cols.join(", ")
    }

    fn query(&mut self) -> String {
        let mut sql = format!("SELECT {} FROM photoobj", self.projection());
        let mut clauses: Vec<String> = Vec::new();
        // Extractable spatial conjunct half the time.
        if self.rng.gen_bool(0.5) {
            clauses.push(format!(
                "CIRCLE({:.3}, {:.3}, {:.3})",
                self.rng.gen_range(183.0f64..187.0),
                self.rng.gen_range(13.0f64..17.0),
                self.rng.gen_range(0.3f64..4.0)
            ));
        }
        if self.rng.gen_bool(0.85) {
            clauses.push(self.bool_expr(2));
        }
        if !clauses.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&clauses.join(" AND "));
        }
        if self.rng.gen_bool(0.2) {
            sql.push_str(&format!(" SAMPLE {:.2}", self.rng.gen_range(0.1f64..0.9)));
        }
        sql
    }
}

fn build(seed: u64) -> (Arc<ObjectStore>, Arc<TagStore>) {
    let objs = SkyModel::small(seed).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    (Arc::new(store), Arc::new(tags))
}

/// Two archive handles over the same stores: one compiled, one forced
/// to the row-at-a-time interpreter (the oracle).
fn archive_pair(
    store: &Arc<ObjectStore>,
    tags: &Arc<TagStore>,
    cover_level: Option<u8>,
) -> (Archive, Archive) {
    let auto = Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            cover_level,
            mode: ExecMode::Auto,
            ..ArchiveConfig::default()
        },
    );
    let interp = Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            cover_level,
            mode: ExecMode::Interpreted,
            ..ArchiveConfig::default()
        },
    );
    (auto, interp)
}

#[test]
fn compiled_columnar_matches_interpreted_rows() {
    let (store, tags) = build(424242);
    let (auto, interp) = archive_pair(&store, &tags, None);

    let mut generator = QueryGen::new(7);
    let n_cases = 250;
    let mut columnar_cases = 0usize;
    let mut nonempty_cases = 0usize;
    for case in 0..n_cases {
        let sql = generator.query();
        let a = auto
            .run(&sql)
            .unwrap_or_else(|e| panic!("case {case}: {sql} failed on Auto: {e}"));
        let b = interp
            .run(&sql)
            .unwrap_or_else(|e| panic!("case {case}: {sql} failed on Interpreted: {e}"));
        assert_eq!(a.columns, b.columns, "case {case}: {sql}");
        assert_eq!(
            a.rows.len(),
            b.rows.len(),
            "case {case}: row count differs for {sql}"
        );
        for (i, (ra, rb)) in a.rows.iter().zip(b.rows.iter()).enumerate() {
            assert_eq!(ra.len(), rb.len());
            for (va, vb) in ra.iter().zip(rb.iter()) {
                assert!(
                    value_identical(va, vb),
                    "case {case}: {sql}\n  row {i}: {va:?} != {vb:?}"
                );
            }
        }
        assert!(!b.stats.columnar, "Interpreted engine must report row path");
        if a.stats.columnar {
            columnar_cases += 1;
        }
        if !a.rows.is_empty() {
            nonempty_cases += 1;
        }
    }
    // The generator stays inside the compilable tag value domain, so the
    // columnar path must actually engage — this guards against the fast
    // path silently falling back (which would make this test vacuous).
    assert!(
        columnar_cases * 10 >= n_cases * 9,
        "only {columnar_cases}/{n_cases} queries compiled"
    );
    assert!(
        nonempty_cases * 4 >= n_cases,
        "only {nonempty_cases}/{n_cases} queries returned rows — generator too restrictive"
    );
}

#[test]
fn equivalence_holds_across_cover_levels_and_skies() {
    for (sky_seed, gen_seed) in [(1u64, 11u64), (2, 22)] {
        let (store, tags) = build(sky_seed);
        let mut generator = QueryGen::new(gen_seed);
        for &cover_level in &[6u8, 8, 12] {
            let (auto, interp) = archive_pair(&store, &tags, Some(cover_level));
            for _ in 0..25 {
                let sql = generator.query();
                let a = auto.run(&sql).unwrap();
                let b = interp.run(&sql).unwrap();
                assert_eq!(a.rows.len(), b.rows.len(), "{sql} at level {cover_level}");
                for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
                    for (va, vb) in ra.iter().zip(rb.iter()) {
                        assert!(value_identical(va, vb), "{sql} at level {cover_level}");
                    }
                }
            }
        }
    }
}
