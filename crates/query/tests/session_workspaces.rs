//! Integration tests for session workspaces: the `INTO` / `FROM <set>`
//! compositional surface, stored-set scans riding the morsel-parallel
//! compiled path, session isolation, quotas, and stats accounting.

use sdss_catalog::SkyModel;
use sdss_query::{
    AdmissionConfig, Archive, ArchiveConfig, QueryError, QueryOutput, Session, SessionConfig, Value,
};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

fn build_stores(seed: u64, n_galaxies: usize) -> (Arc<ObjectStore>, Arc<TagStore>) {
    let model = SkyModel {
        n_galaxies,
        n_stars: n_galaxies / 3,
        n_quasars: n_galaxies / 12,
        ..SkyModel::small(seed)
    };
    let objs = model.generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    (Arc::new(store), Arc::new(tags))
}

fn archive_with_workers(store: &Arc<ObjectStore>, tags: &Arc<TagStore>, workers: usize) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: 16,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

/// A session cutting small chunks so even modest sets give the worker
/// pool several morsels.
fn small_chunk_session(archive: &Archive) -> Session {
    archive.session_with(SessionConfig {
        chunk_rows: 256,
        ..SessionConfig::default()
    })
}

/// Canonical row-key form for order-insensitive result comparison (the
/// parallel-vs-serial oracle pattern from `parallel_scan.rs`).
fn keyed(out: &QueryOutput) -> Vec<String> {
    let mut keys: Vec<String> = out
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Num(x) => format!("{:?}", x.to_bits()),
                    other => format!("{other}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

/// Tiny deterministic generator for randomized predicate parameters.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (hi - lo) * ((self.0 >> 11) as f64 / (1u64 << 53) as f64)
    }
}

#[test]
fn into_then_from_equals_composed_direct_query_randomized() {
    let (store, tags) = build_stores(51, 3000);
    let serial = archive_with_workers(&store, &tags, 1);
    let parallel = archive_with_workers(&store, &tags, 4);

    let mut rng = Lcg(0x5e55_1075 ^ 0xbeef);
    for trial in 0..6 {
        let r1 = rng.next_f64(19.0, 23.5);
        let r2 = rng.next_f64(18.5, r1);
        let color = rng.next_f64(-0.2, 0.7);
        // Alternate which archive (serial / parallel workers) hosts the
        // workspace so both code paths face the oracle.
        let archive = if trial % 2 == 0 { &parallel } else { &serial };
        let session = small_chunk_session(archive);

        let p1 = format!("r < {r1:.4}");
        let p2 = format!("gr > {color:.4} AND r < {r2:.4}");
        let out = session
            .run(&format!(
                "SELECT objid, r INTO cand FROM photoobj WHERE {p1}"
            ))
            .unwrap();
        assert!(out.rows.is_empty(), "INTO returns no rows");
        let refined = session
            .run(&format!("SELECT objid, r, gr FROM cand WHERE {p2}"))
            .unwrap();
        let direct = archive
            .run(&format!(
                "SELECT objid, r, gr FROM photoobj WHERE {p1} AND {p2}"
            ))
            .unwrap();
        assert_eq!(
            keyed(&refined),
            keyed(&direct),
            "trial {trial}: INTO/FROM diverged from the composed query \
             (p1 = {p1}, p2 = {p2})"
        );
        // Spatial predicates over a set evaluate row-wise and still
        // agree with the cover-driven direct scan.
        let ra = rng.next_f64(183.0, 187.0);
        let dec = rng.next_f64(13.0, 17.0);
        let radius = rng.next_f64(0.5, 2.5);
        let circ = format!("CIRCLE({ra:.3}, {dec:.3}, {radius:.3})");
        let refined = session
            .run(&format!("SELECT objid, ra, dec FROM cand WHERE {circ}"))
            .unwrap();
        let direct = archive
            .run(&format!(
                "SELECT objid, ra, dec FROM photoobj WHERE {p1} AND {circ}"
            ))
            .unwrap();
        assert_eq!(keyed(&refined), keyed(&direct), "spatial refine diverged");
    }
}

#[test]
fn stored_set_scans_ride_the_parallel_compiled_path() {
    let (store, tags) = build_stores(52, 4000);
    let parallel = archive_with_workers(&store, &tags, 4);
    let session = small_chunk_session(&parallel);

    session
        .run("SELECT objid INTO sweep FROM photoobj WHERE r < 30")
        .unwrap();
    let info = session.set_info("sweep").unwrap();
    assert!(info.rows >= 4000, "sweep materialized {} rows", info.rows);
    assert!(info.chunks > 1, "need several chunks for parallelism");

    // The acceptance check: a stored-set scan with a compilable
    // predicate runs columnar, engages multiple morsel workers, and
    // claims one morsel per chunk.
    let prepared = session
        .prepare("SELECT objid, r, gr FROM sweep WHERE r < 30 AND gr > -9")
        .unwrap();
    assert!(prepared.columnar(), "set scans must compile");
    assert!(prepared.planned_workers() > 1);
    let out = prepared.run().unwrap();
    assert_eq!(out.rows.len(), info.rows);
    assert!(out.stats.columnar);
    assert!(
        out.stats.workers_used > 1,
        "stored-set scan never engaged the pool: {} workers",
        out.stats.workers_used
    );
    assert_eq!(out.stats.morsels, info.chunks as u64);
    assert_eq!(
        out.stats.worker_bytes.iter().sum::<u64>(),
        out.stats.scan.bytes_scanned,
        "per-worker byte accounting must add up on the set path"
    );
    assert_eq!(out.stats.scan.bytes_scanned, info.bytes as u64);

    // Aggregates over a stored set fold in-scan: one batch through the
    // fabric, multiple workers, and values that match the base archive.
    let agg = session
        .run("SELECT COUNT(*), MIN(r), MAX(r) FROM sweep WHERE gr > 0.2")
        .unwrap();
    let base = parallel
        .run("SELECT COUNT(*), MIN(r), MAX(r) FROM photoobj WHERE r < 30 AND gr > 0.2")
        .unwrap();
    assert_eq!(agg.rows, base.rows);
    assert_eq!(agg.stats.batches, 1, "in-scan folding ships one batch");
    assert!(agg.stats.workers_used > 1);

    // ORDER BY / LIMIT / set operations compose over stored sets too.
    let top = session
        .run("SELECT objid, r FROM sweep ORDER BY r LIMIT 5")
        .unwrap();
    assert!(top.rows.len() <= 5);
    for w in top.rows.windows(2) {
        assert!(w[0][1].as_num().unwrap() <= w[1][1].as_num().unwrap());
    }
    session
        .run("SELECT objid INTO galaxies FROM photoobj WHERE class = 'GALAXY'")
        .unwrap();
    let inter = session
        .run("(SELECT objid FROM sweep WHERE r < 21) INTERSECT (SELECT objid FROM galaxies)")
        .unwrap();
    let direct = parallel
        .run(
            "(SELECT objid FROM photoobj WHERE r < 30 AND r < 21) \
             INTERSECT (SELECT objid FROM photoobj WHERE class = 'GALAXY')",
        )
        .unwrap();
    assert_eq!(keyed(&inter), keyed(&direct));
}

#[test]
fn stored_set_limit_under_parallel_workers_cancels_and_releases() {
    // Bug sweep: a stored-set scan with LIMIT under multiple workers
    // must stop the remaining scan workers once the limit is hit (the
    // finished stream cancels its ticket) and return every admission
    // slot — no lingering unaccounted background work.
    let (store, tags) = build_stores(59, 4000);
    let archive = archive_with_workers(&store, &tags, 4);
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO sweep FROM photoobj WHERE r < 30")
        .unwrap();
    assert!(session.set_info("sweep").unwrap().chunks > 1);

    let prepared = session
        .prepare("SELECT objid, r FROM sweep WHERE r < 30 LIMIT 7")
        .unwrap();
    assert!(
        prepared.planned_workers() > 1,
        "limit scans still parallelize"
    );
    let mut stream = prepared.stream().unwrap();
    let ticket = stream.ticket();
    let mut rows = 0usize;
    while let Some(batch) = stream.next_batch() {
        rows += batch.len();
    }
    assert_eq!(rows, 7, "limit respected");
    let stats = stream.finish();
    assert!(
        ticket.is_cancelled(),
        "finish must cancel the ticket so workers past the limit stop scanning"
    );
    // Workers may still be winding down when the stream finishes, so
    // worker counts are racy here — the hard guarantees are the limit,
    // the cancellation, and the released slots.
    assert!(stats.rows == 7);
    assert_eq!(archive.admission().running, 0, "slots leaked after LIMIT");

    // The one-shot path holds the same contract.
    let out = session
        .run("SELECT objid, r FROM sweep WHERE r < 30 LIMIT 3")
        .unwrap();
    assert_eq!(out.rows.len(), 3);
    assert_eq!(archive.admission().running, 0);
}

#[test]
fn into_fast_path_equals_fetch_path() {
    // The direct columnar INTO fast path (bare tag-routed scan) and the
    // stream-and-fetch slow path (forced here via a huge LIMIT, which
    // keeps the scan identical but stacks a node over it) must
    // materialize identical sets.
    let (store, tags) = build_stores(60, 2500);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);

    session
        .run("SELECT objid INTO fast FROM photoobj WHERE r < 21.5 AND gr > 0.1")
        .unwrap();
    session
        .run("SELECT objid INTO slow FROM photoobj WHERE r < 21.5 AND gr > 0.1 LIMIT 100000000")
        .unwrap();
    let fast = session.set_info("fast").unwrap();
    let slow = session.set_info("slow").unwrap();
    assert_eq!(fast.rows, slow.rows);
    assert_eq!(fast.bytes, slow.bytes);

    let a = session.run("SELECT objid, r, gr FROM fast").unwrap();
    let b = session.run("SELECT objid, r, gr FROM slow").unwrap();
    assert_eq!(keyed(&a), keyed(&b), "fast/fetch INTO paths diverged");

    // The fast path reports itself: columnar stats, rows emitted, and
    // scan bytes bounded by the tag partition (never the full store).
    let (out, stats) = session
        .run_with_stats("SELECT objid INTO fast2 FROM photoobj WHERE r < 21.5")
        .unwrap();
    assert!(out.rows.is_empty());
    assert!(stats.columnar, "bare tag INTO must take the columnar path");
    assert!(stats.rows_emitted > 0);
    assert!(stats.scan.bytes_scanned as usize <= tags.bytes());

    // Stored sets re-materialize through the fast path too (refinement).
    session
        .run("SELECT objid INTO refined FROM fast WHERE gr > 0.4")
        .unwrap();
    let direct = archive
        .run("SELECT objid FROM photoobj WHERE r < 21.5 AND gr > 0.1 AND gr > 0.4")
        .unwrap();
    assert_eq!(session.set_info("refined").unwrap().rows, direct.rows.len());
}

#[test]
fn concurrent_sessions_are_isolated() {
    let (store, tags) = build_stores(53, 2000);
    let archive = archive_with_workers(&store, &tags, 2);

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let archive = archive.clone();
        handles.push(std::thread::spawn(move || {
            let session = archive.session();
            let cut = 19.0 + t as f64;
            session
                .run(&format!(
                    "SELECT objid INTO mine FROM photoobj WHERE r < {cut}"
                ))
                .unwrap();
            let got = session.run("SELECT objid FROM mine").unwrap();
            let want = archive
                .run(&format!("SELECT objid FROM photoobj WHERE r < {cut}"))
                .unwrap();
            assert_eq!(got.rows.len(), want.rows.len(), "thread {t}");
            // Same name, different session, different contents — and the
            // lifecycle completes with a drop.
            let info = session.drop_set("mine").unwrap();
            assert_eq!(info.rows, want.rows.len());
            assert!(session.sets().is_empty());
            info.rows
        }));
    }
    let sizes: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Different cuts ⇒ different set sizes: proof the namespaces never
    // bled into each other.
    let mut uniq = sizes.clone();
    uniq.dedup();
    assert_eq!(uniq, sizes, "set sizes must differ per session");

    // A fresh session cannot see anyone's sets.
    let fresh = archive.session();
    assert!(matches!(
        fresh.run("SELECT objid FROM mine"),
        Err(QueryError::Unknown(_))
    ));
    assert!(fresh.drop_set("mine").is_err());
}

#[test]
fn quotas_fail_cleanly_and_release_admission() {
    let (store, tags) = build_stores(54, 2000);
    let archive = archive_with_workers(&store, &tags, 2);

    // Byte quota: far too small for the sweep — the INTO must abort
    // mid-stream with a clean error and return its admission slots.
    let tiny = archive.session_with(SessionConfig {
        max_bytes: 4 * 1024,
        ..SessionConfig::default()
    });
    let err = tiny.run("SELECT objid INTO big FROM photoobj").unwrap_err();
    match &err {
        QueryError::Exec(msg) => assert!(msg.contains("quota"), "unhelpful error: {msg}"),
        other => panic!("expected Exec quota error, got {other:?}"),
    }
    assert!(
        tiny.set_info("big").is_none(),
        "failed INTO must not commit"
    );
    assert_eq!(archive.admission().running, 0, "slots leaked");

    // Set-count quota: the second *distinct* name errors, replacement of
    // an existing name stays legal.
    let one = archive.session_with(SessionConfig {
        max_sets: 1,
        ..SessionConfig::default()
    });
    one.run("SELECT objid INTO a FROM photoobj WHERE r < 20")
        .unwrap();
    assert!(matches!(
        one.run("SELECT objid INTO b FROM photoobj WHERE r < 19"),
        Err(QueryError::Exec(_))
    ));
    let before = one.set_info("a").unwrap().rows;
    one.run("SELECT objid INTO a FROM photoobj WHERE r < 19")
        .unwrap();
    let after = one.set_info("a").unwrap().rows;
    assert!(after < before, "replacement INTO must re-materialize");
}

#[test]
fn set_lifecycle_listing_pinning_and_refinement() {
    let (store, tags) = build_stores(55, 2000);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);

    session
        .run("SELECT objid INTO bright FROM photoobj WHERE r < 21")
        .unwrap();
    session
        .run("SELECT objid INTO faint FROM photoobj WHERE r >= 21")
        .unwrap();
    let listing = session.sets();
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].name, "bright");
    assert_eq!(listing[1].name, "faint");
    for info in &listing {
        assert!(info.rows > 0);
        assert!(info.bytes > 0);
        assert!(info.chunks >= 1);
    }
    let total = archive
        .run("SELECT objid FROM photoobj")
        .unwrap()
        .rows
        .len();
    assert_eq!(listing[0].rows + listing[1].rows, total);

    // Archive-level session registry sees the workspace.
    let infos = archive.sessions();
    let me = infos.iter().find(|i| i.id == session.id()).unwrap();
    assert_eq!(me.sets, 2);
    assert_eq!(me.rows, total);

    // A prepared statement pins its snapshot: dropping the set afterward
    // doesn't break re-execution.
    let pinned = session.prepare("SELECT objid FROM bright").unwrap();
    let n_before = pinned.run().unwrap().rows.len();
    session.drop_set("bright").unwrap();
    assert!(session.set_info("bright").is_none());
    assert_eq!(pinned.run().unwrap().rows.len(), n_before);
    // ...but a fresh prepare no longer resolves the name.
    assert!(matches!(
        session.prepare("SELECT objid FROM bright"),
        Err(QueryError::Unknown(_))
    ));

    // In-place refinement: FROM a set INTO the same name (the prepared
    // snapshot reads the old contents; the commit replaces them).
    let faint_rows = session.set_info("faint").unwrap().rows;
    session
        .run("SELECT objid INTO faint FROM faint WHERE gr > 0.3")
        .unwrap();
    let refined = session.set_info("faint").unwrap().rows;
    assert!(refined < faint_rows, "refinement must shrink the set");
    let direct = archive
        .run("SELECT objid FROM photoobj WHERE r >= 21 AND gr > 0.3")
        .unwrap();
    assert_eq!(refined, direct.rows.len());

    // Trailing INTO materializes a set-operation composition.
    session
        .run(
            "(SELECT objid FROM photoobj WHERE r < 19) UNION \
             (SELECT objid FROM photoobj WHERE class = 'QSO') INTO merged",
        )
        .unwrap();
    let merged = session.set_info("merged").unwrap().rows;
    let union = archive
        .run(
            "(SELECT objid FROM photoobj WHERE r < 19) UNION \
             (SELECT objid FROM photoobj WHERE class = 'QSO')",
        )
        .unwrap();
    assert_eq!(merged, union.rows.len());
}

#[test]
fn session_stats_and_rows_emitted_accumulate() {
    let (store, tags) = build_stores(56, 1500);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);

    let out = session
        .run("SELECT objid, r FROM photoobj WHERE r < 22")
        .unwrap();
    assert_eq!(out.stats.rows_emitted, out.rows.len() as u64);
    let s1 = session.stats();
    assert_eq!(s1.queries, 1);
    assert_eq!(s1.rows_emitted, out.stats.rows_emitted);
    assert_eq!(s1.rows_delivered, out.rows.len() as u64);
    assert!(s1.bytes_scanned > 0);
    assert_eq!(s1.sets_created, 0);

    // LIMIT: producers may emit more than the consumer sees.
    let top = session
        .run("SELECT objid, r FROM photoobj WHERE r < 30 LIMIT 3")
        .unwrap();
    assert!(top.stats.rows_emitted >= top.rows.len() as u64);

    let into = session
        .run("SELECT objid INTO keep FROM photoobj WHERE r < 20")
        .unwrap();
    let s2 = session.stats();
    assert_eq!(s2.queries, 3);
    assert_eq!(s2.sets_created, 1);
    assert_eq!(
        s2.rows_materialized,
        session.set_info("keep").unwrap().rows as u64
    );
    assert!(into.stats.rows_emitted > 0, "INTO counts emitted rows too");
    session.drop_set("keep").unwrap();
    assert_eq!(session.stats().sets_dropped, 1);
}

#[test]
fn explain_carries_the_cost_estimate_line() {
    let (store, tags) = build_stores(57, 1200);
    let archive = archive_with_workers(&store, &tags, 4);
    let prepared = archive
        .prepare("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < 21")
        .unwrap();
    let text = prepared.explain();
    // EXPLAIN and the admission queue must tell one story: the estimate
    // fields appear verbatim.
    for field in [
        "est_rows=",
        "est_bytes=",
        "containers=",
        "est_seconds=",
        "planned_workers=",
        "route=",
        "heavy=",
    ] {
        assert!(text.contains(field), "explain missing {field}: {text}");
    }
    assert!(
        text.contains(&format!("planned_workers={}", prepared.planned_workers())),
        "{text}"
    );
    assert!(text.contains("Scan[tag]"), "{text}");

    // Session-prepared set scans explain with exact stored-set stats.
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO s FROM photoobj WHERE r < 21")
        .unwrap();
    let p = session.prepare("SELECT objid FROM s WHERE r < 20").unwrap();
    let info = session.set_info("s").unwrap();
    assert!(p.explain().contains(&format!("est_bytes={}", info.bytes)));
    assert!(p.explain().contains("Scan[set:s]"), "{}", p.explain());
    // INTO statements announce their target.
    let q = session
        .prepare("SELECT objid INTO t FROM photoobj WHERE r < 19")
        .unwrap();
    assert!(q.explain().contains("Into[t]"), "{}", q.explain());
}

#[test]
fn sessionless_and_error_paths_stay_clean() {
    let (store, tags) = build_stores(58, 1000);
    let archive = archive_with_workers(&store, &tags, 2);

    // INTO without a session is rejected at prepare time.
    assert!(matches!(
        archive.prepare("SELECT objid INTO s FROM photoobj"),
        Err(QueryError::Exec(_))
    ));
    // FROM an unknown set without a session names the problem.
    assert!(matches!(
        archive.prepare("SELECT objid FROM nosuch"),
        Err(QueryError::Unknown(_))
    ));
    // Streaming an INTO statement is refused (the sink owns the stream).
    let session = archive.session();
    let p = session
        .prepare("SELECT objid INTO s FROM photoobj WHERE r < 20")
        .unwrap();
    assert!(p.stream().is_err());
    assert!(p.try_stream().is_err());
    // run() works, and the non-stream surface agrees.
    p.run().unwrap();
    assert!(session.set_info("s").is_some());

    // run_with_stats pairs the stats for one-shot callers.
    let (out, stats) = archive
        .run_with_stats("SELECT objid FROM photoobj WHERE r < 20")
        .unwrap();
    assert_eq!(out.rows.len(), stats.rows);
    assert_eq!(stats.rows_emitted, out.stats.rows_emitted);

    // Sampling composes with stored sets deterministically.
    let s1 = session.run("SELECT objid FROM s SAMPLE 0.3").unwrap();
    let s2 = session.run("SELECT objid FROM s SAMPLE 0.3").unwrap();
    assert_eq!(keyed(&s1), keyed(&s2));
    assert!(s1.rows.len() < session.set_info("s").unwrap().rows);
}
