//! Integration tests for the archive server API: concurrent submission
//! over one shared handle, cooperative cancellation, prepared-query
//! parameter binding without re-planning, the time-to-first-row
//! invariant, and admission control.

use sdss_catalog::SkyModel;
use sdss_query::{AdmissionConfig, Archive, ArchiveConfig, QueryOutput, Value};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_archive(seed: u64, n_galaxies: usize) -> Archive {
    let model = SkyModel {
        n_galaxies,
        n_stars: n_galaxies / 3,
        n_quasars: n_galaxies / 12,
        ..SkyModel::small(seed)
    };
    let objs = model.generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    Archive::new(store, Some(Arc::new(tags)))
}

/// Canonical row-key form for result comparison (order-insensitive).
fn keyed(out: &QueryOutput) -> Vec<String> {
    let mut keys: Vec<String> = out
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Num(x) => format!("{:?}", x.to_bits()),
                    other => format!("{other}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

const STRESS_QUERIES: &[&str] = &[
    "SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < 21",
    "SELECT objid, g - r AS color FROM photoobj WHERE class = 'GALAXY' AND r < 20.5",
    "SELECT COUNT(*), AVG(r) FROM photoobj WHERE CIRCLE(185, 15, 2)",
    "SELECT objid, r FROM photoobj WHERE r BETWEEN 17 AND 19 ORDER BY r LIMIT 40",
    "(SELECT objid FROM photoobj WHERE r < 20) INTERSECT \
     (SELECT objid FROM photoobj WHERE class = 'GALAXY')",
    "SELECT objid FROM photoobj WHERE DIST(185, 15) < 1.2",
];

#[test]
fn concurrent_queries_match_single_threaded_results() {
    let archive = build_archive(91, 2400);

    // Ground truth: every query run once on this thread.
    let expected: Vec<Vec<String>> = STRESS_QUERIES
        .iter()
        .map(|sql| keyed(&archive.run(sql).unwrap()))
        .collect();

    // N threads × M rounds over clones of the same handle, phase-shifted
    // so different queries overlap in flight.
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let archive = archive.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                for q in 0..STRESS_QUERIES.len() {
                    let pick = (q + t + round) % STRESS_QUERIES.len();
                    let out = archive.run(STRESS_QUERIES[pick]).unwrap();
                    assert_eq!(
                        keyed(&out),
                        expected[pick],
                        "thread {t} round {round} query {pick} diverged"
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(archive.admission().running, 0);
    assert_eq!(archive.admission().queued, 0);
}

#[test]
fn cancellation_stops_batches_early() {
    let archive = build_archive(92, 9000);
    let prepared = archive
        .prepare("SELECT objid, ra, r FROM photoobj")
        .unwrap();

    // Baseline: total batches a full drain produces.
    let full = prepared.stream().unwrap();
    let total_batches = {
        let mut stream = full;
        let mut n = 0u64;
        while stream.next_batch().is_some() {}
        let stats = stream.finish();
        n += stats.scan.batches_emitted;
        n
    };
    assert!(
        total_batches > 12,
        "need a long scan, got {total_batches} batches"
    );

    // Cancelled run: consume one batch, cancel, drain the rest.
    let mut stream = prepared.stream().unwrap();
    let ticket = stream.ticket();
    assert!(stream.next_batch().is_some());
    ticket.cancel();
    assert!(ticket.is_cancelled());
    while stream.next_batch().is_some() {}
    let stats = stream.finish();
    // The scan observed the cancel between batches: it stopped far
    // before producing the full batch count (at most what was already
    // buffered in the channel fabric).
    assert!(
        stats.scan.batches_emitted < total_batches / 2,
        "cancelled scan still emitted {} of {total_batches} batches",
        stats.scan.batches_emitted
    );
}

#[test]
fn cancellation_stops_interpreted_sweeps_too() {
    // DIST with a per-row target is not compilable, and there is no
    // spatial domain — this drives the interpreted full-sweep fallback,
    // which must also honor the cancel token (scan_all_until).
    let archive = build_archive(98, 9000);
    let prepared = archive
        .prepare("SELECT objid FROM photoobj WHERE DIST(ra, 15) < 5")
        .unwrap();
    assert!(!prepared.columnar());

    let full = prepared.stream().unwrap().collect_output().unwrap();
    let total_rows = full.stats.scan.rows_scanned;
    assert!(total_rows > 2000, "sweep too small: {total_rows}");

    let mut stream = prepared.stream().unwrap();
    let ticket = stream.ticket();
    assert!(stream.next_batch().is_some());
    ticket.cancel();
    while stream.next_batch().is_some() {}
    let stats = stream.finish();
    assert!(
        stats.scan.rows_scanned < total_rows / 2,
        "cancelled interpreted sweep still scanned {} of {total_rows} rows",
        stats.scan.rows_scanned
    );
    // Bytes accounting reflects the early stop, not the whole store.
    assert!(stats.scan.bytes_scanned < full.stats.scan.bytes_scanned);
}

#[test]
fn try_stream_refuses_instead_of_queueing() {
    let archive = Archive::with_config(
        {
            let objs = SkyModel::small(99).generate().unwrap();
            let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
            store.insert_batch(&objs).unwrap();
            store
        },
        None,
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: 1,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: 1,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    );
    let prepared = archive.prepare("SELECT objid FROM photoobj").unwrap();
    let held = prepared.stream().unwrap();
    // The only slot is held by `held`: blocking stream() would deadlock
    // this thread; try_stream reports the full pool instead.
    assert!(prepared.try_stream().is_err());
    drop(held);
    let out = prepared.try_stream().unwrap().collect_output().unwrap();
    assert!(!out.rows.is_empty());
}

// NOTE: the plans_built() counter assertion lives in its own test
// binary (`prepared_plan_counter.rs`) — the counter is process-global
// and would race with this binary's parallel tests.

#[test]
fn prepared_params_rebind_matches_literals() {
    let archive = build_archive(93, 1200);
    // Spatial predicates take literals (the domain and its HTM cover are
    // plan-time artifacts — exactly what prepare amortizes); `$N` binds
    // anywhere a scalar literal goes.
    let prepared = archive
        .prepare("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < $1 AND gr > $2")
        .unwrap();
    assert_eq!(prepared.n_params(), 2);
    assert!(prepared.columnar());

    let mut last_len = 0usize;
    for (r_cut, color) in [(19.0, 0.6), (20.5, 0.3), (22.5, -5.0)] {
        let out = prepared.run_with(&[r_cut, color]).unwrap();
        let literal = archive
            .run(&format!(
                "SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < {r_cut} AND gr > {color}"
            ))
            .unwrap();
        assert_eq!(keyed(&out), keyed(&literal), "params ({r_cut}, {color})");
        assert!(out.rows.len() >= last_len);
        last_len = out.rows.len();
    }

    // Arity is enforced.
    assert!(prepared.run_with(&[1.0]).is_err());
    assert!(prepared.run_with(&[1.0, 2.0, 3.0]).is_err());
    // An unparameterized statement rejects stray parameters.
    let plain = archive
        .prepare("SELECT objid FROM photoobj LIMIT 1")
        .unwrap();
    assert!(plain.run_with(&[5.0]).is_err());
}

#[test]
fn params_anywhere_a_literal_goes() {
    let archive = build_archive(94, 900);
    // Projection + BETWEEN bounds + arithmetic.
    let prepared = archive
        .prepare("SELECT objid, r * $1 AS scaled FROM photoobj WHERE r BETWEEN $2 AND $3")
        .unwrap();
    let out = prepared.run_with(&[2.0, 18.0, 20.0]).unwrap();
    let literal = archive
        .run("SELECT objid, r * 2 AS scaled FROM photoobj WHERE r BETWEEN 18 AND 20")
        .unwrap();
    assert_eq!(keyed(&out), keyed(&literal));
    assert!(!out.rows.is_empty());
}

#[test]
fn time_to_first_row_excludes_prepare_time() {
    let archive = build_archive(95, 1200);
    let prepared = archive
        .prepare("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 2)")
        .unwrap();
    // If time_to_first_row were measured from parse/plan (the old
    // Engine behavior folded them into one call), this sleep would leak
    // into it.
    std::thread::sleep(Duration::from_millis(120));
    let t0 = Instant::now();
    let out = prepared.run().unwrap();
    let exec_wall = t0.elapsed();
    let ttfr = out.stats.time_to_first_row.expect("rows were produced");
    assert!(
        ttfr <= exec_wall,
        "ttfr {ttfr:?} exceeds the execution call itself {exec_wall:?}"
    );
    assert!(
        ttfr < Duration::from_millis(120),
        "ttfr {ttfr:?} includes pre-execution time"
    );
    assert!(ttfr <= out.stats.total_time);
}

#[test]
fn admission_bounds_concurrency_and_queues() {
    let model = SkyModel {
        n_galaxies: 2000,
        n_stars: 600,
        n_quasars: 150,
        ..SkyModel::small(96)
    };
    let objs = model.generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    let archive = Archive::with_config(
        store,
        Some(Arc::new(tags)),
        ArchiveConfig {
            // Two worker slots, one worker per query: at most two
            // queries execute concurrently and the slot peak is a true
            // bound on scan threads.
            admission: AdmissionConfig {
                max_worker_slots: 2,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: 1,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    );

    let in_flight = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let archive = archive.clone();
        let in_flight = in_flight.clone();
        let peak = peak.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..3 {
                let prepared = archive
                    .prepare("SELECT objid, ra, dec, r FROM photoobj WHERE r < 23")
                    .unwrap();
                let mut stream = prepared.stream().unwrap();
                // Between stream() returning and finish(), we hold a slot.
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                let mut rows = 0usize;
                while let Some(b) = stream.next_batch() {
                    rows += b.len();
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
                assert!(rows > 0);
                drop(stream);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let observed_peak = peak.load(Ordering::SeqCst);
    assert!(
        observed_peak <= 2,
        "admission let {observed_peak} queries run concurrently"
    );
    assert_eq!(archive.admission().running, 0);
    assert!(archive.admission().peak_running <= 2);
}

#[test]
fn heavy_queries_share_the_heavy_pool() {
    let archive_small = build_archive(97, 600);
    // With a 1-byte heavy threshold every query is heavy; with the
    // default it is not.
    let cfg = ArchiveConfig {
        admission: AdmissionConfig {
            max_worker_slots: 4,
            heavy_bytes: 1,
            max_heavy: 1,
            max_workers_per_query: 2,
            max_bypass: 4,
        },
        ..ArchiveConfig::default()
    };
    let archive = Archive::with_config(
        archive_small.store().clone(),
        archive_small.tags().cloned(),
        cfg,
    );
    let p = archive.prepare("SELECT objid FROM photoobj").unwrap();
    assert!(p.is_heavy());
    // Heavy executions still complete (the pool clamps to >= 1 slot).
    let out = p.run().unwrap();
    assert!(!out.rows.is_empty());
    assert!(out.stats.scan.bytes_scanned >= 1);

    let cheap = archive_small
        .prepare("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 0.2)")
        .unwrap();
    assert!(!cheap.is_heavy());
}
