//! Integration tests for the morsel-driven parallel scan path:
//! parallel-vs-serial equivalence under randomized predicates, in-scan
//! aggregate folding, worker cancellation, and worker-thread admission
//! accounting.

use sdss_catalog::SkyModel;
use sdss_query::{AdmissionConfig, Archive, ArchiveConfig, QueryOutput, Value};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

fn build_stores(seed: u64, n_galaxies: usize) -> (Arc<ObjectStore>, Arc<TagStore>) {
    let model = SkyModel {
        n_galaxies,
        n_stars: n_galaxies / 3,
        n_quasars: n_galaxies / 12,
        ..SkyModel::small(seed)
    };
    let objs = model.generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    (Arc::new(store), Arc::new(tags))
}

/// An archive capped at `workers` scan workers per query (slot pool wide
/// enough that admission never throttles the test).
fn archive_with_workers(store: &Arc<ObjectStore>, tags: &Arc<TagStore>, workers: usize) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: 16,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

/// Canonical row-key form for order-insensitive result comparison.
fn keyed(out: &QueryOutput) -> Vec<String> {
    let mut keys: Vec<String> = out
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Num(x) => format!("{:?}", x.to_bits()),
                    other => format!("{other}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    keys.sort();
    keys
}

/// Tiny deterministic generator for randomized predicate parameters.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (hi - lo) * ((self.0 >> 11) as f64 / (1u64 << 53) as f64)
    }
}

#[test]
fn parallel_matches_serial_on_randomized_predicates() {
    let (store, tags) = build_stores(41, 4000);
    assert!(tags.num_containers() >= 4, "need several containers");
    let serial = archive_with_workers(&store, &tags, 1);
    let parallel = archive_with_workers(&store, &tags, 4);

    let mut rng = Lcg(0x5eed_cafe);
    let mut sweeps = Vec::new();
    for _ in 0..6 {
        let r_cut = rng.next_f64(18.0, 23.5);
        let color = rng.next_f64(-0.2, 0.8);
        sweeps.push(format!(
            "SELECT objid, ra, dec, r FROM photoobj WHERE r < {r_cut:.4}"
        ));
        sweeps.push(format!(
            "SELECT objid, gr FROM photoobj WHERE gr > {color:.4} AND r < {r_cut:.4}"
        ));
    }
    for _ in 0..4 {
        let ra = rng.next_f64(182.0, 188.0);
        let dec = rng.next_f64(12.0, 18.0);
        let radius = rng.next_f64(0.5, 3.0);
        let r_cut = rng.next_f64(19.0, 23.0);
        sweeps.push(format!(
            "SELECT objid, r, class FROM photoobj WHERE CIRCLE({ra:.3}, {dec:.3}, {radius:.3}) AND r < {r_cut:.3}"
        ));
    }
    sweeps.push("SELECT objid, class FROM photoobj WHERE class = 'GALAXY'".to_string());
    sweeps.push(
        "(SELECT objid FROM photoobj WHERE r < 21) INTERSECT \
         (SELECT objid FROM photoobj WHERE class = 'GALAXY')"
            .to_string(),
    );

    for sql in &sweeps {
        let a = serial.run(sql).unwrap();
        let b = parallel.run(sql).unwrap();
        assert_eq!(keyed(&a), keyed(&b), "parallel diverged on: {sql}");
        // Per-worker byte accounting adds up to the scan total on the
        // morsel path (single-leaf queries only; set ops have two scans
        // whose workers all register on one ticket).
        assert_eq!(
            b.stats.worker_bytes.iter().sum::<u64>(),
            b.stats.scan.bytes_scanned,
            "worker bytes don't add up for: {sql}"
        );
    }

    // A full sweep engages the pool: multiple workers, morsels claimed.
    let sweep = parallel
        .run("SELECT objid, ra, dec, r FROM photoobj WHERE r < 30")
        .unwrap();
    assert!(sweep.stats.columnar);
    assert_eq!(sweep.stats.workers_granted, 4);
    assert!(
        sweep.stats.workers_used > 1,
        "pool never engaged: {} workers",
        sweep.stats.workers_used
    );
    assert_eq!(sweep.stats.morsels, tags.num_containers() as u64);

    // The serial archive really is serial.
    let one = serial
        .run("SELECT objid FROM photoobj WHERE r < 30")
        .unwrap();
    assert_eq!(one.stats.workers_granted, 1);
    assert_eq!(one.stats.workers_used, 1);
}

#[test]
fn sorted_limit_is_stable_across_worker_counts() {
    let (store, tags) = build_stores(42, 2500);
    let serial = archive_with_workers(&store, &tags, 1);
    let parallel = archive_with_workers(&store, &tags, 8);
    // objid is unique, so ORDER BY objid LIMIT N is deterministic even
    // though parallel workers emit batches in nondeterministic order.
    let sql = "SELECT objid, r FROM photoobj WHERE r < 22 ORDER BY objid LIMIT 50";
    let a = serial.run(sql).unwrap();
    let b = parallel.run(sql).unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn aggregates_fold_in_scan_and_match_channel_path() {
    let (store, tags) = build_stores(43, 3000);
    let serial = archive_with_workers(&store, &tags, 1);
    let parallel = archive_with_workers(&store, &tags, 4);

    let mut rng = Lcg(0xa66_f01d);
    for _ in 0..5 {
        let color = rng.next_f64(-0.1, 0.6);
        let sql = format!(
            "SELECT COUNT(*), AVG(r), MIN(r), MAX(r), SUM(g) FROM photoobj WHERE gr > {color:.4}"
        );
        let a = serial.run(&sql).unwrap();
        let b = parallel.run(&sql).unwrap();
        let (ra, rb) = (&a.rows[0], &b.rows[0]);
        // COUNT/MIN/MAX are exact regardless of fold order.
        assert_eq!(ra[0], rb[0], "COUNT: {sql}");
        assert_eq!(ra[2], rb[2], "MIN: {sql}");
        assert_eq!(ra[3], rb[3], "MAX: {sql}");
        // SUM/AVG may differ by float re-association across workers.
        for idx in [1usize, 4] {
            let (x, y) = (ra[idx].as_num().unwrap(), rb[idx].as_num().unwrap());
            assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "agg {idx} diverged on {sql}: {x} vs {y}"
            );
        }
        // The fused path ships exactly one batch (the result row): no
        // `__agg_i` columns ever crossed the channel fabric.
        assert_eq!(b.stats.batches, 1, "{sql}");
        assert!(b.stats.workers_used > 1, "{sql}");
        assert!(b.stats.morsels > 0, "{sql}");
        // Folded rows are still accounted as scanned rows.
        assert_eq!(
            b.stats.scan.rows_scanned, a.stats.scan.rows_scanned,
            "{sql}"
        );
    }

    // Empty-selection aggregates keep their NULL/0 semantics.
    let empty = parallel
        .run("SELECT COUNT(*), AVG(r), MIN(r) FROM photoobj WHERE r < -5")
        .unwrap();
    assert_eq!(empty.rows[0][0], Value::Num(0.0));
    assert_eq!(empty.rows[0][1], Value::Null);
    assert_eq!(empty.rows[0][2], Value::Null);
}

#[test]
fn cancellation_stops_every_worker() {
    let (store, tags) = build_stores(44, 9000);
    let parallel = archive_with_workers(&store, &tags, 4);
    let prepared = parallel
        .prepare("SELECT objid, ra, dec, r FROM photoobj")
        .unwrap();
    assert!(prepared.planned_workers() > 1);

    // Baseline: a full drain's scan volume.
    let full = prepared.stream().unwrap().collect_output().unwrap();
    let total_rows = full.stats.scan.rows_scanned;
    assert!(total_rows >= 9000, "sweep too small: {total_rows}");

    // Cancel after the first batch; drain what's buffered.
    let mut stream = prepared.stream().unwrap();
    let ticket = stream.ticket();
    assert!(stream.next_batch().is_some());
    ticket.cancel();
    while stream.next_batch().is_some() {}
    let stats = stream.finish();
    // Every worker observed the cancel and registered its exit — the
    // stream only closes when the last worker drops its channel end, so
    // a full drain with all workers accounted proves they all stopped.
    assert_eq!(stats.workers_used, stats.workers_granted);
    assert!(
        stats.scan.rows_scanned < total_rows / 2,
        "cancelled parallel sweep still scanned {} of {total_rows} rows",
        stats.scan.rows_scanned
    );
    assert!(stats.scan.bytes_scanned < full.stats.scan.bytes_scanned);
    // All slots returned once the stream is gone.
    assert_eq!(parallel.admission().running, 0);
}

#[test]
fn parallel_sweep_holds_one_slot_per_worker() {
    let (store, tags) = build_stores(45, 2500);
    let parallel = archive_with_workers(&store, &tags, 4);
    let prepared = parallel.prepare("SELECT objid, r FROM photoobj").unwrap();
    assert_eq!(prepared.planned_workers(), 4);

    let mut stream = prepared.stream().unwrap();
    assert!(stream.next_batch().is_some());
    // Mid-flight, the execution holds one admission slot per granted
    // worker — the contract dataflow::pool documents.
    assert_eq!(parallel.admission().running, 4);
    while stream.next_batch().is_some() {}
    let stats = stream.finish();
    assert_eq!(stats.workers_granted, 4);
    assert_eq!(parallel.admission().running, 0);
    assert!(parallel.admission().peak_running >= 4);

    // A one-container cone search stays single-worker: parallelism never
    // exceeds the touched-container count.
    let cone = parallel
        .prepare("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 0.05)")
        .unwrap();
    let touched = cone.estimate().containers_full + cone.estimate().containers_partial;
    assert!(cone.planned_workers() <= touched.max(1));
}
