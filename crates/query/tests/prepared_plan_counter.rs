//! The acceptance assertion for prepared queries: re-execution with new
//! parameters builds **zero** additional plans, verified through the
//! process-global `plans_built()` counter.
//!
//! This lives in its own test binary on purpose — the counter counts
//! every `plan()` in the process, so it can only be asserted exactly
//! when nothing else plans concurrently (cargo runs tests *within* a
//! binary in parallel, but this binary has a single test).

use sdss_catalog::SkyModel;
use sdss_query::{plans_built, Archive};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

#[test]
fn reexecution_with_new_params_never_replans() {
    let objs = SkyModel::small(41).generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    let archive = Archive::new(store, Some(Arc::new(tags)));

    let prepared = archive
        .prepare("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < $1")
        .unwrap();
    let after_prepare = plans_built();
    assert!(after_prepare >= 1, "prepare plans exactly once");

    let mut sizes = Vec::new();
    for cut in [18.0, 20.0, 22.0, 24.0] {
        sizes.push(prepared.run_with(&[cut]).unwrap().rows.len());
    }
    assert_eq!(
        plans_built(),
        after_prepare,
        "parameter re-binding must not re-plan (or re-parse)"
    );
    // Sanity: the bindings really changed execution behavior.
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    assert!(*sizes.last().unwrap() > sizes[0]);

    // A fresh ad-hoc run does plan (the counter moves for real work).
    let _ = archive.run("SELECT objid FROM photoobj LIMIT 1").unwrap();
    assert_eq!(plans_built(), after_prepare + 1);
}
