//! Integration tests for the `MATCH(a, b, radius_arcsec)` cross-match
//! join source: set-vs-set and set-vs-archive pair equivalence against a
//! brute-force O(n·m) great-circle oracle, morsel-parallel execution
//! over the probe side, in-scan pair-count folding, `MATCH ... INTO`
//! materialization under session quotas, and the plan-time validation
//! surface.

use sdss_catalog::{PhotoObj, SkyModel};
use sdss_query::{
    AdmissionConfig, Archive, ArchiveConfig, QueryError, QueryOutput, Session, SessionConfig,
};
use sdss_storage::{ObjectStore, StoreConfig, TagStore};
use std::sync::Arc;

fn build_stores(seed: u64, n_galaxies: usize) -> (Arc<ObjectStore>, Arc<TagStore>, Vec<PhotoObj>) {
    let model = SkyModel {
        n_galaxies,
        n_stars: n_galaxies / 3,
        n_quasars: n_galaxies / 12,
        ..SkyModel::small(seed)
    };
    let objs = model.generate().unwrap();
    let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
    store.insert_batch(&objs).unwrap();
    let tags = TagStore::from_store(&store);
    (Arc::new(store), Arc::new(tags), objs)
}

fn archive_with_workers(store: &Arc<ObjectStore>, tags: &Arc<TagStore>, workers: usize) -> Archive {
    Archive::with_config(
        store.clone(),
        Some(tags.clone()),
        ArchiveConfig {
            admission: AdmissionConfig {
                max_worker_slots: 16,
                heavy_bytes: u64::MAX,
                max_heavy: 1,
                max_workers_per_query: workers,
                max_bypass: 4,
            },
            ..ArchiveConfig::default()
        },
    )
}

/// A session cutting small chunks so even modest sets give the match
/// join several probe morsels.
fn small_chunk_session(archive: &Archive) -> Session {
    archive.session_with(SessionConfig {
        chunk_rows: 256,
        ..SessionConfig::default()
    })
}

/// Ordered `(a.objid, b.objid)` pairs out of a MATCH query result.
fn pair_keys(out: &QueryOutput) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = out
        .rows
        .iter()
        .map(|r| (r[0].as_id().unwrap(), r[1].as_id().unwrap()))
        .collect();
    keys.sort_unstable();
    keys
}

/// The brute-force O(n·m) great-circle oracle: every ordered pair within
/// the radius, identity pairs excluded.
fn oracle_pairs(a: &[&PhotoObj], b: &[&PhotoObj], radius_arcsec: f64) -> Vec<(u64, u64)> {
    let mut pairs = Vec::new();
    for p in a {
        for q in b {
            if p.obj_id == q.obj_id {
                continue;
            }
            let sep = p.unit_vec().separation_deg(q.unit_vec()) * 3600.0;
            if sep <= radius_arcsec {
                pairs.push((p.obj_id, q.obj_id));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Tiny deterministic generator for randomized parameters.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (hi - lo) * ((self.0 >> 11) as f64 / (1u64 << 53) as f64)
    }
}

#[test]
fn set_vs_set_match_equals_brute_force_oracle_randomized() {
    let (store, tags, objs) = build_stores(71, 1200);
    let serial = archive_with_workers(&store, &tags, 1);
    let parallel = archive_with_workers(&store, &tags, 4);

    let mut rng = Lcg(0x9e37_79b9);
    // Radii chosen to straddle the zone-index level boundaries (level
    // 10 up to 200", level 7 up to 3600"): zone-boundary pairs at every
    // bucket granularity must survive, and the brute-force comparison
    // catches any cover-margin loss.
    for (trial, &radius) in [5.0, 60.0, 199.9, 200.1, 900.0, 3500.0].iter().enumerate() {
        let r1 = rng.next_f64(20.0, 23.0);
        let r2 = rng.next_f64(19.0, 22.0);
        let archive = if trial % 2 == 0 { &parallel } else { &serial };
        let session = small_chunk_session(archive);
        session
            .run(&format!(
                "SELECT objid INTO s1 FROM photoobj WHERE r < {r1:.4}"
            ))
            .unwrap();
        session
            .run(&format!(
                "SELECT objid INTO s2 FROM photoobj WHERE r < {r2:.4}"
            ))
            .unwrap();
        let out = session
            .run(&format!(
                "SELECT a.objid, b.objid, sep_arcsec FROM MATCH(s1, s2, {radius})"
            ))
            .unwrap();
        let a_side: Vec<&PhotoObj> = objs.iter().filter(|o| (o.mag(2) as f64) < r1).collect();
        let b_side: Vec<&PhotoObj> = objs.iter().filter(|o| (o.mag(2) as f64) < r2).collect();
        let want = oracle_pairs(&a_side, &b_side, radius);
        assert_eq!(
            pair_keys(&out),
            want,
            "trial {trial}: MATCH(s1, s2, {radius}) diverged from the oracle \
             (r1 = {r1:.4}, r2 = {r2:.4})"
        );
        // Every reported separation is within the radius and correct.
        for row in &out.rows {
            let sep = row[2].as_num().unwrap();
            assert!(sep <= radius, "pair outside radius: {sep} > {radius}");
        }
    }
}

#[test]
fn set_vs_archive_match_equals_set_vs_materialized_sky() {
    let (store, tags, objs) = build_stores(72, 1000);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO probe FROM photoobj WHERE r < 21")
        .unwrap();
    // The whole sky as a stored set: MATCH(probe, photoobj, r) must
    // produce exactly the same pairs as MATCH(probe, sky, r).
    session
        .run("SELECT objid INTO sky FROM photoobj WHERE r < 99")
        .unwrap();
    let vs_archive = session
        .run("SELECT a.objid, b.objid FROM MATCH(probe, photoobj, 120)")
        .unwrap();
    let vs_set = session
        .run("SELECT a.objid, b.objid FROM MATCH(probe, sky, 120)")
        .unwrap();
    assert_eq!(pair_keys(&vs_archive), pair_keys(&vs_set));

    // ... and both agree with the oracle.
    let probe: Vec<&PhotoObj> = objs.iter().filter(|o| (o.mag(2) as f64) < 21.0).collect();
    let sky: Vec<&PhotoObj> = objs.iter().collect();
    assert_eq!(pair_keys(&vs_archive), oracle_pairs(&probe, &sky, 120.0));

    // Archive-as-probe mirrors the pairs (ordered-pair semantics).
    let flipped = session
        .run("SELECT a.objid, b.objid FROM MATCH(photoobj, probe, 120)")
        .unwrap();
    let mut mirrored: Vec<(u64, u64)> = pair_keys(&vs_archive)
        .into_iter()
        .map(|(a, b)| (b, a))
        .collect();
    mirrored.sort_unstable();
    assert_eq!(pair_keys(&flipped), mirrored);
}

#[test]
fn match_runs_morsel_parallel_and_folds_pair_counts_in_scan() {
    let (store, tags, _) = build_stores(73, 3000);
    let archive = archive_with_workers(&store, &tags, 4);
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO all FROM photoobj WHERE r < 30")
        .unwrap();
    let info = session.set_info("all").unwrap();
    assert!(info.chunks > 1, "need a multi-chunk probe side");

    let prepared = session
        .prepare("SELECT a.objid, b.objid, sep_arcsec FROM MATCH(all, all, 60)")
        .unwrap();
    assert!(
        prepared.planned_workers() > 1,
        "match joins must parallelize"
    );
    let out = prepared.run().unwrap();
    assert!(
        !out.rows.is_empty(),
        "a 60\" self-match on a dense field pairs up"
    );
    assert!(
        out.stats.workers_used > 1,
        "match probe never engaged the pool: {} workers",
        out.stats.workers_used
    );
    assert_eq!(
        out.stats.morsels, info.chunks as u64,
        "one morsel per probe-side chunk"
    );
    assert_eq!(
        out.stats.worker_bytes.iter().sum::<u64>(),
        info.bytes as u64,
        "probe-side bytes accounted per worker"
    );
    // Self-join ordered-pair semantics: (p, q) and (q, p) both appear,
    // identity pairs never do.
    let keys = pair_keys(&out);
    for &(a, b) in &keys {
        assert_ne!(a, b, "identity pair leaked");
        assert!(
            keys.binary_search(&(b, a)).is_ok(),
            "missing mirror of ({a}, {b})"
        );
    }

    // COUNT over the same MATCH folds in-scan: one batch through the
    // fabric, the same pair count, and multiple workers.
    let cnt = session
        .run("SELECT COUNT(*) FROM MATCH(all, all, 60)")
        .unwrap();
    assert_eq!(cnt.rows[0][0].as_num().unwrap() as usize, out.rows.len());
    assert_eq!(cnt.stats.batches, 1, "in-scan folding ships one batch");
    assert!(cnt.stats.workers_used > 1);

    // Pair predicates filter row-wise: a.objid < b.objid halves the
    // ordered pairs.
    let half = session
        .run("SELECT a.objid, b.objid FROM MATCH(all, all, 60) WHERE a.objid < b.objid")
        .unwrap();
    assert_eq!(half.rows.len() * 2, out.rows.len());
}

#[test]
fn match_into_materializes_under_session_quotas() {
    let (store, tags, _) = build_stores(74, 1500);
    let archive = archive_with_workers(&store, &tags, 2);

    // Roomy session: MATCH ... INTO lands the distinct probe-side
    // objects that have a neighbor.
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO cand FROM photoobj WHERE r < 22")
        .unwrap();
    session
        .run("SELECT a.objid AS objid INTO paired FROM MATCH(cand, cand, 90)")
        .unwrap();
    let paired = session.set_info("paired").expect("set landed");
    assert!(paired.rows > 0);
    let distinct = session
        .run("SELECT a.objid, b.objid FROM MATCH(cand, cand, 90)")
        .unwrap();
    let mut a_ids: Vec<u64> = distinct
        .rows
        .iter()
        .map(|r| r[0].as_id().unwrap())
        .collect();
    a_ids.sort_unstable();
    a_ids.dedup();
    assert_eq!(
        paired.rows,
        a_ids.len(),
        "one record per distinct probe objid"
    );
    // The default qualified projection works as the pointer too.
    session
        .run("SELECT a.objid INTO paired2 FROM MATCH(cand, cand, 90)")
        .unwrap();
    assert_eq!(session.set_info("paired2").unwrap().rows, paired.rows);

    // Quota enforcement: a byte budget that fits `cand` but not a
    // second materialization aborts the MATCH INTO cleanly.
    let cand_bytes = session.set_info("cand").unwrap().bytes;
    let tight = archive.session_with(SessionConfig {
        max_bytes: (cand_bytes + 256) as u64,
        chunk_rows: 256,
        ..SessionConfig::default()
    });
    tight
        .run("SELECT objid INTO cand FROM photoobj WHERE r < 22")
        .unwrap();
    let err = tight
        .run("SELECT a.objid AS objid INTO paired FROM MATCH(cand, cand, 90)")
        .unwrap_err();
    match &err {
        QueryError::Exec(msg) => assert!(msg.contains("quota"), "unhelpful error: {msg}"),
        other => panic!("expected Exec quota error, got {other:?}"),
    }
    assert!(
        tight.set_info("paired").is_none(),
        "failed INTO must not commit"
    );
    assert_eq!(archive.admission().running, 0, "slots leaked");
}

#[test]
fn match_validation_rejects_bad_shapes_at_plan_time() {
    let (store, tags, _) = build_stores(75, 400);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO s FROM photoobj WHERE r < 22")
        .unwrap();

    // Unqualified attributes are ambiguous over a pair source.
    assert!(matches!(
        session.prepare("SELECT objid FROM MATCH(s, s, 5)"),
        Err(QueryError::Unknown(_))
    ));
    // Qualified names must be tag attributes.
    assert!(matches!(
        session.prepare("SELECT a.psf_r FROM MATCH(s, s, 5)"),
        Err(QueryError::Unknown(_))
    ));
    // SELECT * cannot pick a side.
    assert!(matches!(
        session.prepare("SELECT * FROM MATCH(s, s, 5)"),
        Err(QueryError::Type(_))
    ));
    // Spatial predicates are as side-ambiguous as unqualified attrs:
    // they would silently bind one side, so they're rejected.
    assert!(matches!(
        session.prepare("SELECT a.objid FROM MATCH(s, s, 5) WHERE CIRCLE(185, 15, 1)"),
        Err(QueryError::Type(_))
    ));
    assert!(session
        .prepare("SELECT a.objid FROM MATCH(s, s, 5) WHERE DIST(185, 15) < 1")
        .is_err());
    // ...as are functions reading unqualified row attributes implicitly.
    assert!(matches!(
        session.prepare(
            "SELECT a.objid FROM MATCH(s, s, 5) WHERE COLORDIST(0.5, 0.4, 0.3, 0.2) < 0.6"
        ),
        Err(QueryError::Type(_))
    ));
    // The radius must be positive.
    assert!(session
        .prepare("SELECT a.objid FROM MATCH(s, s, 0)")
        .is_err());
    assert!(session
        .prepare("SELECT a.objid FROM MATCH(s, s, -3)")
        .is_err());
    // Unknown stored sets fail at prepare time, naming the set.
    assert!(matches!(
        session.prepare("SELECT a.objid FROM MATCH(nosuch, s, 5)"),
        Err(QueryError::Unknown(_))
    ));
    // INTO from a MATCH needs a pointer column.
    assert!(matches!(
        session.prepare("SELECT sep_arcsec INTO p FROM MATCH(s, s, 5)"),
        Err(QueryError::Type(_))
    ));
    // ORDER BY accepts qualified pair columns.
    let by_a = session
        .run("SELECT a.objid, b.objid FROM MATCH(s, s, 120) ORDER BY a.objid LIMIT 10")
        .unwrap();
    for w in by_a.rows.windows(2) {
        assert!(w[0][0].as_id().unwrap() <= w[1][0].as_id().unwrap());
    }
    // sep_arcsec projects and filters; ORDER BY composes over it.
    let out = session
        .run(
            "SELECT a.objid, b.objid, sep_arcsec FROM MATCH(s, s, 120) \
             WHERE sep_arcsec > 10 ORDER BY sep_arcsec LIMIT 5",
        )
        .unwrap();
    assert!(out.rows.len() <= 5);
    for w in out.rows.windows(2) {
        assert!(w[0][2].as_num().unwrap() <= w[1][2].as_num().unwrap());
    }
    for row in &out.rows {
        assert!(row[2].as_num().unwrap() > 10.0);
    }
}

#[test]
fn prepared_match_pins_its_set_snapshots() {
    let (store, tags, _) = build_stores(76, 800);
    let archive = archive_with_workers(&store, &tags, 2);
    let session = small_chunk_session(&archive);
    session
        .run("SELECT objid INTO s FROM photoobj WHERE r < 22")
        .unwrap();
    let prepared = session
        .prepare("SELECT a.objid, b.objid FROM MATCH(s, s, 60)")
        .unwrap();
    let before = prepared.run().unwrap().rows.len();
    // Dropping the set does not invalidate the prepared join.
    session.drop_set("s").unwrap();
    assert_eq!(prepared.run().unwrap().rows.len(), before);
    // ...but a fresh prepare no longer resolves it.
    assert!(session
        .prepare("SELECT a.objid FROM MATCH(s, s, 60)")
        .is_err());
}
