//! Predicate/projection compilation to register bytecode over column
//! batches.
//!
//! The interpreter in [`crate::ops`] re-walks the `Expr` AST for every
//! row and materializes a `TagObject` first — fine for the general case,
//! but the paper's dominant workload is popular-attribute predicate scans
//! over the tag partition (E5: "searched more than 10 times faster").
//! This module lowers a planned expression once into a small register
//! program whose instructions each process a whole [`ColumnBatch`]
//! (~1024 rows) of struct-of-arrays tag columns, producing a
//! [`SelectionMask`]; projections evaluate the same way and only touch
//! rows the mask kept.
//!
//! Compilation is *best-effort*: anything outside the tag-column value
//! domain (string ordering, non-literal `DIST` targets, full-object
//! attributes) returns `None` and the scan falls back to the row
//! interpreter. Compiled semantics match the interpreter bit-for-bit:
//! f32 colors subtract in f32 before widening, `ra`/`dec` derive through
//! the same `SkyPos` code path, and boolean lanes are **three-valued**
//! (true / false / error) because the interpreter turns a NaN comparison
//! into a row-level error that short-circuits through AND/OR exactly
//! like an exception — `NOT (NaN != x)` keeps no rows even though a
//! naive "NaN compares false" vectorization would keep all of them.
//!
//! Paper mapping: the tag partition is the vertical slice of the 10
//! popular attributes; this is the execution engine that makes scanning
//! that slice run at memory bandwidth instead of deserialization speed.

use crate::ast::{BinOp, Expr, UnOp, Value};
use crate::plan::spatial_to_domain;
use sdss_catalog::ObjClass;
use sdss_htm::Domain;
use sdss_skycoords::{Rotation, SkyPos, UnitVec3};
use sdss_storage::{ColumnBatch, SelectionMask, BATCH_ROWS};

/// Where a numeric lane loads from.
#[derive(Debug, Clone, Copy)]
enum NumSrc {
    Const(f64),
    /// `objid` as f64 — matches the interpreter's mixed Id/Num compares.
    ObjId,
    X,
    Y,
    Z,
    /// Band magnitude, widened f32 → f64.
    Mag(u8),
    /// Color `mags[a] - mags[b]`, subtracted in f32 *then* widened
    /// (identical rounding to `TagObject::color_*() as f64`).
    Color(u8, u8),
    Size,
    /// Derived per row through `SkyPos::from_unit_vec`.
    Ra,
    Dec,
}

/// One bytecode instruction. `u8` operands index the numeric or mask
/// register files of [`BatchScratch`].
#[derive(Debug, Clone)]
enum Inst {
    Load {
        src: NumSrc,
        dst: u8,
    },
    Arith {
        op: BinOp,
        a: u8,
        b: u8,
        dst: u8,
    },
    Neg {
        a: u8,
        dst: u8,
    },
    Abs {
        a: u8,
        dst: u8,
    },
    Sqrt {
        a: u8,
        dst: u8,
    },
    Log10 {
        a: u8,
        dst: u8,
    },
    /// Angular distance (degrees) to a fixed target direction.
    Dist {
        target: UnitVec3,
        dst: u8,
    },
    /// Latitude/longitude in a fixed rotated frame.
    FrameCoord {
        rot: Rotation,
        lat: bool,
        dst: u8,
    },
    /// Numeric comparison producing a tri-state mask: NaN on either side
    /// marks the row *errored* (the interpreter's comparison error).
    Cmp {
        op: BinOp,
        a: u8,
        b: u8,
        dst: u8,
    },
    /// `x BETWEEN lo AND hi` (inclusive).
    Between {
        x: u8,
        lo: u8,
        hi: u8,
        dst: u8,
    },
    /// `class = <literal>` as a byte compare (no string materialized).
    ClassCmp {
        byte: u8,
        ne: bool,
        dst: u8,
    },
    ConstMask {
        value: bool,
        dst: u8,
    },
    AndMask {
        a: u8,
        b: u8,
        dst: u8,
    },
    OrMask {
        a: u8,
        b: u8,
        dst: u8,
    },
    NotMask {
        a: u8,
        dst: u8,
    },
    /// Row-wise geometric containment (spatial factors inside OR trees).
    SpatialMask {
        domain: Domain,
        dst: u8,
    },
}

/// A three-valued boolean lane: per row exactly one of
/// `val` (true), `err` (interpreter would have errored), or neither
/// (false). Invariant: `val & err == 0`.
#[derive(Debug, Clone)]
struct TriMask {
    val: SelectionMask,
    err: SelectionMask,
}

impl Default for TriMask {
    fn default() -> TriMask {
        TriMask::false_all(0)
    }
}

impl TriMask {
    fn false_all(rows: usize) -> TriMask {
        TriMask {
            val: SelectionMask::none_set(rows),
            err: SelectionMask::none_set(rows),
        }
    }

    /// Reset in place to all-false for `rows` rows (no allocation when
    /// capacity suffices).
    fn reset(&mut self, rows: usize) {
        self.val.reset_false(rows);
        self.err.reset_false(rows);
    }
}

/// Register files reused across batches (one per scan thread).
#[derive(Debug, Default)]
pub struct BatchScratch {
    num: Vec<Vec<f64>>,
    mask: Vec<TriMask>,
}

impl BatchScratch {
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn prepare(&mut self, n_num: usize, n_mask: usize, rows: usize) {
        self.num
            .resize_with(n_num.max(self.num.len()), || Vec::with_capacity(BATCH_ROWS));
        for lane in self.num.iter_mut().take(n_num) {
            lane.clear();
            lane.resize(rows, 0.0);
        }
        // Mask registers reset in place: each is written exactly once
        // per program run (SSA), so stale capacity is safe to reuse.
        self.mask
            .resize_with(n_mask.max(self.mask.len()), || TriMask::false_all(0));
        for m in self.mask.iter_mut().take(n_mask) {
            m.reset(rows);
        }
    }
}

/// A compiled program: straight-line instructions plus the output
/// register. Predicates output a mask; projections output a numeric lane.
#[derive(Debug, Clone)]
struct Program {
    insts: Vec<Inst>,
    n_num: usize,
    n_mask: usize,
    out: u8,
}

impl Program {
    /// `hint`: rows already known to be dropped (cover-rejected,
    /// predicate-failed) may produce garbage lanes — per-row
    /// transcendental sources (ra/dec/DIST/frame rotations/spatial
    /// containment) only compute hinted rows. Callers must never read
    /// results for unhinted rows.
    fn run(
        &self,
        batch: &ColumnBatch<'_>,
        scratch: &mut BatchScratch,
        hint: Option<&SelectionMask>,
    ) {
        let rows = batch.len();
        scratch.prepare(self.n_num, self.n_mask, rows);
        for inst in &self.insts {
            exec_inst(inst, batch, scratch, rows, hint);
        }
    }
}

/// Iterate either every row or only the hinted rows.
#[inline]
fn each_row(rows: usize, hint: Option<&SelectionMask>, mut f: impl FnMut(usize)) {
    match hint {
        Some(mask) => mask.iter_set().for_each(&mut f),
        None => (0..rows).for_each(&mut f),
    }
}

fn exec_inst(
    inst: &Inst,
    batch: &ColumnBatch<'_>,
    scratch: &mut BatchScratch,
    rows: usize,
    hint: Option<&SelectionMask>,
) {
    match inst {
        Inst::Load { src, dst } => {
            let lane = &mut scratch.num[*dst as usize];
            match src {
                NumSrc::Const(v) => lane.iter_mut().for_each(|x| *x = *v),
                NumSrc::ObjId => {
                    for (x, &id) in lane.iter_mut().zip(batch.obj_id) {
                        *x = id as f64;
                    }
                }
                NumSrc::X => lane.copy_from_slice(batch.x),
                NumSrc::Y => lane.copy_from_slice(batch.y),
                NumSrc::Z => lane.copy_from_slice(batch.z),
                NumSrc::Mag(b) => {
                    for (x, &m) in lane.iter_mut().zip(batch.mags[*b as usize]) {
                        *x = m as f64;
                    }
                }
                NumSrc::Color(a, b) => {
                    let (ca, cb) = (batch.mags[*a as usize], batch.mags[*b as usize]);
                    for i in 0..rows {
                        lane[i] = (ca[i] - cb[i]) as f64;
                    }
                }
                NumSrc::Size => {
                    for (x, &s) in lane.iter_mut().zip(batch.size) {
                        *x = s as f64;
                    }
                }
                NumSrc::Ra | NumSrc::Dec => {
                    let want_ra = matches!(src, NumSrc::Ra);
                    each_row(rows, hint, |i| {
                        let pos = SkyPos::from_unit_vec(batch.unit_vec(i));
                        lane[i] = if want_ra { pos.ra_deg() } else { pos.dec_deg() };
                    });
                }
            }
        }
        Inst::Arith { op, a, b, dst } => {
            // `dst` is always a fresh SSA register, but `a` and `b` may
            // alias each other (e.g. `diff * diff` from COLORDIST).
            let av = std::mem::take(&mut scratch.num[*a as usize]);
            let bv = if a == b {
                None
            } else {
                Some(std::mem::take(&mut scratch.num[*b as usize]))
            };
            {
                let bs: &[f64] = bv.as_deref().unwrap_or(&av);
                let lane = &mut scratch.num[*dst as usize];
                let terms = av.iter().zip(bs).take(rows);
                match op {
                    BinOp::Add => {
                        for (out, (x, y)) in lane.iter_mut().zip(terms) {
                            *out = x + y;
                        }
                    }
                    BinOp::Sub => {
                        for (out, (x, y)) in lane.iter_mut().zip(terms) {
                            *out = x - y;
                        }
                    }
                    BinOp::Mul => {
                        for (out, (x, y)) in lane.iter_mut().zip(terms) {
                            *out = x * y;
                        }
                    }
                    BinOp::Div => {
                        for (out, (x, y)) in lane.iter_mut().zip(terms) {
                            *out = x / y;
                        }
                    }
                    _ => unreachable!("non-arithmetic op in Arith"),
                }
            }
            scratch.num[*a as usize] = av;
            if let Some(bv) = bv {
                scratch.num[*b as usize] = bv;
            }
        }
        Inst::Neg { a, dst }
        | Inst::Abs { a, dst }
        | Inst::Sqrt { a, dst }
        | Inst::Log10 { a, dst } => {
            let av = std::mem::take(&mut scratch.num[*a as usize]);
            let lane = &mut scratch.num[*dst as usize];
            let pairs = lane.iter_mut().zip(av.iter().take(rows));
            match inst {
                Inst::Neg { .. } => pairs.for_each(|(out, x)| *out = -x),
                Inst::Abs { .. } => pairs.for_each(|(out, x)| *out = x.abs()),
                Inst::Sqrt { .. } => pairs.for_each(|(out, x)| *out = x.sqrt()),
                _ => pairs.for_each(|(out, x)| *out = x.log10()),
            }
            scratch.num[*a as usize] = av;
        }
        Inst::Dist { target, dst } => {
            let lane = &mut scratch.num[*dst as usize];
            each_row(rows, hint, |i| {
                lane[i] = batch.unit_vec(i).separation_deg(*target);
            });
        }
        Inst::FrameCoord { rot, lat, dst } => {
            let lane = &mut scratch.num[*dst as usize];
            each_row(rows, hint, |i| {
                let pos = SkyPos::from_unit_vec(rot.apply(batch.unit_vec(i)));
                lane[i] = if *lat { pos.dec_deg() } else { pos.ra_deg() };
            });
        }
        Inst::Cmp { op, a, b, dst } => {
            // dst is a fresh (all-false) register; fill it in place.
            let mut m = std::mem::take(&mut scratch.mask[*dst as usize]);
            let (av, bv) = (&scratch.num[*a as usize], &scratch.num[*b as usize]);
            for i in 0..rows {
                let (x, y) = (av[i], bv[i]);
                // `partial_cmp` on a NaN is `None`, which the interpreter
                // surfaces as a row-level error.
                if x.is_nan() || y.is_nan() {
                    m.err.set(i);
                    continue;
                }
                let keep = match op {
                    BinOp::Lt => x < y,
                    BinOp::Le => x <= y,
                    BinOp::Gt => x > y,
                    BinOp::Ge => x >= y,
                    BinOp::Eq => x == y,
                    BinOp::Ne => x != y,
                    _ => unreachable!("non-comparison op in Cmp"),
                };
                if keep {
                    m.val.set(i);
                }
            }
            scratch.mask[*dst as usize] = m;
        }
        Inst::Between { x, lo, hi, dst } => {
            // The interpreter computes `x >= lo && x <= hi` with plain
            // float comparisons: NaN is false here, never an error.
            let mut m = std::mem::take(&mut scratch.mask[*dst as usize]);
            let (xv, lov, hiv) = (
                &scratch.num[*x as usize],
                &scratch.num[*lo as usize],
                &scratch.num[*hi as usize],
            );
            for i in 0..rows {
                if xv[i] >= lov[i] && xv[i] <= hiv[i] {
                    m.val.set(i);
                }
            }
            scratch.mask[*dst as usize] = m;
        }
        Inst::ClassCmp { byte, ne, dst } => {
            let m = &mut scratch.mask[*dst as usize];
            for (i, &c) in batch.class.iter().enumerate() {
                if (c == *byte) != *ne {
                    m.val.set(i);
                }
            }
        }
        Inst::ConstMask { value, dst } => {
            if *value {
                let m = &mut scratch.mask[*dst as usize];
                m.val.words_mut().fill(u64::MAX);
                m.val.normalize();
            }
            // false: the register was prepared all-clear.
        }
        // AND/OR mirror the interpreter's short-circuit error flow:
        //   AND: False wins over Error on the left; a left Error poisons;
        //        a left True exposes the right (value or error).
        //   OR:  True wins over Error on the left; a left Error poisons;
        //        a left False exposes the right.
        // `dst` is fresh (SSA) and distinct from `a`/`b`; take it out to
        // read the operands by shared reference — no mask clones.
        Inst::AndMask { a, b, dst } => {
            let mut out = std::mem::take(&mut scratch.mask[*dst as usize]);
            let (am, bm) = (&scratch.mask[*a as usize], &scratch.mask[*b as usize]);
            for i in 0..out.val.words().len() {
                let (av, ae) = (am.val.words()[i], am.err.words()[i]);
                let (bv, be) = (bm.val.words()[i], bm.err.words()[i]);
                out.val.words_mut()[i] = av & bv;
                out.err.words_mut()[i] = ae | (av & be);
            }
            out.val.normalize();
            out.err.normalize();
            scratch.mask[*dst as usize] = out;
        }
        Inst::OrMask { a, b, dst } => {
            let mut out = std::mem::take(&mut scratch.mask[*dst as usize]);
            let (am, bm) = (&scratch.mask[*a as usize], &scratch.mask[*b as usize]);
            for i in 0..out.val.words().len() {
                let (av, ae) = (am.val.words()[i], am.err.words()[i]);
                let (bv, be) = (bm.val.words()[i], bm.err.words()[i]);
                out.val.words_mut()[i] = av | (!ae & bv);
                out.err.words_mut()[i] = ae | (!av & be);
            }
            out.val.normalize();
            out.err.normalize();
            scratch.mask[*dst as usize] = out;
        }
        Inst::NotMask { a, dst } => {
            let mut out = std::mem::take(&mut scratch.mask[*dst as usize]);
            let am = &scratch.mask[*a as usize];
            for i in 0..out.val.words().len() {
                let (av, ae) = (am.val.words()[i], am.err.words()[i]);
                out.val.words_mut()[i] = !av & !ae;
                out.err.words_mut()[i] = ae;
            }
            out.val.normalize();
            out.err.normalize();
            scratch.mask[*dst as usize] = out;
        }
        Inst::SpatialMask { domain, dst } => {
            let mut m = std::mem::take(&mut scratch.mask[*dst as usize]);
            each_row(rows, hint, |i| {
                if domain.contains(batch.unit_vec(i)) {
                    m.val.set(i);
                }
            });
            scratch.mask[*dst as usize] = m;
        }
    }
}

/// A compiled boolean predicate over tag column batches.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    program: Program,
}

impl CompiledPredicate {
    /// Evaluate over one batch; the returned mask has bit `i` set iff
    /// the predicate held on row `i` (errored rows are not set — the
    /// interpreter drops them the same way).
    pub fn eval<'m>(
        &self,
        batch: &ColumnBatch<'_>,
        scratch: &'m mut BatchScratch,
    ) -> &'m SelectionMask {
        self.eval_hinted(batch, scratch, None)
    }

    /// Like [`CompiledPredicate::eval`] but rows outside `hint` are
    /// *unspecified* in the result — callers that AND the result with
    /// `hint` anyway (the scan path: hint is the cover mask) use this to
    /// skip per-row geometry for rows the cover already rejected.
    pub fn eval_hinted<'m>(
        &self,
        batch: &ColumnBatch<'_>,
        scratch: &'m mut BatchScratch,
        hint: Option<&SelectionMask>,
    ) -> &'m SelectionMask {
        self.program.run(batch, scratch, hint);
        &scratch.mask[self.program.out as usize].val
    }

    /// Instruction count (EXPLAIN / tests).
    pub fn len(&self) -> usize {
        self.program.insts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.program.insts.is_empty()
    }
}

/// How one projected column materializes values.
#[derive(Debug, Clone)]
enum ProjColumn {
    /// Numeric program → `Value::Num` per selected row.
    Num(Program),
    /// `objid` passthrough → exact `Value::Id`.
    ObjId,
    /// `class` byte → `Value::Str` of the class name.
    Class,
}

/// A compiled projection: one column plan per output column.
#[derive(Debug, Clone)]
pub struct CompiledProjection {
    columns: Vec<ProjColumn>,
}

impl CompiledProjection {
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Project the selected rows of one batch into an owned
    /// [`ColumnarBatch`](crate::exec::ColumnarBatch): typed column
    /// vectors, no per-row `Vec<Value>` and no string materialization —
    /// the batch-native form the channel fabric ships. Rows materialize
    /// only at the consumer edge via `ResultBatch::rows`.
    pub fn eval_batch(
        &self,
        batch: &ColumnBatch<'_>,
        sel: &SelectionMask,
        scratch: &mut BatchScratch,
    ) -> crate::exec::ColumnarBatch {
        use crate::exec::ColumnData;
        // `iter_set` has no size hint; pre-size every gather from the
        // mask popcount so no column reallocates mid-fill.
        let n = sel.count();
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                ProjColumn::Num(prog) => {
                    prog.run(batch, scratch, Some(sel));
                    let lane = &scratch.num[prog.out as usize];
                    let mut v = Vec::with_capacity(n);
                    v.extend(sel.iter_set().map(|i| lane[i]));
                    ColumnData::Num(v)
                }
                ProjColumn::ObjId => {
                    let mut v = Vec::with_capacity(n);
                    v.extend(sel.iter_set().map(|i| batch.obj_id[i]));
                    ColumnData::Id(v)
                }
                ProjColumn::Class => {
                    let mut v = Vec::with_capacity(n);
                    v.extend(sel.iter_set().map(|i| batch.class[i]));
                    ColumnData::Class(v)
                }
            })
            .collect();
        crate::exec::ColumnarBatch::new(columns, n)
    }

    /// Materialize the selected rows of one batch, appending to `out`.
    /// Columns evaluate lane-wise over the whole batch, then gather only
    /// the selected rows (column-major fill, so each program's scratch
    /// registers are free for the next).
    pub fn eval_into(
        &self,
        batch: &ColumnBatch<'_>,
        sel: &SelectionMask,
        scratch: &mut BatchScratch,
        out: &mut Vec<Vec<Value>>,
    ) {
        if !sel.any() {
            return;
        }
        let start = out.len();
        for _ in sel.iter_set() {
            out.push(Vec::with_capacity(self.columns.len()));
        }
        for col in &self.columns {
            match col {
                ProjColumn::Num(prog) => {
                    prog.run(batch, scratch, Some(sel));
                    let lane = &scratch.num[prog.out as usize];
                    for (k, i) in sel.iter_set().enumerate() {
                        out[start + k].push(Value::Num(lane[i]));
                    }
                }
                ProjColumn::ObjId => {
                    for (k, i) in sel.iter_set().enumerate() {
                        out[start + k].push(Value::Id(batch.obj_id[i]));
                    }
                }
                ProjColumn::Class => {
                    for (k, i) in sel.iter_set().enumerate() {
                        out[start + k].push(Value::Str(
                            ObjClass::from_u8(batch.class[i])
                                .expect("valid stored class")
                                .as_str()
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}

/// Compiled aggregate argument lanes for **in-scan folding**: one
/// numeric program per aggregate (or none for `COUNT(*)`), evaluated
/// batch-at-a-time so scan workers can fold `COUNT`/`SUM`/`MIN`/`MAX`
/// partials directly instead of shipping hidden `__agg_i` columns
/// through the channel fabric.
#[derive(Debug, Clone)]
pub struct CompiledAggInputs {
    programs: Vec<Option<Program>>,
}

/// Compile the aggregate argument expressions; `None` falls back to the
/// channel path (project `__agg_i` columns, fold in the Aggregate node).
pub fn compile_agg_inputs(args: &[Option<&Expr>]) -> Option<CompiledAggInputs> {
    let programs = args
        .iter()
        .map(|arg| match arg {
            None => Some(None),
            Some(e) => {
                let mut c = Compiler::default();
                let out = c.compile_num(e)?;
                Some(Some(c.finish(out)))
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CompiledAggInputs { programs })
}

impl CompiledAggInputs {
    pub fn width(&self) -> usize {
        self.programs.len()
    }

    /// Fold the selected rows of one batch: calls `f(agg_index, value)`
    /// for every selected row of every aggregate, with exactly the value
    /// the channel path's `__agg_i` column would have carried (`None`
    /// only for argument-less `COUNT(*)`). Lanes compute hinted by the
    /// selection, so unselected rows cost nothing.
    pub fn fold(
        &self,
        batch: &ColumnBatch<'_>,
        sel: &SelectionMask,
        scratch: &mut BatchScratch,
        mut f: impl FnMut(usize, Option<f64>),
    ) {
        for (i, prog) in self.programs.iter().enumerate() {
            match prog {
                Some(prog) => {
                    prog.run(batch, scratch, Some(sel));
                    let lane = &scratch.num[prog.out as usize];
                    for r in sel.iter_set() {
                        f(i, Some(lane[r]));
                    }
                }
                None => {
                    for _ in sel.iter_set() {
                        f(i, None);
                    }
                }
            }
        }
    }
}

/// Compile a residual predicate; `None` falls back to the interpreter.
pub fn compile_predicate(expr: &Expr) -> Option<CompiledPredicate> {
    let mut c = Compiler::default();
    let out = c.compile_mask(expr)?;
    Some(CompiledPredicate {
        program: c.finish(out),
    })
}

/// Compile a projection list; `None` falls back to the interpreter.
pub fn compile_projection(columns: &[(String, Expr)]) -> Option<CompiledProjection> {
    let cols = columns
        .iter()
        .map(|(_, e)| {
            Some(match e {
                Expr::Attr(a) if a == "objid" => ProjColumn::ObjId,
                Expr::Attr(a) if a == "class" => ProjColumn::Class,
                _ => {
                    let mut c = Compiler::default();
                    let out = c.compile_num(e)?;
                    ProjColumn::Num(c.finish(out))
                }
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CompiledProjection { columns: cols })
}

#[derive(Default)]
struct Compiler {
    insts: Vec<Inst>,
    next_num: u16,
    next_mask: u16,
}

impl Compiler {
    fn finish(self, out: u8) -> Program {
        Program {
            insts: self.insts,
            n_num: self.next_num as usize,
            n_mask: self.next_mask as usize,
            out,
        }
    }

    fn alloc_num(&mut self) -> Option<u8> {
        if self.next_num >= 256 {
            return None; // absurdly deep expression: fall back
        }
        let r = self.next_num as u8;
        self.next_num += 1;
        Some(r)
    }

    fn alloc_mask(&mut self) -> Option<u8> {
        if self.next_mask >= 256 {
            return None;
        }
        let r = self.next_mask as u8;
        self.next_mask += 1;
        Some(r)
    }

    fn load(&mut self, src: NumSrc) -> Option<u8> {
        let dst = self.alloc_num()?;
        self.insts.push(Inst::Load { src, dst });
        Some(dst)
    }

    /// Lower a numeric-valued expression; `None` = not compilable.
    fn compile_num(&mut self, e: &Expr) -> Option<u8> {
        match e {
            Expr::Attr(name) => self.load(attr_src(name)?),
            Expr::Lit(Value::Num(v)) => self.load(NumSrc::Const(*v)),
            // Unbound parameters compile as constant placeholders so the
            // columnar gate can judge a prepared plan's shape; execution
            // always compiles the *bound* plan, where `$N` is already a
            // literal. (Parameters in literal-only positions — DIST
            // targets, frame names — still fall back conservatively.)
            Expr::Param(_) => self.load(NumSrc::Const(f64::NAN)),
            Expr::Unary(UnOp::Neg, a) => {
                let a = self.compile_num(a)?;
                let dst = self.alloc_num()?;
                self.insts.push(Inst::Neg { a, dst });
                Some(dst)
            }
            Expr::Bin(op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div), a, b) => {
                let a = self.compile_num(a)?;
                let b = self.compile_num(b)?;
                let dst = self.alloc_num()?;
                self.insts.push(Inst::Arith { op: *op, a, b, dst });
                Some(dst)
            }
            Expr::Call(name, args) => self.compile_call(name, args),
            _ => None,
        }
    }

    fn compile_call(&mut self, name: &str, args: &[Expr]) -> Option<u8> {
        match name.to_ascii_uppercase().as_str() {
            "ABS" | "SQRT" | "LOG10" if args.len() == 1 => {
                let a = self.compile_num(&args[0])?;
                let dst = self.alloc_num()?;
                self.insts.push(match name.to_ascii_uppercase().as_str() {
                    "ABS" => Inst::Abs { a, dst },
                    "SQRT" => Inst::Sqrt { a, dst },
                    _ => Inst::Log10 { a, dst },
                });
                Some(dst)
            }
            "DIST" if args.len() == 2 => {
                // Only fixed targets compile; the interpreter handles the
                // (unusual) per-row target case.
                let (ra, dec) = (lit_num(&args[0])?, lit_num(&args[1])?);
                let target = SkyPos::new(ra, dec).ok()?.unit_vec();
                let dst = self.alloc_num()?;
                self.insts.push(Inst::Dist { target, dst });
                Some(dst)
            }
            fname @ ("FRAMELAT" | "FRAMELON") if args.len() == 1 => {
                let frame_name = lit_str(&args[0])?;
                let frame = crate::ops::parse_frame(frame_name).ok()?;
                let dst = self.alloc_num()?;
                self.insts.push(Inst::FrameCoord {
                    rot: frame.from_equatorial(),
                    lat: fname == "FRAMELAT",
                    dst,
                });
                Some(dst)
            }
            "COLORDIST" if args.len() == 4 => {
                // d = sqrt(Σ (ref_i − color_i)²), term order exactly as
                // the interpreter sums it.
                let refs: Vec<u8> = args
                    .iter()
                    .map(|a| self.compile_num(a))
                    .collect::<Option<Vec<_>>>()?;
                let colors = [
                    NumSrc::Color(0, 1),
                    NumSrc::Color(1, 2),
                    NumSrc::Color(2, 3),
                    NumSrc::Color(3, 4),
                ];
                let mut acc: Option<u8> = None;
                for (r, c) in refs.into_iter().zip(colors) {
                    let mine = self.load(c)?;
                    let diff = self.alloc_num()?;
                    self.insts.push(Inst::Arith {
                        op: BinOp::Sub,
                        a: r,
                        b: mine,
                        dst: diff,
                    });
                    let sq = self.alloc_num()?;
                    self.insts.push(Inst::Arith {
                        op: BinOp::Mul,
                        a: diff,
                        b: diff,
                        dst: sq,
                    });
                    acc = Some(match acc {
                        None => sq,
                        Some(prev) => {
                            let dst = self.alloc_num()?;
                            self.insts.push(Inst::Arith {
                                op: BinOp::Add,
                                a: prev,
                                b: sq,
                                dst,
                            });
                            dst
                        }
                    });
                }
                let a = acc.expect("four color terms");
                let dst = self.alloc_num()?;
                self.insts.push(Inst::Sqrt { a, dst });
                Some(dst)
            }
            _ => None,
        }
    }

    /// Lower a boolean-valued expression; `None` = not compilable.
    fn compile_mask(&mut self, e: &Expr) -> Option<u8> {
        match e {
            Expr::Lit(Value::Bool(b)) => {
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::ConstMask { value: *b, dst });
                Some(dst)
            }
            Expr::Unary(UnOp::Not, a) => {
                let a = self.compile_mask(a)?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::NotMask { a, dst });
                Some(dst)
            }
            Expr::Bin(BinOp::And, a, b) => {
                let a = self.compile_mask(a)?;
                let b = self.compile_mask(b)?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::AndMask { a, b, dst });
                Some(dst)
            }
            Expr::Bin(BinOp::Or, a, b) => {
                let a = self.compile_mask(a)?;
                let b = self.compile_mask(b)?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::OrMask { a, b, dst });
                Some(dst)
            }
            Expr::Bin(
                op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne),
                a,
                b,
            ) => {
                if let Some(mask) = self.try_class_cmp(*op, a, b) {
                    return mask;
                }
                let a = self.compile_num(a)?;
                let b = self.compile_num(b)?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::Cmp { op: *op, a, b, dst });
                Some(dst)
            }
            Expr::Between(x, lo, hi) => {
                let x = self.compile_num(x)?;
                let lo = self.compile_num(lo)?;
                let hi = self.compile_num(hi)?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::Between { x, lo, hi, dst });
                Some(dst)
            }
            Expr::Spatial(sp) => {
                let domain = spatial_to_domain(sp).ok()?;
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::SpatialMask { domain, dst });
                Some(dst)
            }
            _ => None,
        }
    }

    /// `class = 'GALAXY'` (either side) → byte compare. Returns
    /// `Some(result)` when the shape matches, `None` to try numeric.
    fn try_class_cmp(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Option<Option<u8>> {
        let (attr, lit) = match (a, b) {
            (Expr::Attr(n), Expr::Lit(Value::Str(s))) if n == "class" => (n, s),
            (Expr::Lit(Value::Str(s)), Expr::Attr(n)) if n == "class" => (n, s),
            _ => return None,
        };
        let _ = attr;
        let ne = match op {
            BinOp::Eq => false,
            BinOp::Ne => true,
            // String ordering comparisons stay on the interpreter.
            _ => return Some(None),
        };
        // Match the interpreter's case-insensitive compare against the
        // class *display* names (`QSO`, not `QUASAR`).
        let byte = [
            ObjClass::Unknown,
            ObjClass::Star,
            ObjClass::Galaxy,
            ObjClass::Quasar,
        ]
        .into_iter()
        .find(|c| c.as_str().eq_ignore_ascii_case(lit))
        .map(|c| c as u8);
        Some(Some(match byte {
            Some(byte) => {
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::ClassCmp { byte, ne, dst });
                dst
            }
            None => {
                // Unknown class name: `=` never matches, `!=` always does.
                let dst = self.alloc_mask()?;
                self.insts.push(Inst::ConstMask { value: ne, dst });
                dst
            }
        }))
    }
}

fn attr_src(name: &str) -> Option<NumSrc> {
    Some(match name {
        "objid" => NumSrc::ObjId,
        "cx" => NumSrc::X,
        "cy" => NumSrc::Y,
        "cz" => NumSrc::Z,
        "ra" => NumSrc::Ra,
        "dec" => NumSrc::Dec,
        "u" => NumSrc::Mag(0),
        "g" => NumSrc::Mag(1),
        "r" => NumSrc::Mag(2),
        "i" => NumSrc::Mag(3),
        "z" => NumSrc::Mag(4),
        "ug" => NumSrc::Color(0, 1),
        "gr" => NumSrc::Color(1, 2),
        "ri" => NumSrc::Color(2, 3),
        "iz" => NumSrc::Color(3, 4),
        "size" => NumSrc::Size,
        _ => return None,
    })
}

fn lit_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(Value::Num(v)) => Some(*v),
        Expr::Unary(UnOp::Neg, inner) => match inner.as_ref() {
            Expr::Lit(Value::Num(v)) => Some(-v),
            _ => None,
        },
        _ => None,
    }
}

fn lit_str(e: &Expr) -> Option<&str> {
    match e {
        Expr::Lit(Value::Str(s)) => Some(s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, SelectItem};
    use crate::ops::eval;
    use crate::parser::parse;
    use sdss_catalog::{SkyModel, TagObject};
    use sdss_storage::ColumnChunk;

    fn predicate_of(sql: &str) -> Expr {
        let q = parse(sql).unwrap();
        let Query::Select(s) = q else { panic!() };
        s.predicate.unwrap()
    }

    fn chunk_and_tags(n: usize, seed: u64) -> (ColumnChunk, Vec<TagObject>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut chunk = ColumnChunk::new();
        let tags: Vec<TagObject> = objs
            .iter()
            .take(n)
            .map(|o| {
                let t = TagObject::from_photo(o);
                chunk.push(&t, o.htm20);
                t
            })
            .collect();
        (chunk, tags)
    }

    /// The compiled mask must agree row-for-row with the interpreter.
    fn assert_matches_interpreter(sql_where: &str) {
        let pred = predicate_of(&format!("SELECT r FROM photoobj WHERE {sql_where}"));
        let compiled = compile_predicate(&pred)
            .unwrap_or_else(|| panic!("predicate should compile: {sql_where}"));
        let (chunk, tags) = chunk_and_tags(3000, 21);
        let mut scratch = BatchScratch::new();
        let mut row = 0usize;
        for batch in chunk.batches(1024) {
            let mask = compiled.eval(&batch, &mut scratch);
            for i in 0..batch.len() {
                let want = matches!(eval(&pred, &tags[row + i]), Ok(Value::Bool(true)));
                assert_eq!(mask.get(i), want, "{sql_where}: row {} disagrees", row + i);
            }
            row += batch.len();
        }
        assert_eq!(row, tags.len());
    }

    #[test]
    fn simple_comparisons_match() {
        assert_matches_interpreter("r < 20");
        assert_matches_interpreter("r >= 20.5");
        assert_matches_interpreter("g - r > 0.4");
        assert_matches_interpreter("gr > 0.4");
        assert_matches_interpreter("r BETWEEN 18 AND 20");
        assert_matches_interpreter("2 * r + 1 < 40");
        assert_matches_interpreter("size > 2.0");
        assert_matches_interpreter("u / g < 1.05");
    }

    #[test]
    fn boolean_logic_matches() {
        assert_matches_interpreter("r < 20 AND gr > 0.3");
        assert_matches_interpreter("r < 19 OR g < 19");
        assert_matches_interpreter("NOT (r < 20)");
        assert_matches_interpreter("r < 20 AND (gr > 0.3 OR ri > 0.2)");
    }

    #[test]
    fn class_compare_matches() {
        assert_matches_interpreter("class = 'GALAXY'");
        assert_matches_interpreter("class = 'galaxy'");
        assert_matches_interpreter("class != 'STAR'");
        assert_matches_interpreter("class = 'QSO'");
        assert_matches_interpreter("class = 'NOSUCH'");
        assert_matches_interpreter("class != 'NOSUCH'");
        assert_matches_interpreter("class = 'GALAXY' AND r < 20");
    }

    #[test]
    fn functions_match() {
        assert_matches_interpreter("DIST(185, 15) < 2.0");
        assert_matches_interpreter("ABS(gr) < 0.5");
        assert_matches_interpreter("SQRT(size) < 1.5");
        assert_matches_interpreter("LOG10(size) < 0.3");
        assert_matches_interpreter("FRAMELAT('GALACTIC') > 60");
        assert_matches_interpreter("FRAMELON('GAL') < 180");
        assert_matches_interpreter("COLORDIST(0.5, 0.4, 0.3, 0.2) < 0.6");
        assert_matches_interpreter("COLORDIST(ug, gr, ri, iz) < 0.001");
    }

    #[test]
    fn derived_positions_match() {
        assert_matches_interpreter("ra < 185");
        assert_matches_interpreter("dec BETWEEN 14 AND 16");
        assert_matches_interpreter("cx * cx + cy * cy > 0.9");
    }

    #[test]
    fn spatial_factor_in_or_matches() {
        assert_matches_interpreter("CIRCLE(185, 15, 1) OR r < 15");
    }

    #[test]
    fn nan_producing_predicates_match() {
        // SQRT of a negative and 0/0 produce NaN; the interpreter drops
        // those rows via comparison errors — so must the compiled path.
        assert_matches_interpreter("SQRT(0 - size) < 1");
        assert_matches_interpreter("(r - r) / (g - g) != 0");
        assert_matches_interpreter("LOG10(0 - 1) != LOG10(0 - 1)");
        // NaN under NOT/OR exposes the difference between "NaN compares
        // false" and the interpreter's error propagation: the errored
        // comparison must poison the row through boolean operators.
        assert_matches_interpreter("NOT (LOG10(0 - 1) != r)");
        assert_matches_interpreter("NOT (SQRT(0 - size) < 1)");
        assert_matches_interpreter("class = 'GALAXY' OR SQRT(0 - size) < 1");
        assert_matches_interpreter("SQRT(0 - size) < 1 OR class = 'GALAXY'");
        assert_matches_interpreter("NOT (NOT (SQRT(0 - size) < 1))");
        assert_matches_interpreter("r < 99 AND NOT (SQRT(0 - size) < 1)");
        // BETWEEN is plain float comparison in the interpreter: NaN is
        // false there, not an error — NOT must flip it back to true.
        assert_matches_interpreter("NOT (SQRT(0 - size) BETWEEN 0 AND 1)");
    }

    #[test]
    fn uncompilable_shapes_fall_back() {
        // Full-object attribute.
        assert!(
            compile_predicate(&predicate_of("SELECT ra FROM photoobj WHERE psf_r < 21")).is_none()
        );
        // Per-row DIST target.
        assert!(compile_predicate(&predicate_of(
            "SELECT ra FROM photoobj WHERE DIST(ra, 15) < 1"
        ))
        .is_none());
        // String ordering on class.
        assert!(compile_predicate(&predicate_of(
            "SELECT ra FROM photoobj WHERE class < 'STAR'"
        ))
        .is_none());
    }

    #[test]
    fn projection_matches_interpreter() {
        let q = parse("SELECT objid, ra, r, g - r, class FROM photoobj").unwrap();
        let Query::Select(s) = q else { panic!() };
        let cols: Vec<(String, Expr)> = s
            .items
            .iter()
            .map(|it| match it {
                SelectItem::Expr { expr, name } => (name.clone(), expr.clone()),
                _ => panic!(),
            })
            .collect();
        let proj = compile_projection(&cols).expect("projection compiles");
        assert_eq!(proj.width(), 5);

        let (chunk, tags) = chunk_and_tags(2000, 33);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        for batch in chunk.batches(1024) {
            let sel = SelectionMask::all_set(batch.len());
            proj.eval_into(&batch, &sel, &mut scratch, &mut out);
        }
        assert_eq!(out.len(), tags.len());
        for (row, tag) in out.iter().zip(tags.iter()) {
            for ((_, e), got) in cols.iter().zip(row.iter()) {
                let want = eval(e, tag).unwrap();
                assert_eq!(got, &want, "tag {}", tag.obj_id);
            }
        }
    }

    #[test]
    fn selective_projection_only_emits_selected() {
        let (chunk, tags) = chunk_and_tags(1000, 5);
        let proj =
            compile_projection(&[("objid".to_string(), Expr::Attr("objid".to_string()))]).unwrap();
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        for batch in chunk.batches(256) {
            let mut sel = SelectionMask::none_set(batch.len());
            for i in (0..batch.len()).step_by(3) {
                sel.set(i);
            }
            proj.eval_into(&batch, &sel, &mut scratch, &mut out);
        }
        let want: Vec<u64> = tags
            .chunks(256)
            .flat_map(|c| c.iter().step_by(3))
            .map(|t| t.obj_id)
            .collect();
        let got: Vec<u64> = out
            .iter()
            .map(|r| match r[0] {
                Value::Id(id) => id,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, want);
    }
}
