//! Recursive-descent parser: tokens → [`Query`] AST.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement  := query [INTO ident]                             -- parse_statement
//! query      := select ( (UNION|INTERSECT|EXCEPT) select )*   -- left assoc
//! select     := SELECT items [INTO ident] FROM source [WHERE expr]
//!               [ORDER BY ident [ASC|DESC]] [LIMIT num] [SAMPLE num]
//!             | '(' query ')'
//! source     := ident | MATCH '(' ident ',' ident ',' num ')'
//! items      := '*' | item (',' item)*
//! item       := agg '(' ('*'|expr) ')' | expr [AS ident]
//! expr       := or ;  or := and (OR and)* ;  and := not (AND not)*
//! not        := NOT not | cmp
//! cmp        := sum ((<|<=|>|>=|=|!=) sum | BETWEEN sum AND sum)?
//! sum        := prod ((+|-) prod)* ;  prod := unary ((*|/) unary)*
//! unary      := '-' unary | atom
//! atom       := num | str | attr | ident '(' args ')' | '(' expr ')'
//! attr       := ident | ident '.' ident        -- a.objid over MATCH
//! ```
//!
//! `CIRCLE`, `RECT` and `BAND` calls in predicate position become
//! [`SpatialPred`]s; `TRUE`/`FALSE` literals are accepted. A MATCH
//! source joins two tables / stored sets by angular proximity (radius
//! in arcseconds); its rows expose `a.`/`b.`-qualified tag attributes
//! and the `sep_arcsec` pseudo-column.

use crate::ast::{
    AggFn, BinOp, Expr, Query, SelectItem, SelectStmt, SetOp, SpatialPred, TableSource, UnOp, Value,
};
use crate::lexer::{lex, Spanned, Tok};
use crate::QueryError;

/// Parse a full query string (no trailing `INTO` — use
/// [`parse_statement`] for the session-workspace statement form).
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, at: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a statement: a query plus an optional **trailing** `INTO
/// <name>` (the only way to materialize a set-operation composition,
/// since the select-level `SELECT ... INTO s FROM ...` clause lives
/// inside one select). Returns the query and the trailing set name, if
/// any; select-level `INTO` stays on the [`crate::ast::SelectStmt`].
pub fn parse_statement(input: &str) -> Result<(Query, Option<String>), QueryError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, at: 0 };
    let q = p.query()?;
    let into = if p.eat_kw("INTO") {
        Some(p.ident()?.to_ascii_lowercase())
    } else {
        None
    };
    p.expect_eof()?;
    Ok((q, into))
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn pos(&self) -> usize {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at < self.toks.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, QueryError> {
        Err(QueryError::Parse {
            pos: self.pos(),
            message: message.into(),
        })
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}"))
        }
    }

    fn expect_tok(&mut self, t: Tok, what: &str) -> Result<(), QueryError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.err("trailing input after query")
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        // Allow a leading minus in numeric argument positions.
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match *self.peek() {
            Tok::Num(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            _ => self.err("expected number"),
        }
    }

    // query := select_atom ((UNION|INTERSECT|EXCEPT) select_atom)*
    fn query(&mut self) -> Result<Query, QueryError> {
        let mut left = self.select_atom()?;
        loop {
            let op = if self.at_kw("UNION") {
                SetOp::Union
            } else if self.at_kw("INTERSECT") {
                SetOp::Intersect
            } else if self.at_kw("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            self.bump();
            let right = self.select_atom()?;
            left = Query::SetOp(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // select_atom := SELECT ... | '(' query ')'
    fn select_atom(&mut self) -> Result<Query, QueryError> {
        if *self.peek() == Tok::LParen {
            self.bump();
            let q = self.query()?;
            self.expect_tok(Tok::RParen, ")")?;
            return Ok(q);
        }
        Ok(Query::Select(self.select()?))
    }

    fn select(&mut self) -> Result<SelectStmt, QueryError> {
        self.expect_kw("SELECT")?;
        let items = self.select_items()?;
        // SQL-Server-style `SELECT cols INTO set FROM ...` — materialize
        // into a named session set instead of streaming back.
        let into = if self.eat_kw("INTO") {
            Some(self.ident()?.to_ascii_lowercase())
        } else {
            None
        };
        self.expect_kw("FROM")?;
        let table = self.table_source()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            // Accept the qualified form too (`ORDER BY a.objid` over a
            // MATCH source), mirroring the atom parser's lower-casing so
            // the key matches the projected column name.
            let mut col = self.ident()?;
            if *self.peek() == Tok::Dot {
                self.bump();
                let field = self.ident()?;
                col = format!(
                    "{}.{}",
                    col.to_ascii_lowercase(),
                    field.to_ascii_lowercase()
                );
            }
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                self.eat_kw("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            let n = self.number()?;
            if n < 0.0 || n.fract() != 0.0 {
                return self.err("LIMIT must be a non-negative integer");
            }
            Some(n as usize)
        } else {
            None
        };
        let sample = if self.eat_kw("SAMPLE") {
            let f = self.number()?;
            if !(0.0..=1.0).contains(&f) {
                return self.err("SAMPLE fraction must be in [0, 1]");
            }
            Some(f)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            into,
            table,
            predicate,
            order_by,
            limit,
            sample,
        })
    }

    /// The FROM clause: a table name, or `MATCH(a, b, radius_arcsec)` —
    /// the cross-match join source over two tables / stored sets.
    fn table_source(&mut self) -> Result<TableSource, QueryError> {
        if self.at_kw("MATCH") && self.toks.get(self.at + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
            self.bump(); // MATCH
            self.bump(); // (
            let a = self.ident()?.to_ascii_lowercase();
            self.expect_tok(Tok::Comma, ",")?;
            let b = self.ident()?.to_ascii_lowercase();
            self.expect_tok(Tok::Comma, ",")?;
            let radius_arcsec = self.number()?;
            self.expect_tok(Tok::RParen, ")")?;
            if !radius_arcsec.is_finite() || radius_arcsec <= 0.0 {
                return self.err("MATCH radius must be a positive number of arcseconds");
            }
            // A match cap cannot exceed the sphere: reject statically
            // rather than after the build side has been collected.
            if radius_arcsec > 180.0 * 3600.0 {
                return self.err("MATCH radius exceeds 180 degrees (648000 arcseconds)");
            }
            return Ok(TableSource::Match {
                a,
                b,
                radius_arcsec,
            });
        }
        Ok(TableSource::Named(self.ident()?.to_ascii_lowercase()))
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, QueryError> {
        if *self.peek() == Tok::Star {
            self.bump();
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        // Aggregate?
        if let Tok::Ident(name) = self.peek().clone() {
            let agg = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFn::Count),
                "MIN" => Some(AggFn::Min),
                "MAX" => Some(AggFn::Max),
                "SUM" => Some(AggFn::Sum),
                "AVG" => Some(AggFn::Avg),
                _ => None,
            };
            if let Some(func) = agg {
                // Only treat as aggregate when followed by '('.
                if self.toks.get(self.at + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                    self.bump(); // name
                    self.bump(); // (
                    let arg = if *self.peek() == Tok::Star {
                        self.bump();
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_tok(Tok::RParen, ")")?;
                    if func != AggFn::Count && arg.is_none() {
                        return self.err("only COUNT may take *");
                    }
                    let display = match &arg {
                        None => format!("{}(*)", func.name()),
                        Some(Expr::Attr(a)) => format!("{}({})", func.name(), a),
                        Some(_) => format!("{}(expr)", func.name()),
                    };
                    let name = if self.eat_kw("AS") {
                        self.ident()?
                    } else {
                        display
                    };
                    return Ok(SelectItem::Agg { func, arg, name });
                }
            }
        }
        let expr = self.expr()?;
        let default_name = match &expr {
            Expr::Attr(a) => a.clone(),
            _ => "expr".to_string(),
        };
        let name = if self.eat_kw("AS") {
            self.ident()?
        } else {
            default_name
        };
        Ok(SelectItem::Expr { expr, name })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, QueryError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.not_expr()?;
        while self.at_kw("AND") {
            self.bump();
            let right = self.not_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, QueryError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, QueryError> {
        let left = self.sum_expr()?;
        let op = match self.peek() {
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.sum_expr()?;
            return Ok(Expr::Bin(op, Box::new(left), Box::new(right)));
        }
        if self.at_kw("BETWEEN") {
            self.bump();
            let lo = self.sum_expr()?;
            self.expect_kw("AND")?;
            let hi = self.sum_expr()?;
            return Ok(Expr::Between(Box::new(left), Box::new(lo), Box::new(hi)));
        }
        Ok(left)
    }

    fn sum_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.prod_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.prod_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn prod_expr(&mut self) -> Result<Expr, QueryError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, QueryError> {
        if *self.peek() == Tok::Minus {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, QueryError> {
        match self.peek().clone() {
            Tok::Num(v) => {
                self.bump();
                Ok(Expr::Lit(Value::Num(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::Str(s)))
            }
            Tok::Param(i) => {
                self.bump();
                Ok(Expr::Param(i))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_tok(Tok::RParen, ")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // TRUE / FALSE literals.
                if name.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::Lit(Value::Bool(false)));
                }
                self.bump();
                // `a.objid` — a qualified attribute of a MATCH source
                // (validated against the join sides at plan time).
                if *self.peek() == Tok::Dot {
                    self.bump();
                    let field = self.ident()?;
                    return Ok(Expr::Attr(format!(
                        "{}.{}",
                        name.to_ascii_lowercase(),
                        field.to_ascii_lowercase()
                    )));
                }
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        args.push(self.expr()?);
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_tok(Tok::RParen, ")")?;
                    self.call_or_spatial(&name, args)
                } else {
                    Ok(Expr::Attr(name.to_ascii_lowercase()))
                }
            }
            _ => self.err("expected expression"),
        }
    }

    /// Turn CIRCLE/RECT/BAND calls into spatial predicates; everything
    /// else stays a scalar function call (validated at plan time).
    fn call_or_spatial(&mut self, name: &str, args: Vec<Expr>) -> Result<Expr, QueryError> {
        let upper = name.to_ascii_uppercase();
        let lit_num = |e: &Expr| -> Option<f64> {
            match e {
                Expr::Lit(Value::Num(v)) => Some(*v),
                Expr::Unary(UnOp::Neg, inner) => match **inner {
                    Expr::Lit(Value::Num(v)) => Some(-v),
                    _ => None,
                },
                _ => None,
            }
        };
        match upper.as_str() {
            "CIRCLE" => {
                if args.len() != 3 {
                    return self.err("CIRCLE(ra, dec, radius) takes 3 arguments");
                }
                let nums: Option<Vec<f64>> = args.iter().map(lit_num).collect();
                match nums {
                    Some(v) => Ok(Expr::Spatial(SpatialPred::Circle {
                        ra: v[0],
                        dec: v[1],
                        radius: v[2],
                    })),
                    None => self.err("CIRCLE arguments must be numeric literals"),
                }
            }
            "RECT" => {
                if args.len() != 4 {
                    return self.err("RECT(ra_lo, ra_hi, dec_lo, dec_hi) takes 4 arguments");
                }
                let nums: Option<Vec<f64>> = args.iter().map(lit_num).collect();
                match nums {
                    Some(v) => Ok(Expr::Spatial(SpatialPred::Rect {
                        ra_lo: v[0],
                        ra_hi: v[1],
                        dec_lo: v[2],
                        dec_hi: v[3],
                    })),
                    None => self.err("RECT arguments must be numeric literals"),
                }
            }
            "BAND" => {
                if args.len() != 3 {
                    return self.err("BAND('FRAME', lat_lo, lat_hi) takes 3 arguments");
                }
                let frame = match &args[0] {
                    Expr::Lit(Value::Str(s)) => s.clone(),
                    _ => return self.err("BAND frame must be a string literal"),
                };
                match (lit_num(&args[1]), lit_num(&args[2])) {
                    (Some(lo), Some(hi)) => Ok(Expr::Spatial(SpatialPred::Band {
                        frame,
                        lat_lo: lo,
                        lat_hi: hi,
                    })),
                    _ => self.err("BAND latitudes must be numeric literals"),
                }
            }
            _ => Ok(Expr::Call(upper, args)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT ra, dec FROM photoobj").unwrap();
        match q {
            Query::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.table.named(), Some("photoobj"));
                assert!(s.predicate.is_none());
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn full_select_clauses() {
        let q = parse(
            "SELECT ra, g - r AS color FROM photoobj \
             WHERE CIRCLE(185, 15, 2) AND r < 22 \
             ORDER BY r DESC LIMIT 10 SAMPLE 0.5",
        )
        .unwrap();
        let Query::Select(s) = q else {
            panic!("expected select")
        };
        assert_eq!(s.items.len(), 2);
        match &s.items[1] {
            SelectItem::Expr { name, .. } => assert_eq!(name, "color"),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.order_by, Some(("r".to_string(), true)));
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.sample, Some(0.5));
        // The predicate contains a spatial factor.
        let mut found = false;
        fn walk(e: &Expr, found: &mut bool) {
            match e {
                Expr::Spatial(SpatialPred::Circle { ra, dec, radius }) => {
                    assert_eq!((*ra, *dec, *radius), (185.0, 15.0, 2.0));
                    *found = true;
                }
                Expr::Bin(_, a, b) => {
                    walk(a, found);
                    walk(b, found);
                }
                _ => {}
            }
        }
        walk(s.predicate.as_ref().unwrap(), &mut found);
        assert!(found);
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let q = parse("SELECT a + b * c FROM photoobj").unwrap();
        let Query::Select(s) = q else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        match expr {
            Expr::Bin(BinOp::Add, _, rhs) => match **rhs {
                Expr::Bin(BinOp::Mul, _, _) => {}
                ref other => panic!("rhs is {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // AND binds tighter than OR.
        let q = parse("SELECT a FROM photoobj WHERE x OR y AND z").unwrap();
        let Query::Select(s) = q else { panic!() };
        match s.predicate.unwrap() {
            Expr::Bin(BinOp::Or, _, rhs) => match *rhs {
                Expr::Bin(BinOp::And, _, _) => {}
                ref other => panic!("rhs is {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_negatives() {
        let q = parse("SELECT r FROM photoobj WHERE gr BETWEEN -0.5 AND 0.5").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(s.predicate.unwrap(), Expr::Between(_, _, _)));
        // Negative literal in spatial args.
        let q = parse("SELECT r FROM photoobj WHERE CIRCLE(10, -15.5, 1)").unwrap();
        let Query::Select(s) = q else { panic!() };
        match s.predicate.unwrap() {
            Expr::Spatial(SpatialPred::Circle { dec, .. }) => assert_eq!(dec, -15.5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let q = parse("SELECT COUNT(*), AVG(r) AS mean_r FROM photoobj").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(
            s.items[0],
            SelectItem::Agg {
                func: AggFn::Count,
                arg: None,
                ..
            }
        ));
        match &s.items[1] {
            SelectItem::Agg {
                func: AggFn::Avg,
                name,
                ..
            } => assert_eq!(name, "mean_r"),
            other => panic!("{other:?}"),
        }
        // MIN(*) is rejected.
        assert!(parse("SELECT MIN(*) FROM photoobj").is_err());
    }

    #[test]
    fn set_operations_left_assoc() {
        let q = parse(
            "(SELECT objid FROM photoobj WHERE r < 20) \
             UNION (SELECT objid FROM photoobj WHERE g < 20) \
             EXCEPT (SELECT objid FROM photoobj WHERE u < 20)",
        )
        .unwrap();
        match q {
            Query::SetOp(SetOp::Except, left, _) => match *left {
                Query::SetOp(SetOp::Union, _, _) => {}
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn band_frame_string() {
        let q = parse("SELECT ra FROM photoobj WHERE BAND('GALACTIC', -10, 10)").unwrap();
        let Query::Select(s) = q else { panic!() };
        match s.predicate.unwrap() {
            Expr::Spatial(SpatialPred::Band {
                frame,
                lat_lo,
                lat_hi,
            }) => {
                assert_eq!(frame, "GALACTIC");
                assert_eq!((lat_lo, lat_hi), (-10.0, 10.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM photoobj",
            "SELECT ra photoobj",
            "SELECT ra FROM photoobj WHERE",
            "SELECT ra FROM photoobj LIMIT -1",
            "SELECT ra FROM photoobj LIMIT 1.5",
            "SELECT ra FROM photoobj SAMPLE 2",
            "SELECT ra FROM photoobj WHERE CIRCLE(1, 2)",
            "SELECT ra FROM photoobj WHERE CIRCLE(ra, 2, 3)",
            "SELECT ra FROM photoobj WHERE BAND(GALACTIC, 1, 2)",
            "SELECT ra FROM photoobj trailing",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn into_clause_both_positions() {
        // SQL-Server position: between the items and FROM.
        let q = parse("SELECT objid, r INTO Bright FROM photoobj WHERE r < 20").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.into.as_deref(), Some("bright"), "names lower-cased");
        assert_eq!(s.table.named(), Some("photoobj"));

        // Trailing position (statement level) — works for set ops too.
        let (q, into) = parse_statement(
            "(SELECT objid FROM photoobj) UNION (SELECT objid FROM photoobj) INTO merged",
        )
        .unwrap();
        assert!(matches!(q, Query::SetOp(SetOp::Union, _, _)));
        assert_eq!(into.as_deref(), Some("merged"));

        // Plain parse() rejects the trailing form (strict query syntax).
        assert!(parse("SELECT objid FROM photoobj INTO s").is_err());
        // A bare INTO with no name is an error in both positions.
        assert!(parse_statement("SELECT objid FROM photoobj INTO").is_err());
        assert!(parse("SELECT objid INTO FROM photoobj").is_err());
    }

    #[test]
    fn stored_set_sources_parse_as_tables() {
        let q = parse("SELECT objid, r FROM MySet WHERE r < 20").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.table.named(), Some("myset"));
        assert!(s.into.is_none());
    }

    #[test]
    fn match_source_and_qualified_attrs() {
        let q = parse(
            "SELECT a.objid, b.R, sep_arcsec FROM MATCH(Bright, photoobj, 3.5) \
             WHERE a.objid < b.objid",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(
            s.table,
            TableSource::Match {
                a: "bright".into(),
                b: "photoobj".into(),
                radius_arcsec: 3.5
            }
        );
        match &s.items[0] {
            SelectItem::Expr {
                expr: Expr::Attr(a),
                name,
            } => {
                assert_eq!(a, "a.objid");
                assert_eq!(
                    name, "a.objid",
                    "qualified default names keep the qualifier"
                );
            }
            other => panic!("{other:?}"),
        }
        match &s.items[1] {
            SelectItem::Expr {
                expr: Expr::Attr(a),
                ..
            } => assert_eq!(a, "b.r", "qualified attrs lower-case"),
            other => panic!("{other:?}"),
        }
        // Bad shapes are parse errors.
        assert!(parse("SELECT a.objid FROM MATCH(x, y, 0)").is_err());
        assert!(parse("SELECT a.objid FROM MATCH(x, y, -2)").is_err());
        assert!(parse("SELECT a.objid FROM MATCH(x, y)").is_err());
        assert!(parse("SELECT a.objid FROM MATCH(x, 3)").is_err());
        assert!(parse("SELECT a. FROM MATCH(x, y, 1)").is_err());
        // `match` without parens is still an ordinary table name.
        let q = parse("SELECT objid FROM match").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.table.named(), Some("match"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let a = parse("select ra from photoobj where r < 20 order by ra limit 3").unwrap();
        let b = parse("SELECT ra FROM photoobj WHERE r < 20 ORDER BY ra LIMIT 3").unwrap();
        assert_eq!(a, b);
    }
}
