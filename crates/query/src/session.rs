//! Session workspaces: per-user namespaces of named server-side result
//! sets, and the compositional query surface over them.
//!
//! The paper's science scenarios are multi-step — the query agent
//! selects a candidate set, then the astronomer refines, cross-matches
//! and aggregates *that set* rather than re-scanning the sky. A
//! [`Session`] is where those intermediate results live:
//!
//! * `SELECT objid, ... INTO bright FROM photoobj WHERE r < 20` runs the
//!   query under admission control and **materializes** the matching
//!   objects as a named set in the session (columnar
//!   [`sdss_storage::ResultSet`] chunks), instead of streaming rows
//!   back.
//! * `SELECT gr, r FROM bright WHERE gr > 0.6` then scans the stored set
//!   through the *same* compiled-predicate + morsel-parallel worker path
//!   as a tag scan (one morsel per chunk) — stored sets are first-class
//!   query sources, not a row-at-a-time side door.
//!
//! A stored set is a **bag of tagged objects**: whatever the creating
//! query selected, the set materializes the full 64-byte tag record per
//! distinct `objid` the query yielded (which is why `INTO` requires
//! `objid` in the select list). Follow-up queries can therefore project
//! any tag attribute, not just the originally selected columns, and the
//! `INTO`-then-`FROM` round trip composes: `FROM s WHERE P2` over a set
//! built with `WHERE P1` equals the direct query `WHERE P1 AND P2`.
//!
//! Sessions are isolated namespaces (no cross-session visibility),
//! quota-bounded ([`SessionConfig`]: set count + resident bytes, checked
//! live while a materialization streams), and observable
//! ([`SessionStats`] accumulates per-query counters; the archive lists
//! live sessions via `Archive::sessions`). Prepared statements pin a
//! snapshot of the sets they reference, so dropping or replacing a name
//! never invalidates an in-flight or re-executable statement — the
//! `Arc`'d chunks stay alive until the last reader is gone.

use crate::archive::{Archive, Prepared, QueryOutput, QueryStats};
use crate::plan::pointer_column;
use crate::QueryError;
use sdss_catalog::TagObject;
use sdss_storage::{ResultSet, ResultSetBuilder, RESULT_SET_CHUNK_ROWS};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Quotas and materialization parameters for one session workspace.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Named sets the session may hold at once (`INTO` over an existing
    /// name replaces it and does not count twice).
    pub max_sets: usize,
    /// Total resident bytes across the session's sets. Enforced *live*
    /// while an `INTO` streams: the materialization aborts cleanly (and
    /// cancels its execution) the moment the builder crosses the budget.
    pub max_bytes: u64,
    /// Rows per materialized chunk — the morsel granularity of scans
    /// over the set. Smaller chunks give small sets more parallelism;
    /// larger chunks amortize per-morsel overhead on big ones.
    pub chunk_rows: usize,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            max_sets: 16,
            max_bytes: 256 << 20,
            chunk_rows: RESULT_SET_CHUNK_ROWS,
        }
    }
}

/// Accumulated counters for one session (monotonic except the resident
/// set figures, which track the live workspace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Executions that ran to completion under this session (streamed
    /// reads and `INTO` materializations both count on finish).
    pub queries: u64,
    /// Sum of per-query `QueryStats::rows` (rows delivered to consumers).
    pub rows_delivered: u64,
    /// Sum of per-query [`QueryStats::rows_emitted`] — rows producers
    /// pushed into the channel fabric, counted at the batch edge.
    pub rows_emitted: u64,
    /// Sum of per-query scan bytes.
    pub bytes_scanned: u64,
    /// `INTO` materializations that committed a set.
    pub sets_created: u64,
    /// Explicit `drop_set` calls that removed a set.
    pub sets_dropped: u64,
    /// Rows materialized into sets, across all `INTO` runs.
    pub rows_materialized: u64,
}

/// One stored set's listing entry (name, row/byte counts, chunk count —
/// the chunk count is the morsel-parallelism a scan over it can reach).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredSetInfo {
    pub name: String,
    pub rows: usize,
    pub bytes: usize,
    pub chunks: usize,
}

impl StoredSetInfo {
    fn of(name: impl Into<String>, set: &ResultSet) -> StoredSetInfo {
        StoredSetInfo {
            name: name.into(),
            rows: set.rows(),
            bytes: set.bytes(),
            chunks: set.n_chunks(),
        }
    }
}

/// Archive-level listing entry for one live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    pub id: u64,
    /// Named sets currently resident.
    pub sets: usize,
    /// Rows across the resident sets.
    pub rows: usize,
    /// Bytes across the resident sets.
    pub bytes: u64,
    /// Completed executions so far.
    pub queries: u64,
}

/// The state every clone of one [`Session`] shares.
#[derive(Debug)]
pub(crate) struct SessionShared {
    id: u64,
    config: SessionConfig,
    sets: Mutex<HashMap<String, Arc<ResultSet>>>,
    stats: Mutex<SessionStats>,
}

impl SessionShared {
    /// Fold one finished execution's stats into the session counters
    /// (called by `ResultStream::finish`).
    pub(crate) fn note_query(&self, stats: &QueryStats) {
        let mut s = self.stats.lock().unwrap();
        s.queries += 1;
        s.rows_delivered += stats.rows as u64;
        s.rows_emitted += stats.rows_emitted;
        s.bytes_scanned += stats.scan.bytes_scanned;
    }

    pub(crate) fn info(&self) -> SessionInfo {
        let sets = self.sets.lock().unwrap();
        SessionInfo {
            id: self.id,
            sets: sets.len(),
            rows: sets.values().map(|s| s.rows()).sum(),
            bytes: sets.values().map(|s| s.bytes() as u64).sum(),
            queries: self.stats.lock().unwrap().queries,
        }
    }

    /// Resident bytes held by every set *except* `name` (the
    /// materialization budget for a set about to land under `name`).
    fn bytes_excluding(&self, name: &str) -> u64 {
        self.sets
            .lock()
            .unwrap()
            .iter()
            .filter(|(n, _)| n.as_str() != name)
            .map(|(_, s)| s.bytes() as u64)
            .sum()
    }

    /// The set-count quota rule, evaluated against a locked map
    /// (replacing an existing name never counts as a new slot). Shared
    /// by the pre-flight check and the under-lock commit.
    fn check_slot_locked(
        config: &SessionConfig,
        sets: &HashMap<String, Arc<ResultSet>>,
        name: &str,
    ) -> Result<(), QueryError> {
        if !sets.contains_key(name) && sets.len() >= config.max_sets {
            return Err(QueryError::Exec(format!(
                "session set quota exceeded: {} sets resident (max {})",
                sets.len(),
                config.max_sets
            )));
        }
        Ok(())
    }

    /// Early set-count check so an over-quota `INTO` fails before it
    /// scans anything (re-checked under the lock at commit).
    fn check_set_slot(&self, name: &str) -> Result<(), QueryError> {
        Self::check_slot_locked(&self.config, &self.sets.lock().unwrap(), name)
    }

    /// Commit a materialized set under `name`, re-checking both quotas
    /// under the lock (concurrent clones of the session may have raced).
    fn insert_set(&self, name: &str, set: Arc<ResultSet>) -> Result<StoredSetInfo, QueryError> {
        let mut sets = self.sets.lock().unwrap();
        Self::check_slot_locked(&self.config, &sets, name)?;
        let others: u64 = sets
            .iter()
            .filter(|(n, _)| n.as_str() != name)
            .map(|(_, s)| s.bytes() as u64)
            .sum();
        if others + set.bytes() as u64 > self.config.max_bytes {
            return Err(QueryError::Exec(format!(
                "session byte quota exceeded: set `{name}` needs {} bytes, \
                 {} of {} available",
                set.bytes(),
                self.config.max_bytes.saturating_sub(others),
                self.config.max_bytes
            )));
        }
        let info = StoredSetInfo::of(name, &set);
        sets.insert(name.to_string(), set);
        let mut stats = self.stats.lock().unwrap();
        stats.sets_created += 1;
        stats.rows_materialized += info.rows as u64;
        Ok(info)
    }
}

/// A per-user session workspace handle. Clone it to share one workspace
/// across threads; every clone sees the same sets, quotas and stats.
/// Opened via `Archive::session()` / `Archive::session_with`.
#[derive(Debug, Clone)]
pub struct Session {
    archive: Archive,
    shared: Arc<SessionShared>,
}

impl Session {
    pub(crate) fn open(archive: Archive, config: SessionConfig) -> Session {
        let shared = Arc::new(SessionShared {
            id: archive.alloc_session_id(),
            config: SessionConfig {
                max_sets: config.max_sets.max(1),
                max_bytes: config.max_bytes,
                chunk_rows: config.chunk_rows.max(1),
            },
            sets: Mutex::new(HashMap::new()),
            stats: Mutex::new(SessionStats::default()),
        });
        archive.register_session(&shared);
        Session { archive, shared }
    }

    /// This session's archive-unique id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The archive this workspace lives in.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The quotas this session was opened with.
    pub fn config(&self) -> SessionConfig {
        self.shared.config
    }

    /// Prepare a statement against this workspace: `FROM <set>` names
    /// resolve to a **pinned snapshot** of the current sets (later drops
    /// or replacements don't affect this statement's executions), and
    /// `INTO <name>` statements materialize into this session when run.
    pub fn prepare(&self, sql: &str) -> Result<Prepared, QueryError> {
        let sets = Arc::new(self.shared.sets.lock().unwrap().clone());
        self.archive
            .prepare_in(sql, sets, Some(self.shared.clone()))
    }

    /// Prepare + execute. Plain queries return their rows; `INTO`
    /// statements materialize the named set server-side and return an
    /// empty-rows [`QueryOutput`] carrying the execution stats (inspect
    /// the landed set via [`Session::set_info`]).
    pub fn run(&self, sql: &str) -> Result<QueryOutput, QueryError> {
        self.prepare(sql)?.run()
    }

    /// One-shot convenience mirroring `Archive::run_with_stats`.
    pub fn run_with_stats(&self, sql: &str) -> Result<(QueryOutput, QueryStats), QueryError> {
        let output = self.run(sql)?;
        let stats = output.stats.clone();
        Ok((output, stats))
    }

    /// List the resident sets (name order) with row/byte/chunk counts.
    pub fn sets(&self) -> Vec<StoredSetInfo> {
        let mut out: Vec<StoredSetInfo> = self
            .shared
            .sets
            .lock()
            .unwrap()
            .iter()
            .map(|(name, set)| StoredSetInfo::of(name.clone(), set))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Listing entry for one set, if resident. Names are
    /// case-insensitive, matching the query language.
    pub fn set_info(&self, name: &str) -> Option<StoredSetInfo> {
        let name = name.to_ascii_lowercase();
        let sets = self.shared.sets.lock().unwrap();
        sets.get(&name).map(|set| StoredSetInfo::of(name, set))
    }

    /// Drop a stored set, freeing its quota immediately. Statements
    /// prepared before the drop keep their pinned snapshot. Errors if no
    /// such set is resident.
    pub fn drop_set(&self, name: &str) -> Result<StoredSetInfo, QueryError> {
        let name = name.to_ascii_lowercase();
        let removed = self.shared.sets.lock().unwrap().remove(&name);
        match removed {
            Some(set) => {
                self.shared.stats.lock().unwrap().sets_dropped += 1;
                Ok(StoredSetInfo::of(name, &set))
            }
            None => Err(QueryError::Unknown(format!("stored set {name}"))),
        }
    }

    /// Accumulated session counters.
    pub fn stats(&self) -> SessionStats {
        *self.shared.stats.lock().unwrap()
    }
}

/// The `INTO` writer sink. Two routes materialize a set:
///
/// * **Direct columnar fast path** — a bare tag- or set-routed scan with
///   a compilable predicate projects whole tag records straight out of
///   the scan's column lanes into the [`ResultSetBuilder`]
///   ([`Prepared::run_into_columnar`]): no per-objid full-store fetch,
///   no dedup hash (those sources hold each object once), no channel
///   fabric. This is the order-of-magnitude materialization win.
/// * **Stream-and-fetch slow path** — every other shape (full-route
///   scans, set operations, sorted/limited streams, MATCH pair sets)
///   drives the admission-held stream and fetches one tag record per
///   distinct object pointer through the full store's id index, so all
///   query shapes materialize uniformly.
///
/// Both routes quota-check live while folding; a violation aborts
/// cleanly (dropping the slow path's stream cancels the execution) and
/// returns the admission slots.
pub(crate) fn run_into(prepared: &Prepared, params: &[f64]) -> Result<QueryOutput, QueryError> {
    let name = prepared
        .into_set()
        .expect("run_into is only called for INTO statements")
        .to_string();
    let ws = prepared
        .workspace()
        .cloned()
        .expect("prepare rejected INTO without a session workspace");
    ws.check_set_slot(&name)?;

    let columns = prepared.columns().to_vec();
    let budget = ws
        .config
        .max_bytes
        .saturating_sub(ws.bytes_excluding(&name));

    if let Some((set, stats)) =
        prepared.run_into_columnar(params, &name, ws.config.chunk_rows, budget)?
    {
        ws.note_query(&stats);
        ws.insert_set(&name, Arc::new(set))?;
        return Ok(QueryOutput {
            columns,
            rows: Vec::new(),
            stats,
        });
    }

    let objid_idx = pointer_column(&columns)
        .expect("the planner requires an object pointer in INTO select lists");
    let store = prepared.archive().store().clone();

    let mut stream = prepared.stream_raw(params)?;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut builder = ResultSetBuilder::new(ws.config.chunk_rows);
    while let Some(batch) = stream.next_batch() {
        for r in 0..batch.len() {
            // Set semantics: one tag record per distinct object pointer.
            let Some(id) = batch.id_at(objid_idx, r) else {
                continue;
            };
            if !seen.insert(id) {
                continue;
            }
            let obj = store.get(id).map_err(|e| {
                QueryError::Exec(format!("INTO {name}: object {id:#x} fetch failed: {e}"))
            })?;
            builder.push(&TagObject::from_photo(&obj), obj.htm20);
            if builder.bytes() as u64 > budget {
                // Dropping the stream cancels the producing execution.
                return Err(QueryError::Exec(format!(
                    "session byte quota exceeded materializing `{name}`: \
                     {} bytes available, {} rows already folded",
                    budget,
                    builder.rows()
                )));
            }
        }
    }
    if let Some(msg) = stream.failure() {
        return Err(QueryError::Exec(msg));
    }
    let stats = stream.finish(); // reports into SessionStats
    ws.insert_set(&name, Arc::new(builder.finish()))?;
    Ok(QueryOutput {
        columns,
        rows: Vec::new(),
        stats,
    })
}
