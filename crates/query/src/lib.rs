//! # Query engine: parser, Query Execution Trees, streaming execution
//!
//! The paper's prototype query system:
//!
//! > "Each query received from the User Interface is parsed into a Query
//! > Execution Tree (QET) that is then executed by the Query Engine. Each
//! > node of the QET is either a query or a set-operation node, and
//! > returns a bag of object-pointers upon execution. The multi-threaded
//! > Query Engine executes in parallel at all the nodes at a given level
//! > of the QET. Results from child nodes are passed up the tree as soon
//! > as they are generated. [...] this ASAP data push strategy ensures
//! > that even in the case of a query that takes a very long time to
//! > complete, the user starts seeing results almost immediately."
//!
//! * [`ast`] / [`lexer`] / [`parser`] — a small SQL-ish surface language
//!   with spatial predicates (`CIRCLE`, `RECT`, `BAND`) and set operators
//!   (`UNION` / `INTERSECT` / `EXCEPT`)
//! * [`plan`] — the QET itself, built from the AST; spatial predicates
//!   are compiled to HTM covers
//! * [`compile`] — predicate/projection compilation to register bytecode
//!   evaluated over tag column batches (the E5 hot path)
//! * [`exec`] — multithreaded ASAP-push execution over crossbeam
//!   channels; tag scans run columnar batches, everything else rows
//! * [`engine`] — the façade: parse → plan → route (tag store vs full
//!   store) → execute
//! * [`ops`] — the "special operators related to angular distances and
//!   complex similarity tests" (the row-at-a-time fallback interpreter)

pub mod ast;
pub mod compile;
pub mod engine;
pub mod exec;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod plan;

pub use ast::{BinOp, Expr, Query, SelectStmt, SetOp, Value};
pub use compile::{compile_predicate, compile_projection, BatchScratch, CompiledPredicate, CompiledProjection};
pub use engine::{Engine, QueryOutput, QueryStats, RouteChoice};
pub use exec::{ExecHandle, ExecMode, Row};
pub use plan::{PlanNode, QueryPlan};

/// Errors produced by the query crate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with position.
    Lex { pos: usize, message: String },
    /// Parse error with position.
    Parse { pos: usize, message: String },
    /// Unknown attribute / table name.
    Unknown(String),
    /// Type mismatch in an expression.
    Type(String),
    /// Region construction failed.
    Region(String),
    /// Execution-time failure.
    Exec(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            QueryError::Unknown(n) => write!(f, "unknown name: {n}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Region(m) => write!(f, "region error: {m}"),
            QueryError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<sdss_htm::HtmError> for QueryError {
    fn from(e: sdss_htm::HtmError) -> Self {
        QueryError::Region(e.to_string())
    }
}

impl From<sdss_storage::StorageError> for QueryError {
    fn from(e: sdss_storage::StorageError) -> Self {
        QueryError::Exec(e.to_string())
    }
}
