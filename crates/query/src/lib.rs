//! # Query engine: parser, Query Execution Trees, a multi-user archive API
//!
//! The paper's prototype query system:
//!
//! > "Each query received from the User Interface is parsed into a Query
//! > Execution Tree (QET) that is then executed by the Query Engine. Each
//! > node of the QET is either a query or a set-operation node, and
//! > returns a bag of object-pointers upon execution. The multi-threaded
//! > Query Engine executes in parallel at all the nodes at a given level
//! > of the QET. Results from child nodes are passed up the tree as soon
//! > as they are generated. [...] this ASAP data push strategy ensures
//! > that even in the case of a query that takes a very long time to
//! > complete, the user starts seeing results almost immediately."
//!
//! The public surface is the **archive server API** in [`archive`] plus
//! the **session workspaces** in [`session`]:
//!
//! * [`Archive`] — an owned, cloneable, `Send + Sync` handle over
//!   `Arc`'d stores; any number of threads submit queries concurrently.
//! * [`Archive::session`] → [`Session`] — a per-user workspace of named
//!   **server-side result sets**. `SELECT objid, ... INTO s FROM ...`
//!   materializes the matching objects columnar under the session's
//!   quotas; `FROM s` then treats the stored set as a first-class query
//!   source — refine, aggregate, set-operate, cross-compose — scanning
//!   it through the *same* compiled-predicate + morsel-parallel worker
//!   path as a tag scan (one morsel per materialized chunk). Sessions
//!   are isolated namespaces with byte/set quotas and accumulated
//!   [`SessionStats`]. Tag- and set-routed `INTO` statements take the
//!   **direct columnar fast path**: whole tag records project straight
//!   out of the scan's column lanes into the set builder — no per-objid
//!   full-store fetch — an order of magnitude faster materialization.
//! * `MATCH(a, b, radius_arcsec)` — stored sets are **joinable**: the
//!   cross-match source yields every ordered pair within the radius
//!   (set-vs-set or set-vs-archive), exposing `a.<attr>` / `b.<attr>`
//!   and the `sep_arcsec` pseudo-column. The join runs morsel-parallel
//!   over the probe side against a zone-partitioned (HTM-bucketed)
//!   build index — the paper's "find objects near other objects" /
//!   gravitational-lens queries as a first-class query source, and
//!   `MATCH ... INTO pairs` materializes the result under quotas.
//! * [`Archive::prepare`] / [`Session::prepare`] → [`Prepared`] —
//!   parse/plan split from execution: inspect the plan, read the
//!   plan-time [`CostEstimate`] (rows / bytes / containers — exact for
//!   stored sets, cover-derived for the base stores), then execute
//!   repeatedly with `$1`-style numeric parameters re-bound per run — no
//!   re-parse, no re-plan. Session prepares pin a snapshot of the sets
//!   they reference. [`Prepared::explain`] leads with the estimate line
//!   the admission queue orders on.
//! * [`Prepared::stream`] → [`ResultStream`] — pull-based
//!   [`ResultBatch`]es; the compiled scan path ships struct-of-arrays
//!   [`ColumnarBatch`]es through the whole channel fabric and rows
//!   materialize only at the edge ([`ResultBatch::rows`]).
//! * [`QueryTicket`] — per-execution cancellation + live progress;
//!   [`QueryStats`] closes the loop with timing, routing, scan-byte,
//!   worker and cover-cache counters (including `rows_emitted`, the
//!   batch-edge producer count). [`Archive::run_with_stats`] pairs the
//!   rows and stats for one-shot callers.
//! * Admission control — a semaphore-bounded slot pool
//!   ([`AdmissionConfig`]) queues executions rather than oversubscribing,
//!   with a separate bound on *heavy* (over-estimate) queries — the
//!   behavior the paper's query agents gave the multi-user archive.
//!   `INTO` materializations hold their slots while the writer sink
//!   folds batches into the set.
//!
//! ```
//! use sdss_query::Archive;
//! # use sdss_catalog::SkyModel;
//! # use sdss_storage::{ObjectStore, StoreConfig, TagStore};
//! # use std::sync::Arc;
//! # let objs = SkyModel::small(7).generate().unwrap();
//! # let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
//! # store.insert_batch(&objs).unwrap();
//! # let tags = TagStore::from_store(&store);
//! let archive = Archive::new(store, Some(Arc::new(tags)));
//! let stmt = archive.prepare(
//!     "SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < $1",
//! )?;
//! assert!(stmt.estimate().est_bytes > 0);
//! let bright = stmt.run_with(&[20.0])?; // binds $1 — no re-parse/re-plan
//! let faint = stmt.run_with(&[22.0])?;
//! assert!(bright.rows.len() <= faint.rows.len());
//!
//! // The multi-step scenario: select a candidate set once, then
//! // compose over it without re-scanning the sky.
//! let session = archive.session();
//! session.run("SELECT objid INTO cand FROM photoobj WHERE r < 21")?;
//! let refined = session.run("SELECT objid, gr FROM cand WHERE gr > 0.6")?;
//! let stats = session.run("SELECT COUNT(*), AVG(r) FROM cand")?;
//! assert_eq!(stats.rows.len(), 1);
//! assert!(refined.rows.len() <= session.set_info("cand").unwrap().rows);
//!
//! // Cross-identification in the same session: gravitational-lens
//! // candidates are bright pairs within a few arcseconds — select the
//! // candidates once, then join the set against itself.
//! session.run("SELECT objid INTO bright FROM photoobj WHERE r < 20")?;
//! let pairs = session.run(
//!     "SELECT a.objid, b.objid, sep_arcsec FROM MATCH(bright, bright, 3) \
//!      WHERE a.objid < b.objid",
//! )?;
//! let n = session.run("SELECT COUNT(*) FROM MATCH(bright, bright, 3)")?;
//! // Ordered-pair semantics: COUNT sees both orderings of each pair.
//! assert_eq!(n.rows[0][0].as_num().unwrap() as usize, 2 * pairs.rows.len());
//! # Ok::<(), sdss_query::QueryError>(())
//! ```
//!
//! Module map:
//!
//! * [`ast`] / [`lexer`] / [`parser`] — a small SQL-ish surface language
//!   with spatial predicates (`CIRCLE`, `RECT`, `BAND`), set operators
//!   (`UNION` / `INTERSECT` / `EXCEPT`), `$N` parameters, `INTO` /
//!   stored-set `FROM` sources, and the `MATCH(a, b, radius)` join
//!   source with `a.`/`b.`-qualified projections
//! * [`plan`] — the QET itself, built from the AST; [`QuerySource`]
//!   routes each scan leaf (full store / tag partition / stored set /
//!   cross-match join); spatial predicates compile to HTM covers for the
//!   base stores and stay row-wise for sets and pairs; parameters bind
//!   per execution
//! * [`compile`] — predicate/projection compilation to register bytecode
//!   evaluated over column batches (the E5 hot path, shared by tag
//!   containers and stored-set chunks)
//! * [`exec`] — multithreaded ASAP-push execution over crossbeam
//!   channels; batches stay columnar through the fabric, and compiled
//!   scans run **morsel-parallel**: the touched-container (or set-chunk)
//!   list is a byte-balanced work queue drained by a pool of scan
//!   workers, with `COUNT`/`SUM`/`MIN`/`MAX` folding inside the scan loop
//! * [`archive`] — the server API: shared handle, prepared queries,
//!   batch streams, tickets, admission control (slots accounted in
//!   worker threads, cost-ordered queue), session registry
//! * [`session`] — session workspaces: stored-set lifecycle (`INTO`
//!   writer sink, listing, drop), quotas, per-session stats
//! * [`ops`] — the "special operators related to angular distances and
//!   complex similarity tests" (the row-at-a-time fallback interpreter)
//!
//! Migration: `Archive::prepare` / `run` / `stream` are **unchanged** —
//! sessions are purely additive. Code that never says `INTO` or queries
//! a stored set needs no edits.

pub mod archive;
pub mod ast;
pub mod compile;
pub mod exec;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod plan;
pub mod session;

pub use archive::{
    AdmissionConfig, AdmissionSnapshot, Archive, ArchiveConfig, CostEstimate, Prepared,
    QueryOutput, QueryStats, QueryTicket, ResultStream, RouteChoice,
};
pub use ast::{BinOp, Expr, Query, SelectStmt, SetOp, Value};
pub use compile::{
    compile_agg_inputs, compile_predicate, compile_projection, BatchScratch, CompiledAggInputs,
    CompiledPredicate, CompiledProjection,
};
pub use exec::{ColumnData, ColumnarBatch, ExecMode, ResultBatch, Row, ScanTotals, WorkerScan};
pub use plan::{plans_built, MatchInput, MatchSpec, PlanNode, QueryPlan, QuerySource};
pub use session::{Session, SessionConfig, SessionInfo, SessionStats, StoredSetInfo};

/// Errors produced by the query crate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with position.
    Lex { pos: usize, message: String },
    /// Parse error with position.
    Parse { pos: usize, message: String },
    /// Unknown attribute / table name.
    Unknown(String),
    /// Type mismatch in an expression.
    Type(String),
    /// Region construction failed.
    Region(String),
    /// Execution-time failure.
    Exec(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            QueryError::Unknown(n) => write!(f, "unknown name: {n}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Region(m) => write!(f, "region error: {m}"),
            QueryError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<sdss_htm::HtmError> for QueryError {
    fn from(e: sdss_htm::HtmError) -> Self {
        QueryError::Region(e.to_string())
    }
}

impl From<sdss_storage::StorageError> for QueryError {
    fn from(e: sdss_storage::StorageError) -> Self {
        QueryError::Exec(e.to_string())
    }
}
