//! # Query engine: parser, Query Execution Trees, a multi-user archive API
//!
//! The paper's prototype query system:
//!
//! > "Each query received from the User Interface is parsed into a Query
//! > Execution Tree (QET) that is then executed by the Query Engine. Each
//! > node of the QET is either a query or a set-operation node, and
//! > returns a bag of object-pointers upon execution. The multi-threaded
//! > Query Engine executes in parallel at all the nodes at a given level
//! > of the QET. Results from child nodes are passed up the tree as soon
//! > as they are generated. [...] this ASAP data push strategy ensures
//! > that even in the case of a query that takes a very long time to
//! > complete, the user starts seeing results almost immediately."
//!
//! The public surface is the **archive server API** in [`archive`]:
//!
//! * [`Archive`] — an owned, cloneable, `Send + Sync` handle over
//!   `Arc`'d stores; any number of threads submit queries concurrently.
//! * [`Archive::prepare`] → [`Prepared`] — parse/plan split from
//!   execution: inspect the plan, read the plan-time [`CostEstimate`]
//!   (rows / bytes / containers, from container statistics + the HTM
//!   cover), then execute repeatedly with `$1`-style numeric parameters
//!   re-bound per run — no re-parse, no re-plan.
//! * [`Prepared::stream`] → [`ResultStream`] — pull-based
//!   [`ResultBatch`]es; the compiled tag-scan path ships struct-of-arrays
//!   [`ColumnarBatch`]es through the whole channel fabric and rows
//!   materialize only at the edge ([`ResultBatch::rows`]).
//! * [`QueryTicket`] — per-execution cancellation + live progress;
//!   [`QueryStats`] closes the loop with timing, routing, scan-byte and
//!   cover-cache counters.
//! * Admission control — a semaphore-bounded slot pool
//!   ([`AdmissionConfig`]) queues executions rather than oversubscribing,
//!   with a separate bound on *heavy* (over-estimate) queries — the
//!   behavior the paper's query agents gave the multi-user archive.
//!
//! ```
//! use sdss_query::Archive;
//! # use sdss_catalog::SkyModel;
//! # use sdss_storage::{ObjectStore, StoreConfig, TagStore};
//! # use std::sync::Arc;
//! # let objs = SkyModel::small(7).generate().unwrap();
//! # let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
//! # store.insert_batch(&objs).unwrap();
//! # let tags = TagStore::from_store(&store);
//! let archive = Archive::new(store, Some(Arc::new(tags)));
//! let stmt = archive.prepare(
//!     "SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < $1",
//! )?;
//! assert!(stmt.estimate().est_bytes > 0);
//! let bright = stmt.run_with(&[20.0])?; // binds $1 — no re-parse/re-plan
//! let faint = stmt.run_with(&[22.0])?;
//! assert!(bright.rows.len() <= faint.rows.len());
//! # Ok::<(), sdss_query::QueryError>(())
//! ```
//!
//! Module map:
//!
//! * [`ast`] / [`lexer`] / [`parser`] — a small SQL-ish surface language
//!   with spatial predicates (`CIRCLE`, `RECT`, `BAND`), set operators
//!   (`UNION` / `INTERSECT` / `EXCEPT`), and `$N` parameters
//! * [`plan`] — the QET itself, built from the AST; spatial predicates
//!   are compiled to HTM covers; parameters bind per execution
//! * [`compile`] — predicate/projection compilation to register bytecode
//!   evaluated over tag column batches (the E5 hot path)
//! * [`exec`] — multithreaded ASAP-push execution over crossbeam
//!   channels; batches stay columnar through the fabric, and compiled
//!   tag scans run **morsel-parallel**: the touched-container list is a
//!   byte-balanced work queue drained by a pool of scan workers, with
//!   `COUNT`/`SUM`/`MIN`/`MAX` folding inside the scan loop
//! * [`archive`] — the server API: shared handle, prepared queries,
//!   batch streams, tickets, admission control (slots accounted in
//!   worker threads, cost-ordered queue)
//! * [`ops`] — the "special operators related to angular distances and
//!   complex similarity tests" (the row-at-a-time fallback interpreter)
//!
//! The deprecated `Engine` façade of the pre-archive API was removed in
//! this release; `Archive::new(store, tags)` + `archive.run(sql)` is the
//! drop-in replacement (see the PR 2 notes in ROADMAP.md for the full
//! migration map).

pub mod archive;
pub mod ast;
pub mod compile;
pub mod exec;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod plan;

pub use archive::{
    AdmissionConfig, AdmissionSnapshot, Archive, ArchiveConfig, CostEstimate, Prepared,
    QueryOutput, QueryStats, QueryTicket, ResultStream, RouteChoice,
};
pub use ast::{BinOp, Expr, Query, SelectStmt, SetOp, Value};
pub use compile::{
    compile_agg_inputs, compile_predicate, compile_projection, BatchScratch, CompiledAggInputs,
    CompiledPredicate, CompiledProjection,
};
pub use exec::{
    ColumnData, ColumnarBatch, ExecMode, ResultBatch, Row, ScanTotals, WorkerScan,
};
pub use plan::{plans_built, PlanNode, QueryPlan};

/// Errors produced by the query crate.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with position.
    Lex { pos: usize, message: String },
    /// Parse error with position.
    Parse { pos: usize, message: String },
    /// Unknown attribute / table name.
    Unknown(String),
    /// Type mismatch in an expression.
    Type(String),
    /// Region construction failed.
    Region(String),
    /// Execution-time failure.
    Exec(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            QueryError::Unknown(n) => write!(f, "unknown name: {n}"),
            QueryError::Type(m) => write!(f, "type error: {m}"),
            QueryError::Region(m) => write!(f, "region error: {m}"),
            QueryError::Exec(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<sdss_htm::HtmError> for QueryError {
    fn from(e: sdss_htm::HtmError) -> Self {
        QueryError::Region(e.to_string())
    }
}

impl From<sdss_storage::StorageError> for QueryError {
    fn from(e: sdss_storage::StorageError) -> Self {
        QueryError::Exec(e.to_string())
    }
}
