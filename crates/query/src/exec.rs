//! Multithreaded QET execution with ASAP push streaming of *batches*.
//!
//! Every plan node runs on its own thread; results flow upward through
//! bounded crossbeam channels as [`ResultBatch`]es. Scan/Limit nodes
//! stream; Sort/Aggregate/Set nodes are the paper's blocking nodes ("at
//! least one of the child nodes must be complete before results can be
//! sent further up the tree"). The channel fabric gives the ASAP
//! property: the first matching object reaches the consumer while scans
//! are still running.
//!
//! Tag scans run **columnar**: the scan leaf pulls
//! [`sdss_storage::ColumnBatch`]es from the tag store's struct-of-arrays
//! chunks, evaluates the compiled predicate ([`crate::compile`]) over
//! each batch into a selection bitmap, and ships the projected columns
//! onward as a [`ColumnarBatch`] — typed column vectors, **not**
//! `Vec<Row>`. Rows materialize only at the edge, when a consumer calls
//! [`ResultBatch::rows`]; row-at-a-time interpretation remains as the
//! fallback for whatever the compiler can't express.
//!
//! Execution is owned, not scoped: stores travel as `Arc`s and node
//! threads are detached, so a [`BatchHandle`] can outlive the call that
//! launched it (the pull-based `ResultStream` of [`crate::archive`]).
//! Producers observe consumer disappearance through channel send errors
//! and cooperative cancellation through the shared [`TicketCore`].

use crate::ast::{AggFn, Expr, Value};
use crate::compile::{
    compile_agg_inputs, compile_predicate, compile_projection, BatchScratch, CompiledAggInputs,
    CompiledPredicate, CompiledProjection,
};
use crate::ops::{eval, AttrSource};
use crate::plan::{AggSpec, MatchInput, MatchSpec, PlanNode, QuerySource, ScanSpec};
use crate::QueryError;
use crossbeam::channel::{bounded, Receiver, Sender};
use sdss_catalog::{ObjClass, TagObject};
use sdss_storage::{
    sample_hash_keep, ColumnBatch, MorselQueue, ObjectStore, RegionScan, ResultSet, SelectionMask,
    TagScanPlan, TagStore, ZoneIndex,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One output row.
pub type Row = Vec<Value>;

/// Rows travel in batches to amortize channel overhead (row-path).
const BATCH: usize = 128;
/// Columnar scans coalesce projected output up to this many rows before
/// a send — selective predicates would otherwise push one tiny batch
/// per input chunk and pay a channel round-trip each time.
const COALESCE_ROWS: usize = 512;
/// Channel depth: enough to decouple producer/consumer without buffering
/// the whole result (that would break the ASAP property).
const CHANNEL_DEPTH: usize = 8;

/// Whether scans may use the compiled columnar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile tag scans to columnar bytecode when possible (default).
    #[default]
    Auto,
    /// Force the row-at-a-time interpreter everywhere (the benchmark
    /// baseline, and the equivalence oracle in tests).
    Interpreted,
}

// ---------------------------------------------------------------------
// Result batches
// ---------------------------------------------------------------------

/// One projected output column of a [`ColumnarBatch`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Numeric lane (`Value::Num` at the edge).
    Num(Vec<f64>),
    /// Exact object ids (`Value::Id` at the edge).
    Id(Vec<u64>),
    /// Raw class bytes; decoded to class-name strings only at the edge.
    Class(Vec<u8>),
}

impl ColumnData {
    fn truncate(&mut self, n: usize) {
        match self {
            ColumnData::Num(v) => v.truncate(n),
            ColumnData::Id(v) => v.truncate(n),
            ColumnData::Class(v) => v.truncate(n),
        }
    }

    /// The value of row `i`, materialized.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnData::Num(v) => Value::Num(v[i]),
            ColumnData::Id(v) => Value::Id(v[i]),
            ColumnData::Class(v) => Value::Str(
                ObjClass::from_u8(v[i])
                    .expect("valid stored class")
                    .as_str()
                    .to_string(),
            ),
        }
    }

    /// Numeric view of row `i` (same semantics as [`Value::as_num`]).
    pub fn num_at(&self, i: usize) -> Option<f64> {
        match self {
            ColumnData::Num(v) => Some(v[i]),
            ColumnData::Id(v) => Some(v[i] as f64),
            ColumnData::Class(_) => None,
        }
    }

    /// Exact id view of row `i` (same semantics as [`Value::as_id`]).
    pub fn id_at(&self, i: usize) -> Option<u64> {
        match self {
            ColumnData::Id(v) => Some(v[i]),
            ColumnData::Num(v) => {
                let x = v[i];
                (x.fract() == 0.0 && (0.0..9.0e15).contains(&x)).then_some(x as u64)
            }
            ColumnData::Class(_) => None,
        }
    }
}

/// A batch of projected results in struct-of-arrays form — what the
/// columnar scan path ships through the channel fabric instead of
/// materialized rows.
#[derive(Debug, Clone, Default)]
pub struct ColumnarBatch {
    columns: Vec<ColumnData>,
    len: usize,
}

impl ColumnarBatch {
    /// Build from typed columns (all must share `len`).
    pub fn new(columns: Vec<ColumnData>, len: usize) -> ColumnarBatch {
        ColumnarBatch { columns, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    pub fn truncate(&mut self, n: usize) {
        if n < self.len {
            for c in &mut self.columns {
                c.truncate(n);
            }
            self.len = n;
        }
    }

    /// Append another batch of the same projection (column kinds must
    /// line up — they do, coming from one compiled projection).
    pub fn append(&mut self, other: ColumnarBatch) {
        debug_assert_eq!(self.columns.len(), other.columns.len());
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            match (dst, src) {
                (ColumnData::Num(d), ColumnData::Num(s)) => d.extend(s),
                (ColumnData::Id(d), ColumnData::Id(s)) => d.extend(s),
                (ColumnData::Class(d), ColumnData::Class(s)) => d.extend(s),
                _ => unreachable!("one projection produces one column layout"),
            }
        }
        self.len += other.len;
    }

    /// Materialize every row — the edge adapter. Column-major fill: one
    /// dispatch per column, not per cell.
    pub fn rows(&self) -> Vec<Row> {
        let mut rows: Vec<Row> = (0..self.len)
            .map(|_| Vec::with_capacity(self.columns.len()))
            .collect();
        self.append_columns(&mut rows);
        rows
    }

    fn append_columns(&self, rows: &mut [Row]) {
        for col in &self.columns {
            match col {
                ColumnData::Num(v) => {
                    for (row, &x) in rows.iter_mut().zip(v) {
                        row.push(Value::Num(x));
                    }
                }
                ColumnData::Id(v) => {
                    for (row, &x) in rows.iter_mut().zip(v) {
                        row.push(Value::Id(x));
                    }
                }
                ColumnData::Class(v) => {
                    for (row, &b) in rows.iter_mut().zip(v) {
                        row.push(Value::Str(
                            ObjClass::from_u8(b)
                                .expect("valid stored class")
                                .as_str()
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}

/// What travels through the channel fabric: columnar batches from the
/// compiled scan path, row batches from everything else.
#[derive(Debug, Clone)]
pub enum ResultBatch {
    Columnar(ColumnarBatch),
    Rows(Vec<Row>),
}

impl ResultBatch {
    pub fn len(&self) -> usize {
        match self {
            ResultBatch::Columnar(b) => b.len(),
            ResultBatch::Rows(r) => r.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn truncate(&mut self, n: usize) {
        match self {
            ResultBatch::Columnar(b) => b.truncate(n),
            ResultBatch::Rows(r) => r.truncate(n),
        }
    }

    /// Is this batch still in columnar (non-materialized) form?
    pub fn is_columnar(&self) -> bool {
        matches!(self, ResultBatch::Columnar(_))
    }

    /// Materialize into rows — the edge adapter. Columnar batches decode
    /// here and nowhere earlier.
    pub fn rows(self) -> Vec<Row> {
        match self {
            ResultBatch::Columnar(b) => b.rows(),
            ResultBatch::Rows(r) => r,
        }
    }

    /// Materialize into an existing row buffer (no intermediate vector).
    pub fn append_rows(self, out: &mut Vec<Row>) {
        match self {
            ResultBatch::Columnar(b) => {
                let start = out.len();
                out.extend((0..b.len()).map(|_| Vec::with_capacity(b.columns.len())));
                b.append_columns(&mut out[start..]);
            }
            ResultBatch::Rows(r) => out.extend(r),
        }
    }

    /// Numeric view of `(col, row)` without materializing.
    pub fn num_at(&self, col: usize, row: usize) -> Option<f64> {
        match self {
            ResultBatch::Columnar(b) => b.columns[col].num_at(row),
            ResultBatch::Rows(r) => r[row][col].as_num(),
        }
    }

    /// Exact-id view of `(col, row)` without materializing.
    pub fn id_at(&self, col: usize, row: usize) -> Option<u64> {
        match self {
            ResultBatch::Columnar(b) => b.columns[col].id_at(row),
            ResultBatch::Rows(r) => r[row][col].as_id(),
        }
    }
}

// ---------------------------------------------------------------------
// Tickets: cancellation + live progress
// ---------------------------------------------------------------------

/// Shared per-execution state: the cancel token checked between batches
/// and live progress counters the scan leaves update as they go. Wrapped
/// by [`crate::archive::QueryTicket`] for the public API.
#[derive(Debug, Default)]
pub struct TicketCore {
    cancelled: AtomicBool,
    rows_scanned: AtomicU64,
    /// Rows pushed into the channel fabric by producers (scan workers
    /// and the fused aggregate's result row), counted at the batch edge.
    /// Per-worker safe: every worker bumps the same atomic on its own
    /// sends. Differs from the consumer-side row count under LIMIT or
    /// cancellation (producers may emit more than is delivered).
    rows_emitted: AtomicU64,
    batches_emitted: AtomicU64,
    bytes_scanned: AtomicU64,
    containers_full: AtomicU64,
    containers_partial: AtomicU64,
    exact_tests: AtomicU64,
    cover_hits: AtomicU64,
    cover_misses: AtomicU64,
    /// One entry per scan worker that ran (parallel workers, the serial
    /// columnar driver, and the row fallback each register here).
    worker_scans: Mutex<Vec<WorkerScan>>,
    /// First node-thread panic, surfaced instead of silently truncating
    /// the result (detached threads have no join to propagate through).
    failure: std::sync::Mutex<Option<String>>,
}

/// What one scan worker did — the per-worker accounting behind
/// `QueryStats` (`workers_used`, per-worker bytes, morsel counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerScan {
    /// Bytes this worker read.
    pub bytes_scanned: u64,
    /// Container morsels this worker claimed from the queue (0 on the
    /// row-interpreted fallback, which has no morsel queue).
    pub morsels: u64,
    /// Rows that survived selection in this worker.
    pub rows_selected: u64,
}

/// A snapshot of the scan-side counters (the totals behind
/// [`crate::archive::QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanTotals {
    /// Rows that survived predicates at the scan leaves.
    pub rows_scanned: u64,
    /// Batches the scan leaves pushed into the fabric.
    pub batches_emitted: u64,
    pub bytes_scanned: u64,
    pub containers_full: u64,
    pub containers_partial: u64,
    pub objects_exact_tested: u64,
    pub cover_cache_hits: u64,
    pub cover_cache_misses: u64,
}

impl TicketCore {
    /// Request cooperative cancellation: scan leaves stop between
    /// batches; blocking nodes drain out through closed channels.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Live scan-side totals (valid mid-flight; final once the stream
    /// has drained).
    pub fn totals(&self) -> ScanTotals {
        ScanTotals {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            batches_emitted: self.batches_emitted.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            containers_full: self.containers_full.load(Ordering::Relaxed),
            containers_partial: self.containers_partial.load(Ordering::Relaxed),
            objects_exact_tested: self.exact_tests.load(Ordering::Relaxed),
            cover_cache_hits: self.cover_hits.load(Ordering::Relaxed),
            cover_cache_misses: self.cover_misses.load(Ordering::Relaxed),
        }
    }

    /// The first execution-thread failure, if any (checked by consumers
    /// once the stream drains — a closed channel alone looks identical
    /// to a clean finish).
    pub fn failure(&self) -> Option<String> {
        self.failure.lock().unwrap().clone()
    }

    fn record_failure(&self, msg: String) {
        let mut slot = self.failure.lock().unwrap();
        if slot.is_none() {
            *slot = Some(msg);
        }
    }

    fn note_batch(&self, rows: usize) {
        self.rows_scanned.fetch_add(rows as u64, Ordering::Relaxed);
        self.rows_emitted.fetch_add(rows as u64, Ordering::Relaxed);
        self.batches_emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Scan-survivor rows that never ship as batches (in-scan aggregate
    /// folding counts the rows it folded here).
    fn note_rows(&self, rows: u64) {
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
    }

    /// The fused aggregate's single result row entering the fabric.
    fn note_emitted(&self) {
        self.rows_emitted.fetch_add(1, Ordering::Relaxed);
        self.batches_emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Rows producers pushed into the fabric so far (batch-edge count).
    pub fn rows_emitted(&self) -> u64 {
        self.rows_emitted.load(Ordering::Relaxed)
    }

    /// Record the plan-time cover lookup of a morsel-driven scan (the
    /// per-morsel stats deliberately carry no cover counters).
    fn note_cover(&self, hit: bool) {
        if hit {
            self.cover_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cover_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_worker(&self, ws: WorkerScan) {
        self.worker_scans.lock().unwrap().push(ws);
    }

    /// Scan workers that ran so far (final once the stream drains).
    pub fn workers_used(&self) -> usize {
        self.worker_scans.lock().unwrap().len()
    }

    /// Per-worker scan accounting, in completion order.
    pub fn worker_scans(&self) -> Vec<WorkerScan> {
        self.worker_scans.lock().unwrap().clone()
    }

    /// Container morsels dispatched across all workers.
    pub fn morsels_dispatched(&self) -> u64 {
        self.worker_scans
            .lock()
            .unwrap()
            .iter()
            .map(|w| w.morsels)
            .sum()
    }

    fn absorb_scan(&self, s: &RegionScan) {
        self.bytes_scanned
            .fetch_add(s.bytes_scanned as u64, Ordering::Relaxed);
        self.containers_full
            .fetch_add(s.containers_full as u64, Ordering::Relaxed);
        self.containers_partial
            .fetch_add(s.containers_partial as u64, Ordering::Relaxed);
        self.exact_tests
            .fetch_add(s.objects_exact_tested as u64, Ordering::Relaxed);
        self.cover_hits
            .fetch_add(s.cover_cache_hits, Ordering::Relaxed);
        self.cover_misses
            .fetch_add(s.cover_cache_misses, Ordering::Relaxed);
    }

    fn absorb_sweep(&self, bytes: usize, containers: usize) {
        self.bytes_scanned
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.containers_full
            .fetch_add(containers as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// The execution environment and fabric
// ---------------------------------------------------------------------

/// Everything a query execution needs, owned: any number of concurrent
/// executions share the stores through `Arc`.
#[derive(Debug, Clone)]
pub struct ExecEnv {
    pub store: Arc<ObjectStore>,
    pub tags: Option<Arc<TagStore>>,
    /// Stored result sets pinned at prepare time (session workspaces):
    /// `QuerySource::Set` leaves resolve their snapshot here by name.
    pub sets: Arc<HashMap<String, Arc<ResultSet>>>,
    /// Cover level override for scans.
    pub cover_level: Option<u8>,
    pub mode: ExecMode,
    /// Scan workers each columnar scan leaf may use (≥ 1). The caller
    /// holds this many admission slots per leaf — see `dataflow::pool`'s
    /// module docs for the slot-accounting contract.
    pub workers: usize,
}

/// A handle to a running (sub)tree: the receiving end of its output.
pub struct BatchHandle {
    /// Output column names (shared, not re-cloned per node).
    pub columns: Arc<Vec<String>>,
    pub rx: Receiver<ResultBatch>,
}

/// Is this scan's source columnar-capable? Tag scans need the tag store
/// present; stored sets are columnar by construction (the workspace
/// materialized them into SoA chunks); the full store has no SoA image.
fn columnar_source(spec: &ScanSpec, tags_available: bool) -> bool {
    match &spec.source {
        QuerySource::Tag => tags_available,
        QuerySource::Set(_) => true,
        // MATCH joins run their own morsel-parallel pair path (the
        // probe side streams column batches, pairs evaluate row-wise).
        QuerySource::Full | QuerySource::Match(_) => false,
    }
}

/// Lower a scan for the columnar path: `Some` iff the mode allows it,
/// the source is columnar-capable (tag store or stored set), and the
/// predicate (when present) and projection both compile. The single
/// decision point — the stats flag (`plan_uses_columnar`) and the
/// executor both go through here, so the gate and the execution path
/// cannot drift.
fn compile_scan(
    spec: &ScanSpec,
    tags_available: bool,
    mode: ExecMode,
) -> Option<(
    Option<crate::compile::CompiledPredicate>,
    crate::compile::CompiledProjection,
)> {
    if mode != ExecMode::Auto || !columnar_source(spec, tags_available) {
        return None;
    }
    let pred = match &spec.predicate {
        None => None,
        Some(p) => Some(compile_predicate(p)?),
    };
    Some((pred, compile_projection(&spec.columns)?))
}

/// Would this scan run on the columnar compiled path?
pub fn scan_uses_columnar(spec: &ScanSpec, tags_available: bool, mode: ExecMode) -> bool {
    compile_scan(spec, tags_available, mode).is_some()
}

/// Do *all* scan leaves of the plan run columnar?
pub fn plan_uses_columnar(plan: &PlanNode, tags_available: bool, mode: ExecMode) -> bool {
    match plan {
        PlanNode::Scan(s) => scan_uses_columnar(s, tags_available, mode),
        PlanNode::Sort { child, .. }
        | PlanNode::Limit { child, .. }
        | PlanNode::Aggregate { child, .. } => plan_uses_columnar(child, tags_available, mode),
        PlanNode::Set { left, right, .. } => {
            plan_uses_columnar(left, tags_available, mode)
                && plan_uses_columnar(right, tags_available, mode)
        }
    }
}

/// Launch a plan on detached node threads and return the root's handle.
/// The caller pulls batches at its own pace; dropping the handle
/// cascades channel-disconnect shutdown through the tree, and
/// `ticket.cancel()` stops scans between batches.
pub fn launch(env: &ExecEnv, plan: PlanNode, ticket: &Arc<TicketCore>) -> BatchHandle {
    spawn_node(env, plan, ticket)
}

/// Spawn a detached node thread that records panics into the ticket —
/// detached threads have no scope join to propagate through, and a
/// silently dead producer would read as a clean (truncated) result.
fn spawn_guarded(ticket: Arc<TicketCore>, body: impl FnOnce() + Send + 'static) {
    std::thread::spawn(move || {
        if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".to_string());
            ticket.record_failure(format!("execution thread panicked: {msg}"));
        }
    });
}

fn spawn_node(env: &ExecEnv, node: PlanNode, ticket: &Arc<TicketCore>) -> BatchHandle {
    match node {
        PlanNode::Scan(spec) => spawn_scan(env, spec, ticket),
        PlanNode::Limit { child, n } => {
            let child_handle = spawn_node(env, *child, ticket);
            let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
            let columns = child_handle.columns.clone();
            spawn_guarded(ticket.clone(), move || {
                let mut remaining = n;
                for mut batch in child_handle.rx.iter() {
                    if remaining == 0 {
                        break; // dropping rx cancels the child
                    }
                    batch.truncate(remaining);
                    remaining -= batch.len();
                    if tx.send(batch).is_err() {
                        break;
                    }
                }
            });
            BatchHandle { columns, rx }
        }
        PlanNode::Sort { child, key, desc } => {
            let child_handle = spawn_node(env, *child, ticket);
            let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
            let columns = child_handle.columns.clone();
            let key_idx = columns.iter().position(|c| c == &key);
            spawn_guarded(ticket.clone(), move || {
                // Blocking node: drain the child completely first. Sort
                // needs random access, so this is where columnar batches
                // materialize.
                let mut rows: Vec<Row> = Vec::new();
                for batch in child_handle.rx.iter() {
                    batch.append_rows(&mut rows);
                }
                if let Some(idx) = key_idx {
                    rows.sort_by(|a, b| {
                        let ord = compare_values(&a[idx], &b[idx]);
                        if desc {
                            ord.reverse()
                        } else {
                            ord
                        }
                    });
                }
                for chunk in rows.chunks(BATCH) {
                    if tx.send(ResultBatch::Rows(chunk.to_vec())).is_err() {
                        break;
                    }
                }
            });
            BatchHandle { columns, rx }
        }
        PlanNode::Aggregate { child, aggs } => {
            // In-scan folding fast path: an aggregate directly over a
            // compilable tag scan folds inside the scan workers — no
            // `__agg_i` columns, no per-row channel traffic.
            let child = *child;
            if let PlanNode::Scan(spec) = child {
                // MATCH pair-counts fold in-scan too: probe workers
                // accumulate per-worker partials over the pairs they
                // emit, merged at the edge — COUNT over a cross-match
                // ships one row, never the pair stream.
                if let QuerySource::Match(m) = spec.source.clone() {
                    return spawn_match_agg_scan(env, spec, m, aggs, ticket);
                }
                return match compile_agg_scan(&spec, &aggs, env.tags.is_some(), env.mode) {
                    Some((pred, inputs)) => spawn_agg_scan(env, spec, aggs, pred, inputs, ticket),
                    None => spawn_aggregate_over(env, PlanNode::Scan(spec), aggs, ticket),
                };
            }
            spawn_aggregate_over(env, child, aggs, ticket)
        }
        PlanNode::Set { op, left, right } => {
            let lh = spawn_node(env, *left, ticket);
            let rh = spawn_node(env, *right, ticket);
            let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
            let columns = lh.columns.clone();
            let n_columns = columns.len();
            let objid_idx = columns
                .iter()
                .position(|c| c == "objid")
                .expect("planner enforced objid for set ops");
            spawn_guarded(ticket.clone(), move || {
                // Blocking on the right side: build the key set (ids
                // only — no row materialization).
                let mut right_ids: HashSet<u64> = HashSet::new();
                for batch in rh.rx.iter() {
                    for r in 0..batch.len() {
                        if let Some(id) = batch.id_at(objid_idx, r) {
                            right_ids.insert(id);
                        }
                    }
                }
                // Stream the left side against it.
                let mut seen: HashSet<u64> = HashSet::new();
                let mut out = Vec::with_capacity(BATCH);
                for batch in lh.rx.iter() {
                    for row in batch.rows() {
                        let Some(id) = row[objid_idx].as_id() else {
                            continue;
                        };
                        if seen.contains(&id) {
                            continue; // set semantics: dedupe left
                        }
                        let keep = match op {
                            crate::ast::SetOp::Union => true,
                            crate::ast::SetOp::Intersect => right_ids.contains(&id),
                            crate::ast::SetOp::Except => !right_ids.contains(&id),
                        };
                        if keep {
                            seen.insert(id);
                            out.push(row);
                            if out.len() >= BATCH
                                && tx
                                    .send(ResultBatch::Rows(std::mem::take(&mut out)))
                                    .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
                // Union also emits right-only rows.
                if op == crate::ast::SetOp::Union {
                    for &id in right_ids.iter() {
                        if !seen.contains(&id) {
                            // We only kept ids, not rows, for the right
                            // side; emit a minimal row with objid and NULLs
                            // — documented bag-of-pointers semantics.
                            let mut row: Row = vec![Value::Null; n_columns];
                            row[objid_idx] = Value::Id(id);
                            out.push(row);
                            if out.len() >= BATCH
                                && tx
                                    .send(ResultBatch::Rows(std::mem::take(&mut out)))
                                    .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
                if !out.is_empty() {
                    let _ = tx.send(ResultBatch::Rows(out));
                }
            });
            BatchHandle { columns, rx }
        }
    }
}

/// The channel-path Aggregate node: drain the child's batches (which
/// carry hidden `__agg_i` columns) and fold them into one row. The fused
/// in-scan path ([`spawn_agg_scan`]) replaces this whenever the child is
/// a compilable tag scan.
fn spawn_aggregate_over(
    env: &ExecEnv,
    child: PlanNode,
    aggs: Vec<AggSpec>,
    ticket: &Arc<TicketCore>,
) -> BatchHandle {
    let child_handle = spawn_node(env, child, ticket);
    let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
    let columns = Arc::new(aggs.iter().map(|a| a.name.clone()).collect::<Vec<_>>());
    // Resolve each aggregate's hidden `__agg_i` column up front
    // instead of re-formatting the name per row.
    let child_cols = child_handle.columns.clone();
    let arg_idx: Vec<Option<usize>> = aggs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            a.arg.as_ref().map(|_| {
                child_cols
                    .iter()
                    .position(|c| c == &format!("__agg_{i}"))
                    .expect("lowering appended the agg column")
            })
        })
        .collect();
    spawn_guarded(ticket.clone(), move || {
        let mut acc: Vec<AggAcc> = aggs.iter().map(|a| AggAcc::new(a.func)).collect();
        for batch in child_handle.rx.iter() {
            // Accumulate straight off the batch — columnar lanes
            // fold without materializing rows.
            for r in 0..batch.len() {
                for (i, idx) in arg_idx.iter().enumerate() {
                    let v = idx.and_then(|idx| batch.num_at(idx, r));
                    acc[i].update(v);
                }
            }
        }
        let row: Row = acc.into_iter().map(AggAcc::finish).collect();
        let _ = tx.send(ResultBatch::Rows(vec![row]));
    });
    BatchHandle { columns, rx }
}

/// Lower a scan: project columns (plus hidden aggregate argument columns,
/// handled by the planner caller) and stream matching batches. Tag scans
/// take the columnar compiled path when the predicate and projection
/// both lower to bytecode; everything else interprets row-at-a-time.
fn spawn_scan(env: &ExecEnv, spec: ScanSpec, ticket: &Arc<TicketCore>) -> BatchHandle {
    // MATCH joins have their own morsel-parallel pair path.
    if let QuerySource::Match(m) = spec.source.clone() {
        return spawn_match_scan(env, spec, m, ticket);
    }
    let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
    let columns: Arc<Vec<String>> = Arc::new(spec.columns.iter().map(|(n, _)| n.clone()).collect());
    let cover_level = env.cover_level;
    let ticket = ticket.clone();

    // --- columnar fast path -------------------------------------------
    // `compile_scan` is the same gate `plan_uses_columnar` reports
    // through `QueryStats.columnar`; the programs compile exactly once.
    // The scan is morsel-driven: the touched-container list becomes a
    // byte-balanced work queue and `env.workers` worker threads drain it
    // in parallel, each streaming into the same output channel (the
    // channel is the per-worker stream merge).
    if let Some((pred, proj)) = compile_scan(&spec, env.tags.is_some(), env.mode) {
        let tags = env.tags.clone();
        let sets = env.sets.clone();
        let workers = env.workers.max(1);
        spawn_guarded(ticket.clone(), move || {
            let Some(source) = ScanSource::resolve(tags, &sets, &spec, cover_level, &ticket) else {
                return;
            };
            if let Some(hit) = source.cover_cache_hit() {
                ticket.note_cover(hit);
            }
            let n_workers = workers.min(source.n_morsels()).max(1);
            let job = Arc::new(ColumnarScanJob {
                pred,
                proj,
                sample: spec.sample,
                queue: MorselQueue::build(&source.morsel_bytes(), n_workers),
                source,
                ticket: ticket.clone(),
                tx,
            });
            for w in 1..n_workers {
                let job = job.clone();
                spawn_guarded(ticket.clone(), move || job.run_worker(w));
            }
            // The coordinator doubles as worker 0; the channel closes
            // once the last worker drops its `job` clone.
            job.run_worker(0);
        });
        return BatchHandle { columns, rx };
    }

    // --- row-at-a-time fallback ---------------------------------------
    let store = env.store.clone();
    let tags = env.tags.clone();
    let sets = env.sets.clone();
    spawn_guarded(ticket.clone(), move || {
        let mut out: Vec<Row> = Vec::with_capacity(BATCH);
        let mut alive = true;
        let mut kept: u64 = 0;
        let mut worker_bytes: u64 = 0;

        // The row pipeline, generic over record type.
        let mut emit = |src: &dyn AttrSource, tx: &Sender<ResultBatch>| -> bool {
            if ticket.is_cancelled() {
                return false;
            }
            if let Some(f) = spec.sample {
                let id = src.attr("objid").and_then(|v| v.as_id()).unwrap_or(0);
                if !sample_hash_keep(id, f) {
                    return true;
                }
            }
            if let Some(pred) = &spec.predicate {
                match eval(pred, &SourceRef(src)) {
                    Ok(Value::Bool(true)) => {}
                    Ok(_) => return true,
                    Err(_) => return true, // row-level type errors drop the row
                }
            }
            let mut row: Row = Vec::with_capacity(spec.columns.len());
            for (_, expr) in &spec.columns {
                match eval(expr, &SourceRef(src)) {
                    Ok(v) => row.push(v),
                    Err(_) => row.push(Value::Null),
                }
            }
            out.push(row);
            kept += 1;
            if out.len() >= BATCH {
                ticket.note_batch(out.len());
                if tx
                    .send(ResultBatch::Rows(std::mem::take(&mut out)))
                    .is_err()
                {
                    return false;
                }
            }
            true
        };

        match (&spec.source, &tags) {
            // Stored sets interpret row-wise by rebuilding each chunk
            // row as a `TagObject` (sets are tag-shaped; the planner
            // kept any spatial factor in the predicate, so geometry
            // evaluates per row here).
            (QuerySource::Set(name), _) => match sets.get(name) {
                Some(set) => {
                    let mut bytes = 0usize;
                    let mut containers = 0usize;
                    'chunks: for chunk in set.chunks() {
                        bytes += chunk.bytes();
                        containers += 1;
                        for i in 0..chunk.len() {
                            if !emit(&chunk.row(i), &tx) {
                                alive = false;
                                break 'chunks;
                            }
                        }
                    }
                    worker_bytes = bytes as u64;
                    ticket.absorb_sweep(bytes, containers);
                }
                None => ticket.record_failure(format!(
                    "stored set `{name}` was not pinned at prepare time"
                )),
            },
            (QuerySource::Match(_), _) => {
                unreachable!("MATCH scans spawn their own join path")
            }
            (QuerySource::Tag, Some(tag_store)) => match &spec.domain {
                Some(domain) => {
                    if let Ok(stats) = tag_store.scan_region_until(domain, cover_level, |t| {
                        alive = emit(t, &tx);
                        alive
                    }) {
                        worker_bytes = stats.bytes_scanned as u64;
                        ticket.absorb_scan(&stats);
                    }
                }
                None => {
                    // Full tag scan (no spatial restriction); stops
                    // between records on cancel / consumer hang-up.
                    let (bytes, containers) = tag_store.scan_all_until(|t| {
                        alive = emit(t, &tx);
                        alive
                    });
                    worker_bytes = bytes as u64;
                    ticket.absorb_sweep(bytes, containers);
                }
            },
            _ => match &spec.domain {
                Some(domain) => {
                    if let Ok(stats) = store.scan_region_until(domain, cover_level, |o| {
                        alive = emit(o, &tx);
                        alive
                    }) {
                        worker_bytes = stats.bytes_scanned as u64;
                        ticket.absorb_scan(&stats);
                    }
                }
                None => {
                    let (bytes, containers) = store.scan_all_until(|o| {
                        alive = emit(o, &tx);
                        alive
                    });
                    worker_bytes = bytes as u64;
                    ticket.absorb_sweep(bytes, containers);
                }
            },
        }
        if alive && !out.is_empty() {
            ticket.note_batch(out.len());
            let _ = tx.send(ResultBatch::Rows(out));
        }
        // The interpreted scan is a single serial worker; register it so
        // `workers_used` is truthful on every path.
        ticket.note_worker(WorkerScan {
            bytes_scanned: worker_bytes,
            morsels: 0,
            rows_selected: kept,
        });
    });
    BatchHandle { columns, rx }
}

/// The morsel workers' shared per-batch row selection: the cover mask
/// ANDed with the compiled predicate (cover-rejected rows hinted away),
/// then the deterministic sample filter. One rule for the projection
/// and the aggregate paths — their equivalence is what the parallel
/// tests assert.
fn select_rows(
    pred: &Option<CompiledPredicate>,
    sample: Option<f64>,
    batch: &ColumnBatch<'_>,
    sel: &SelectionMask,
    scratch: &mut BatchScratch,
    keep_scratch: &mut Vec<usize>,
) -> SelectionMask {
    let mut keep = sel.clone();
    if let Some(pred) = pred {
        keep.and_with(pred.eval_hinted(batch, scratch, Some(sel)));
    }
    if let Some(f) = sample {
        keep_scratch.clear();
        keep_scratch.extend(
            keep.iter_set()
                .filter(|&i| !sample_hash_keep(batch.obj_id[i], f)),
        );
        for &i in keep_scratch.iter() {
            keep.clear(i);
        }
    }
    keep
}

/// Where a columnar scan's morsels come from — the substrate the worker
/// pool drains. Tag scans resolve an HTM cover into a [`TagScanPlan`]
/// (one morsel per touched container); stored sets expose their SoA
/// chunks directly (one morsel per chunk, every row pre-selected). The
/// compiled predicate/projection machinery is identical above this seam,
/// which is exactly what makes `FROM <set>` ride the same
/// morsel-parallel compiled path as a tag scan.
enum ScanSource {
    Tag {
        store: Arc<TagStore>,
        plan: Arc<TagScanPlan>,
    },
    Set(Arc<ResultSet>),
}

impl ScanSource {
    /// Resolve a compiled scan's source. Records the failure on the
    /// ticket and returns `None` when resolution fails (scan planning
    /// error, or a stored set missing from the pinned snapshot — the
    /// latter indicates a prepare-time bug, since sessions pin sets).
    fn resolve(
        tags: Option<Arc<TagStore>>,
        sets: &HashMap<String, Arc<ResultSet>>,
        spec: &ScanSpec,
        cover_level: Option<u8>,
        ticket: &TicketCore,
    ) -> Option<ScanSource> {
        match &spec.source {
            QuerySource::Set(name) => match sets.get(name) {
                Some(set) => Some(ScanSource::Set(set.clone())),
                None => {
                    ticket.record_failure(format!(
                        "stored set `{name}` was not pinned at prepare time"
                    ));
                    None
                }
            },
            _ => {
                let store = tags.expect("columnar gate checked the tag store");
                match store.plan_batch_scan(spec.domain.as_ref(), cover_level) {
                    Ok(plan) => Some(ScanSource::Tag {
                        store,
                        plan: Arc::new(plan),
                    }),
                    Err(e) => {
                        ticket.record_failure(format!("scan planning failed: {e}"));
                        None
                    }
                }
            }
        }
    }

    /// Byte weight per morsel — the [`MorselQueue`] sharding input.
    fn morsel_bytes(&self) -> Vec<usize> {
        match self {
            ScanSource::Tag { plan, .. } => plan.morsel_bytes(),
            ScanSource::Set(set) => set.chunk_bytes(),
        }
    }

    fn n_morsels(&self) -> usize {
        match self {
            ScanSource::Tag { plan, .. } => plan.morsels().len(),
            ScanSource::Set(set) => set.n_chunks(),
        }
    }

    /// Plan-time cover lookup outcome (`None` for sweeps and sets).
    fn cover_cache_hit(&self) -> Option<bool> {
        match self {
            ScanSource::Tag { plan, .. } => plan.cover_cache_hit(),
            ScanSource::Set(_) => None,
        }
    }

    /// Scan one morsel, streaming `(ColumnBatch, SelectionMask)` pairs.
    fn scan_morsel(
        &self,
        idx: usize,
        f: impl FnMut(&ColumnBatch<'_>, &SelectionMask) -> bool,
    ) -> (RegionScan, bool) {
        match self {
            ScanSource::Tag { store, plan } => store.scan_morsel(plan, idx, f),
            ScanSource::Set(set) => set.scan_chunk(idx, f),
        }
    }
}

/// One parallel columnar scan: compiled programs + the resolved morsel
/// source, shared by every worker through an `Arc`. Workers claim
/// morsels from the byte-balanced queue, evaluate the predicate, and
/// push projected [`ColumnarBatch`]es into the shared channel — the
/// channel fabric merges the per-worker streams.
struct ColumnarScanJob {
    pred: Option<CompiledPredicate>,
    proj: CompiledProjection,
    sample: Option<f64>,
    source: ScanSource,
    queue: MorselQueue,
    ticket: Arc<TicketCore>,
    tx: Sender<ResultBatch>,
}

impl ColumnarScanJob {
    fn run_worker(&self, w: usize) {
        let mut scratch = BatchScratch::new();
        let mut keep_scratch: Vec<usize> = Vec::new();
        // Coalesced output: selective predicates keep few rows per input
        // chunk; accumulating up to COALESCE_ROWS before a send
        // amortizes the channel round-trip. Each worker's FIRST
        // non-empty batch flushes immediately — coalescing must not hold
        // back the ASAP time-to-first-row property.
        let mut pending: Option<ColumnarBatch> = None;
        let mut sent_any = false;
        let mut local = RegionScan::default();
        let mut morsels = 0u64;
        let mut selected = 0u64;
        let mut alive = true;
        while alive && !self.ticket.is_cancelled() {
            let Some(m) = self.queue.next(w) else { break };
            morsels += 1;
            let (stats, _) = self.source.scan_morsel(m, |batch, sel| {
                if self.ticket.is_cancelled() {
                    return false;
                }
                let keep = select_rows(
                    &self.pred,
                    self.sample,
                    batch,
                    sel,
                    &mut scratch,
                    &mut keep_scratch,
                );
                if keep.any() {
                    selected += keep.count() as u64;
                    let out = self.proj.eval_batch(batch, &keep, &mut scratch);
                    match &mut pending {
                        None => pending = Some(out),
                        Some(p) => p.append(out),
                    }
                    let threshold = if sent_any { COALESCE_ROWS } else { 1 };
                    if pending.as_ref().is_some_and(|p| p.len() >= threshold) {
                        let out = pending.take().expect("checked above");
                        self.ticket.note_batch(out.len());
                        sent_any = true;
                        if self.tx.send(ResultBatch::Columnar(out)).is_err() {
                            alive = false;
                            return false; // consumer hung up
                        }
                    }
                }
                true
            });
            local.merge(&stats);
        }
        if let Some(out) = pending {
            self.ticket.note_batch(out.len());
            let _ = self.tx.send(ResultBatch::Columnar(out));
        }
        self.ticket.note_worker(WorkerScan {
            bytes_scanned: local.bytes_scanned as u64,
            morsels,
            rows_selected: selected,
        });
        self.ticket.absorb_scan(&local);
    }
}

/// One parallel aggregate scan with **in-scan folding**: workers fold
/// `COUNT`/`SUM`/`MIN`/`MAX`/`AVG` partials directly inside the morsel
/// loop — no hidden `__agg_i` columns ever enter the channel fabric.
/// The coordinator merges per-worker partial accumulators at the edge
/// and emits the single result row.
struct AggScanJob {
    pred: Option<CompiledPredicate>,
    inputs: CompiledAggInputs,
    funcs: Vec<AggFn>,
    sample: Option<f64>,
    source: ScanSource,
    queue: MorselQueue,
    ticket: Arc<TicketCore>,
}

impl AggScanJob {
    /// Drain morsels for worker `w`, returning its partial accumulators
    /// (partial even when cancelled — the channel path emits a partial
    /// aggregate on cancel too).
    fn run_worker(&self, w: usize) -> Vec<AggAcc> {
        let mut scratch = BatchScratch::new();
        let mut keep_scratch: Vec<usize> = Vec::new();
        let mut accs: Vec<AggAcc> = self.funcs.iter().map(|&f| AggAcc::new(f)).collect();
        let mut local = RegionScan::default();
        let mut morsels = 0u64;
        let mut folded = 0u64;
        while !self.ticket.is_cancelled() {
            let Some(m) = self.queue.next(w) else { break };
            morsels += 1;
            let (stats, _) = self.source.scan_morsel(m, |batch, sel| {
                if self.ticket.is_cancelled() {
                    return false;
                }
                let keep = select_rows(
                    &self.pred,
                    self.sample,
                    batch,
                    sel,
                    &mut scratch,
                    &mut keep_scratch,
                );
                if keep.any() {
                    folded += keep.count() as u64;
                    self.inputs
                        .fold(batch, &keep, &mut scratch, |i, v| accs[i].update(v));
                }
                true
            });
            local.merge(&stats);
        }
        self.ticket.note_rows(folded);
        self.ticket.note_worker(WorkerScan {
            bytes_scanned: local.bytes_scanned as u64,
            morsels,
            rows_selected: folded,
        });
        self.ticket.absorb_scan(&local);
        accs
    }
}

// ---------------------------------------------------------------------
// MATCH joins: morsel-parallel cross-match over a zone-partitioned
// build side
// ---------------------------------------------------------------------

/// One pair of a MATCH join, presented to the row-wise evaluator:
/// `a.<attr>` / `b.<attr>` resolve through the underlying tag records,
/// `sep_arcsec` is the pair's angular separation. Positional functions
/// see the probe (`a`) side.
struct PairSource<'x> {
    a: &'x TagObject,
    b: &'x TagObject,
    sep_arcsec: f64,
}

impl AttrSource for PairSource<'_> {
    fn attr(&self, name: &str) -> Option<Value> {
        if name == "sep_arcsec" {
            return Some(Value::Num(self.sep_arcsec));
        }
        if let Some(base) = name.strip_prefix("a.") {
            return self.a.attr(base);
        }
        if let Some(base) = name.strip_prefix("b.") {
            return self.b.attr(base);
        }
        None
    }

    fn position(&self) -> sdss_skycoords::UnitVec3 {
        self.a.unit_vec()
    }
}

/// The shared core of one MATCH execution: the resolved probe source
/// (one morsel per chunk/container, drained through the byte-balanced
/// [`MorselQueue`] exactly like a columnar scan), the collected build
/// rows with their [`ZoneIndex`], and the join parameters. Probe workers
/// share it behind an `Arc`; the projection and aggregate variants both
/// drain pairs through [`MatchJobCore::drain_worker`].
struct MatchJobCore {
    predicate: Option<Expr>,
    sample: Option<f64>,
    radius_arcsec: f64,
    build: Vec<TagObject>,
    index: ZoneIndex,
    probe: ScanSource,
    queue: MorselQueue,
    ticket: Arc<TicketCore>,
}

impl MatchJobCore {
    /// Resolve both join sides and build the zone index. Returns the
    /// core plus the worker count (capped by probe morsels). Failures
    /// are recorded on the ticket (the consumer sees a closed channel
    /// plus the failure message, like every other resolution error).
    fn prepare(
        tags: &Option<Arc<TagStore>>,
        sets: &HashMap<String, Arc<ResultSet>>,
        spec: &ScanSpec,
        m: MatchSpec,
        workers: usize,
        ticket: Arc<TicketCore>,
    ) -> Option<(MatchJobCore, usize)> {
        let probe = Self::resolve_input(&m.a, tags, sets, &ticket)?;
        // Collect the build side once; its scan bytes are accounted to
        // the execution totals (but not to any probe worker).
        let (build, build_deep, build_bytes, build_chunks) =
            Self::collect_build(&m.b, tags, sets, &ticket)?;
        ticket.absorb_sweep(build_bytes, build_chunks);
        // Bucket by the stored deep ids — integer shifts, no spherical
        // lookups on the join's setup path.
        let index =
            ZoneIndex::build_from_deep(&build_deep, ZoneIndex::level_for_radius(m.radius_arcsec));
        let n_workers = workers.min(probe.n_morsels()).max(1);
        let queue = MorselQueue::build(&probe.morsel_bytes(), n_workers);
        Some((
            MatchJobCore {
                predicate: spec.predicate.clone(),
                sample: spec.sample,
                radius_arcsec: m.radius_arcsec,
                build,
                index,
                probe,
                queue,
                ticket,
            },
            n_workers,
        ))
    }

    /// One join input as a morsel source, delegated to the scan path's
    /// own resolver via a bare scan spec: stored sets expose their
    /// chunks, the archive resolves to a whole-sky tag sweep plan
    /// (`domain: None` — MATCH has no cover to restrict it; the join
    /// radius is the restriction). The probe side drains it in
    /// parallel; the build side drains it serially in `collect_build`.
    fn resolve_input(
        input: &MatchInput,
        tags: &Option<Arc<TagStore>>,
        sets: &HashMap<String, Arc<ResultSet>>,
        ticket: &TicketCore,
    ) -> Option<ScanSource> {
        let source = match input {
            MatchInput::Set(name) => QuerySource::Set(name.clone()),
            MatchInput::Archive => QuerySource::Tag,
        };
        let spec = ScanSpec {
            source,
            domain: None,
            predicate: None,
            columns: Vec::new(),
            sample: None,
        };
        ScanSource::resolve(tags.clone(), sets, &spec, None, ticket)
    }

    /// Materialize the build side as owned tag rows plus their stored
    /// level-20 HTM ids (the zone index buckets by shift-ancestor of
    /// `htm20` — no per-row spherical lookup; this is exactly why
    /// materialized sets preserve `htm20`). Resolution and the batch
    /// drain go through the same [`ScanSource`] seam as the probe side;
    /// cancellation is checked per morsel — a whole-archive build side
    /// is the most expensive thing a cancelled MATCH could otherwise
    /// keep doing. The zone index holds row indices into the returned
    /// vector.
    fn collect_build(
        input: &MatchInput,
        tags: &Option<Arc<TagStore>>,
        sets: &HashMap<String, Arc<ResultSet>>,
        ticket: &TicketCore,
    ) -> Option<(Vec<TagObject>, Vec<u64>, usize, usize)> {
        let source = Self::resolve_input(input, tags, sets, ticket)?;
        let mut rows = Vec::new();
        let mut deep = Vec::new();
        let mut bytes = 0usize;
        let containers = source.n_morsels();
        for idx in 0..containers {
            if ticket.is_cancelled() {
                return None;
            }
            let (stats, _) = source.scan_morsel(idx, |batch, _sel| {
                for i in 0..batch.len() {
                    rows.push(batch.row(i));
                }
                deep.extend_from_slice(batch.htm20);
                true
            });
            bytes += stats.bytes_scanned;
        }
        Some((rows, deep, bytes, containers))
    }

    /// Drain probe morsels for worker `w`, streaming every surviving
    /// pair (identity pairs excluded, sample applied probe-side,
    /// predicate evaluated per pair). `on_pair` returns `false` to
    /// abort (consumer hang-up). Registers the worker's accounting.
    fn drain_worker(&self, w: usize, mut on_pair: impl FnMut(&PairSource<'_>) -> bool) {
        let mut local = RegionScan::default();
        let mut morsels = 0u64;
        let mut pairs = 0u64;
        let mut alive = true;
        while alive && !self.ticket.is_cancelled() {
            let Some(m) = self.queue.next(w) else { break };
            morsels += 1;
            let (stats, _) = self.probe.scan_morsel(m, |batch, sel| {
                if self.ticket.is_cancelled() {
                    return false;
                }
                for i in sel.iter_set() {
                    let a = batch.row(i);
                    if let Some(f) = self.sample {
                        if !sample_hash_keep(a.obj_id, f) {
                            continue;
                        }
                    }
                    let probed = self.index.neighbors_within(
                        &self.build,
                        a.unit_vec(),
                        self.radius_arcsec,
                        |ri, sep| {
                            if !alive {
                                return;
                            }
                            let b = &self.build[ri as usize];
                            // An object is not its own neighbor: the
                            // self-join identity pair (sep = 0) carries
                            // no information.
                            if b.obj_id == a.obj_id {
                                return;
                            }
                            let pair = PairSource {
                                a: &a,
                                b,
                                sep_arcsec: sep,
                            };
                            if let Some(pred) = &self.predicate {
                                match eval(pred, &pair) {
                                    Ok(Value::Bool(true)) => {}
                                    // Type errors drop the pair, like
                                    // the row-wise scan fallback.
                                    Ok(_) | Err(_) => return,
                                }
                            }
                            pairs += 1;
                            if !on_pair(&pair) {
                                alive = false;
                            }
                        },
                    );
                    if let Err(e) = probed {
                        self.ticket
                            .record_failure(format!("MATCH probe failed: {e}"));
                        return false;
                    }
                    if !alive {
                        return false;
                    }
                }
                true
            });
            local.merge(&stats);
        }
        self.ticket.note_worker(WorkerScan {
            bytes_scanned: local.bytes_scanned as u64,
            morsels,
            rows_selected: pairs,
        });
        self.ticket.absorb_scan(&local);
    }
}

/// Spawn a MATCH projection scan: probe workers drain morsels from the
/// byte-balanced queue, join each probe row against the zone index, and
/// stream projected pair rows into the shared channel.
fn spawn_match_scan(
    env: &ExecEnv,
    spec: ScanSpec,
    m: MatchSpec,
    ticket: &Arc<TicketCore>,
) -> BatchHandle {
    let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
    let columns: Arc<Vec<String>> = Arc::new(spec.columns.iter().map(|(n, _)| n.clone()).collect());
    let exprs: Arc<Vec<Expr>> = Arc::new(spec.columns.iter().map(|(_, e)| e.clone()).collect());
    let tags = env.tags.clone();
    let sets = env.sets.clone();
    let workers = env.workers.max(1);
    let ticket = ticket.clone();
    spawn_guarded(ticket.clone(), move || {
        let Some((core, n_workers)) =
            MatchJobCore::prepare(&tags, &sets, &spec, m, workers, ticket.clone())
        else {
            return;
        };
        let core = Arc::new(core);
        for w in 1..n_workers {
            let core = core.clone();
            let exprs = exprs.clone();
            let tx = tx.clone();
            spawn_guarded(core.ticket.clone(), move || {
                run_match_scan_worker(&core, &exprs, &tx, w)
            });
        }
        run_match_scan_worker(&core, &exprs, &tx, 0);
    });
    BatchHandle { columns, rx }
}

/// One MATCH projection worker: evaluate the output expressions per
/// pair and ship row batches (pair rows are heterogeneous expression
/// results — the row form of the fabric, like every non-compiled path).
fn run_match_scan_worker(core: &MatchJobCore, exprs: &[Expr], tx: &Sender<ResultBatch>, w: usize) {
    let mut out: Vec<Row> = Vec::with_capacity(BATCH);
    let mut aborted = false;
    core.drain_worker(w, |pair| {
        let mut row: Row = Vec::with_capacity(exprs.len());
        for expr in exprs {
            row.push(eval(expr, pair).unwrap_or(Value::Null));
        }
        out.push(row);
        if out.len() >= BATCH {
            core.ticket.note_batch(out.len());
            if tx
                .send(ResultBatch::Rows(std::mem::take(&mut out)))
                .is_err()
            {
                aborted = true;
                return false;
            }
        }
        true
    });
    if !aborted && !out.is_empty() {
        core.ticket.note_batch(out.len());
        let _ = tx.send(ResultBatch::Rows(out));
    }
}

/// Spawn a MATCH aggregate with in-scan folding: probe workers fold
/// per-worker partial accumulators over the pairs they produce (the
/// `COUNT(*)` pair-count of the paper's neighbor queries never ships a
/// pair stream), and the coordinator merges partials into one row.
fn spawn_match_agg_scan(
    env: &ExecEnv,
    spec: ScanSpec,
    m: MatchSpec,
    aggs: Vec<AggSpec>,
    ticket: &Arc<TicketCore>,
) -> BatchHandle {
    let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
    let columns = Arc::new(aggs.iter().map(|a| a.name.clone()).collect::<Vec<_>>());
    let funcs: Vec<AggFn> = aggs.iter().map(|a| a.func).collect();
    let args: Arc<Vec<Option<Expr>>> = Arc::new(aggs.into_iter().map(|a| a.arg).collect());
    let tags = env.tags.clone();
    let sets = env.sets.clone();
    let workers = env.workers.max(1);
    let ticket = ticket.clone();
    spawn_guarded(ticket.clone(), move || {
        let Some((core, n_workers)) =
            MatchJobCore::prepare(&tags, &sets, &spec, m, workers, ticket.clone())
        else {
            return;
        };
        let core = Arc::new(core);
        let (ptx, prx) = bounded::<Vec<AggAcc>>(n_workers);
        for w in 1..n_workers {
            let core = core.clone();
            let args = args.clone();
            let funcs = funcs.clone();
            let ptx = ptx.clone();
            spawn_guarded(core.ticket.clone(), move || {
                let _ = ptx.send(run_match_agg_worker(&core, &args, &funcs, w));
            });
        }
        let _ = ptx.send(run_match_agg_worker(&core, &args, &funcs, 0));
        drop(ptx);
        let mut acc: Vec<AggAcc> = funcs.iter().map(|&f| AggAcc::new(f)).collect();
        for partial in prx.iter() {
            for (a, p) in acc.iter_mut().zip(partial) {
                a.merge(p);
            }
        }
        let row: Row = acc.into_iter().map(AggAcc::finish).collect();
        ticket.note_emitted();
        let _ = tx.send(ResultBatch::Rows(vec![row]));
    });
    BatchHandle { columns, rx }
}

/// One MATCH aggregate worker: fold each surviving pair straight into
/// the partial accumulators.
fn run_match_agg_worker(
    core: &MatchJobCore,
    args: &[Option<Expr>],
    funcs: &[AggFn],
    w: usize,
) -> Vec<AggAcc> {
    let mut accs: Vec<AggAcc> = funcs.iter().map(|&f| AggAcc::new(f)).collect();
    let mut folded = 0u64;
    core.drain_worker(w, |pair| {
        folded += 1;
        for (acc, arg) in accs.iter_mut().zip(args) {
            let v = arg
                .as_ref()
                .and_then(|e| eval(e, pair).ok())
                .and_then(|v| v.as_num());
            acc.update(v);
        }
        true
    });
    // Folded pairs never ship as batches; count them into the scan
    // totals like the in-scan aggregate over a normal scan does, so
    // `QueryStats.scan.rows_scanned` stays comparable across shapes.
    core.ticket.note_rows(folded);
    accs
}

// ---------------------------------------------------------------------
// The direct columnar INTO fast path
// ---------------------------------------------------------------------

/// Gate for the direct columnar INTO fast path: `Some(pred)` iff the
/// scan reads a columnar source (tag partition or stored set) and its
/// predicate (when present) compiles. The projection is irrelevant — an
/// INTO materializes whole tag records, which the column lanes already
/// carry.
pub(crate) fn compile_into_scan(
    spec: &ScanSpec,
    tags_available: bool,
    mode: ExecMode,
) -> Option<Option<CompiledPredicate>> {
    if mode != ExecMode::Auto || !columnar_source(spec, tags_available) {
        return None;
    }
    match &spec.predicate {
        None => Some(None),
        Some(p) => compile_predicate(p).map(Some),
    }
}

/// Drive a compiled tag/set scan straight into a materialization sink:
/// selected rows leave the [`ColumnBatch`] lanes as owned tag records +
/// `htm20`, with **no per-objid full-store fetch** — the direct columnar
/// INTO fast path. The sink may error (quota enforcement) to abort the
/// scan. Tag containers and stored sets both hold each object at most
/// once, so the sink sees no duplicate object pointers (the property
/// the slow path's dedup hash exists to establish for set-op streams).
pub(crate) fn drive_into_scan(
    tags: Option<Arc<TagStore>>,
    sets: &HashMap<String, Arc<ResultSet>>,
    spec: &ScanSpec,
    pred: Option<CompiledPredicate>,
    cover_level: Option<u8>,
    ticket: &Arc<TicketCore>,
    mut sink: impl FnMut(&TagObject, u64) -> Result<(), QueryError>,
) -> Result<(), QueryError> {
    let Some(source) = ScanSource::resolve(tags, sets, spec, cover_level, ticket) else {
        return Err(QueryError::Exec(ticket.failure().unwrap_or_else(|| {
            "INTO scan source resolution failed".to_string()
        })));
    };
    if let Some(hit) = source.cover_cache_hit() {
        ticket.note_cover(hit);
    }
    let mut scratch = BatchScratch::new();
    let mut keep_scratch: Vec<usize> = Vec::new();
    let mut local = RegionScan::default();
    let mut selected = 0u64;
    let mut morsels = 0u64;
    let mut err: Option<QueryError> = None;
    for m in 0..source.n_morsels() {
        if ticket.is_cancelled() {
            break;
        }
        morsels += 1;
        let (stats, _) = source.scan_morsel(m, |batch, sel| {
            let keep = select_rows(
                &pred,
                spec.sample,
                batch,
                sel,
                &mut scratch,
                &mut keep_scratch,
            );
            let kept = keep.count();
            if kept > 0 {
                selected += kept as u64;
                ticket.note_batch(kept);
                for i in keep.iter_set() {
                    if let Err(e) = sink(&batch.row(i), batch.htm20[i]) {
                        err = Some(e);
                        return false;
                    }
                }
            }
            true
        });
        local.merge(&stats);
        if err.is_some() {
            break;
        }
    }
    ticket.note_worker(WorkerScan {
        bytes_scanned: local.bytes_scanned as u64,
        morsels,
        rows_selected: selected,
    });
    ticket.absorb_scan(&local);
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Lower `Aggregate(Scan)` for in-scan folding: `Some` iff the scan
/// itself compiles and every aggregate argument lowers to a numeric
/// program. The fallback is the channel path (scan projects `__agg_i`
/// columns, the Aggregate node folds them).
fn compile_agg_scan(
    spec: &ScanSpec,
    aggs: &[AggSpec],
    tags_available: bool,
    mode: ExecMode,
) -> Option<(Option<CompiledPredicate>, CompiledAggInputs)> {
    if mode != ExecMode::Auto || !columnar_source(spec, tags_available) {
        return None;
    }
    let pred = match &spec.predicate {
        None => None,
        Some(p) => Some(compile_predicate(p)?),
    };
    let args: Vec<Option<&crate::ast::Expr>> = aggs.iter().map(|a| a.arg.as_ref()).collect();
    Some((pred, compile_agg_inputs(&args)?))
}

/// Spawn the fused aggregate scan: morsel workers fold partials, the
/// coordinator merges them and emits one row.
fn spawn_agg_scan(
    env: &ExecEnv,
    spec: ScanSpec,
    aggs: Vec<AggSpec>,
    pred: Option<CompiledPredicate>,
    inputs: CompiledAggInputs,
    ticket: &Arc<TicketCore>,
) -> BatchHandle {
    let (tx, rx) = bounded::<ResultBatch>(CHANNEL_DEPTH);
    let columns = Arc::new(aggs.iter().map(|a| a.name.clone()).collect::<Vec<_>>());
    let funcs: Vec<AggFn> = aggs.iter().map(|a| a.func).collect();
    let tags = env.tags.clone();
    let sets = env.sets.clone();
    let cover_level = env.cover_level;
    let workers = env.workers.max(1);
    let ticket = ticket.clone();
    spawn_guarded(ticket.clone(), move || {
        let Some(source) = ScanSource::resolve(tags, &sets, &spec, cover_level, &ticket) else {
            return;
        };
        if let Some(hit) = source.cover_cache_hit() {
            ticket.note_cover(hit);
        }
        let n_workers = workers.min(source.n_morsels()).max(1);
        let job = Arc::new(AggScanJob {
            pred,
            inputs,
            funcs: funcs.clone(),
            sample: spec.sample,
            queue: MorselQueue::build(&source.morsel_bytes(), n_workers),
            source,
            ticket: ticket.clone(),
        });
        let (ptx, prx) = bounded::<Vec<AggAcc>>(n_workers);
        for w in 1..n_workers {
            let job = job.clone();
            let ptx = ptx.clone();
            spawn_guarded(ticket.clone(), move || {
                let _ = ptx.send(job.run_worker(w));
            });
        }
        let _ = ptx.send(job.run_worker(0));
        drop(ptx);
        // Merge partials at the edge. A panicked worker drops its sender
        // without a partial; its failure is already on the ticket and
        // the merge proceeds over what arrived.
        let mut acc: Vec<AggAcc> = funcs.iter().map(|&f| AggAcc::new(f)).collect();
        for partial in prx.iter() {
            for (a, p) in acc.iter_mut().zip(partial) {
                a.merge(p);
            }
        }
        let row: Row = acc.into_iter().map(AggAcc::finish).collect();
        ticket.note_emitted();
        let _ = tx.send(ResultBatch::Rows(vec![row]));
    });
    BatchHandle { columns, rx }
}

/// Wrapper so `&dyn AttrSource` satisfies the generic eval bound.
struct SourceRef<'a>(&'a dyn AttrSource);

impl AttrSource for SourceRef<'_> {
    fn attr(&self, name: &str) -> Option<Value> {
        self.0.attr(name)
    }

    fn position(&self) -> sdss_skycoords::UnitVec3 {
        self.0.position()
    }
}

/// Total order over values for ORDER BY (numbers < strings < bools < NULL).
pub fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.total_cmp(y),
        (Value::Id(x), Value::Id(y)) => x.cmp(y),
        (Value::Id(x), Value::Num(y)) => (*x as f64).total_cmp(y),
        (Value::Num(x), Value::Id(y)) => x.total_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Null, Value::Null) => Equal,
        (Value::Num(_) | Value::Id(_), _) => Less,
        (_, Value::Num(_) | Value::Id(_)) => Greater,
        (Value::Str(_), _) => Less,
        (_, Value::Str(_)) => Greater,
        (Value::Bool(_), _) => Less,
        (_, Value::Bool(_)) => Greater,
    }
}

/// Aggregate accumulator.
struct AggAcc {
    func: AggFn,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggAcc {
    fn new(func: AggFn) -> AggAcc {
        AggAcc {
            func,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn update(&mut self, v: Option<f64>) {
        match self.func {
            AggFn::Count => self.count += 1,
            _ => {
                if let Some(x) = v {
                    self.count += 1;
                    self.sum += x;
                    self.min = self.min.min(x);
                    self.max = self.max.max(x);
                }
            }
        }
    }

    /// Fold another partial accumulator of the same function into this
    /// one — per-worker partials merging at the edge of a parallel
    /// aggregate scan.
    fn merge(&mut self, o: AggAcc) {
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    fn finish(self) -> Value {
        match self.func {
            AggFn::Count => Value::Num(self.count as f64),
            AggFn::Sum => Value::Num(self.sum),
            AggFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.sum / self.count as f64)
                }
            }
            AggFn::Min => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.min)
                }
            }
            AggFn::Max => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.max)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_total() {
        let vals = [
            Value::Num(1.0),
            Value::Num(2.0),
            Value::Str("a".into()),
            Value::Bool(false),
            Value::Null,
        ];
        // compare_values is a total order: antisymmetric & transitive on
        // this sample.
        for a in &vals {
            assert_eq!(compare_values(a, a), std::cmp::Ordering::Equal);
            for b in &vals {
                let ab = compare_values(a, b);
                let ba = compare_values(b, a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn agg_accumulators() {
        let mut count = AggAcc::new(AggFn::Count);
        let mut avg = AggAcc::new(AggFn::Avg);
        let mut min = AggAcc::new(AggFn::Min);
        let mut max = AggAcc::new(AggFn::Max);
        let mut sum = AggAcc::new(AggFn::Sum);
        for v in [2.0, 4.0, 6.0] {
            count.update(None);
            avg.update(Some(v));
            min.update(Some(v));
            max.update(Some(v));
            sum.update(Some(v));
        }
        assert_eq!(count.finish(), Value::Num(3.0));
        assert_eq!(avg.finish(), Value::Num(4.0));
        assert_eq!(min.finish(), Value::Num(2.0));
        assert_eq!(max.finish(), Value::Num(6.0));
        assert_eq!(sum.finish(), Value::Num(12.0));
        // Empty aggregates are NULL (except COUNT = 0).
        assert_eq!(AggAcc::new(AggFn::Avg).finish(), Value::Null);
        assert_eq!(AggAcc::new(AggFn::Count).finish(), Value::Num(0.0));
    }

    #[test]
    fn columnar_batch_rows_and_truncate() {
        let mut b = ColumnarBatch::new(
            vec![
                ColumnData::Id(vec![1, 2, 3]),
                ColumnData::Num(vec![1.5, 2.5, 3.5]),
                ColumnData::Class(vec![2, 1, 3]),
            ],
            3,
        );
        assert_eq!(b.len(), 3);
        let rows = b.rows();
        assert_eq!(rows[0][0], Value::Id(1));
        assert_eq!(rows[1][1], Value::Num(2.5));
        assert_eq!(rows[2][2], Value::Str("QSO".to_string()));
        b.truncate(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.rows().len(), 1);
        // num_at / id_at agree with the materialized values.
        assert_eq!(b.columns()[0].num_at(0), Some(1.0));
        assert_eq!(b.columns()[1].num_at(0), Some(1.5));
        assert_eq!(b.columns()[2].num_at(0), None);
        assert_eq!(b.columns()[0].id_at(0), Some(1));
    }

    #[test]
    fn guarded_spawn_surfaces_panics() {
        let ticket = Arc::new(TicketCore::default());
        spawn_guarded(ticket.clone(), || panic!("boom in a node thread"));
        // The detached thread records its panic instead of vanishing.
        for _ in 0..200 {
            if ticket.failure().is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let msg = ticket.failure().expect("panic recorded");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn ticket_counters_accumulate() {
        let t = TicketCore::default();
        t.note_batch(10);
        t.note_batch(5);
        t.absorb_sweep(1024, 3);
        let totals = t.totals();
        assert_eq!(totals.rows_scanned, 15);
        assert_eq!(totals.batches_emitted, 2);
        assert_eq!(totals.bytes_scanned, 1024);
        assert_eq!(totals.containers_full, 3);
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}
