//! Multithreaded QET execution with ASAP push streaming.
//!
//! Every plan node runs on its own thread; rows flow upward through
//! bounded crossbeam channels in small batches. Scan/Limit nodes stream;
//! Sort/Aggregate/Set nodes are the paper's blocking nodes ("at least one
//! of the child nodes must be complete before results can be sent further
//! up the tree"). The channel fabric gives the ASAP property: the first
//! matching object reaches the consumer while scans are still running.
//!
//! Tag scans run **columnar**: the scan leaf pulls [`sdss_storage::ColumnBatch`]es
//! from the tag store's struct-of-arrays chunks, evaluates the compiled
//! predicate ([`crate::compile`]) over each batch into a selection
//! bitmap, and only materializes `Row`s for surviving rows at the final
//! projection — row-at-a-time interpretation remains as the fallback for
//! whatever the compiler can't express.

use crate::ast::{AggFn, Value};
use crate::compile::{compile_predicate, compile_projection, BatchScratch};
use crate::ops::{eval, AttrSource};
use crate::plan::{PlanNode, ScanSpec, ScanTarget};
use crate::QueryError;
use crossbeam::channel::{bounded, Receiver, Sender};
use sdss_storage::{sample_hash_keep, ObjectStore, TagStore};
use std::collections::HashSet;
use std::sync::Arc;

/// One output row.
pub type Row = Vec<Value>;

/// Rows travel in batches to amortize channel overhead.
const BATCH: usize = 128;
/// Channel depth: enough to decouple producer/consumer without buffering
/// the whole result (that would break the ASAP property).
const CHANNEL_DEPTH: usize = 8;

/// Whether scans may use the compiled columnar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile tag scans to columnar bytecode when possible (default).
    #[default]
    Auto,
    /// Force the row-at-a-time interpreter everywhere (the benchmark
    /// baseline, and the equivalence oracle in tests).
    Interpreted,
}

/// A handle to a running (sub)tree: the receiving end of its output.
pub struct ExecHandle {
    /// Output column names (shared, not re-cloned per node).
    pub columns: Arc<Vec<String>>,
    pub rx: Receiver<Vec<Row>>,
}

/// Execution context shared by all nodes of one query.
pub struct ExecCtx<'a> {
    pub store: &'a ObjectStore,
    pub tags: Option<&'a TagStore>,
    /// Cover level override for scans.
    pub cover_level: Option<u8>,
    pub mode: ExecMode,
}

/// Lower a scan for the columnar path: `Some` iff the mode allows it,
/// the scan targets the tag store, and the predicate (when present) and
/// projection both compile. The single decision point — the stats flag
/// (`plan_uses_columnar`) and the executor both go through here, so the
/// gate and the execution path cannot drift.
fn compile_scan(
    spec: &ScanSpec,
    tags_available: bool,
    mode: ExecMode,
) -> Option<(Option<crate::compile::CompiledPredicate>, crate::compile::CompiledProjection)> {
    if mode != ExecMode::Auto || !tags_available || spec.target != ScanTarget::Tag {
        return None;
    }
    let pred = match &spec.predicate {
        None => None,
        Some(p) => Some(compile_predicate(p)?),
    };
    Some((pred, compile_projection(&spec.columns)?))
}

/// Would this scan run on the columnar compiled path?
pub fn scan_uses_columnar(spec: &ScanSpec, tags_available: bool, mode: ExecMode) -> bool {
    compile_scan(spec, tags_available, mode).is_some()
}

/// Do *all* scan leaves of the plan run columnar?
pub fn plan_uses_columnar(plan: &PlanNode, tags_available: bool, mode: ExecMode) -> bool {
    match plan {
        PlanNode::Scan(s) => scan_uses_columnar(s, tags_available, mode),
        PlanNode::Sort { child, .. }
        | PlanNode::Limit { child, .. }
        | PlanNode::Aggregate { child, .. } => plan_uses_columnar(child, tags_available, mode),
        PlanNode::Set { left, right, .. } => {
            plan_uses_columnar(left, tags_available, mode)
                && plan_uses_columnar(right, tags_available, mode)
        }
    }
}

/// Execute a plan inside a thread scope, calling `consume` with the
/// root's handle while producers are still running (ASAP push).
///
/// The scope guarantees all node threads finish before this returns, so
/// borrowing the stores is safe without `Arc`.
pub fn execute<'a, R>(
    ctx: &ExecCtx<'a>,
    plan: &PlanNode,
    consume: impl FnOnce(ExecHandle) -> R,
) -> Result<R, QueryError> {
    let result = std::thread::scope(|scope| {
        let handle = spawn_node(ctx, plan, scope);
        consume(handle)
    });
    Ok(result)
}

fn spawn_node<'s, 'env: 's, 'a: 'env>(
    ctx: &ExecCtx<'a>,
    node: &'env PlanNode,
    scope: &'s std::thread::Scope<'s, 'env>,
) -> ExecHandle {
    match node {
        PlanNode::Scan(spec) => spawn_scan(ctx, spec, scope),
        PlanNode::Limit { child, n } => {
            let child_handle = spawn_node(ctx, child, scope);
            let (tx, rx) = bounded::<Vec<Row>>(CHANNEL_DEPTH);
            let n = *n;
            let columns = child_handle.columns.clone();
            scope.spawn(move || {
                let mut remaining = n;
                for batch in child_handle.rx.iter() {
                    if remaining == 0 {
                        break; // dropping rx cancels the child
                    }
                    let take = batch.len().min(remaining);
                    remaining -= take;
                    if tx.send(batch.into_iter().take(take).collect()).is_err() {
                        break;
                    }
                }
            });
            ExecHandle { columns, rx }
        }
        PlanNode::Sort { child, key, desc } => {
            let child_handle = spawn_node(ctx, child, scope);
            let (tx, rx) = bounded::<Vec<Row>>(CHANNEL_DEPTH);
            let columns = child_handle.columns.clone();
            let key_idx = columns.iter().position(|c| c == key);
            let desc = *desc;
            scope.spawn(move || {
                // Blocking node: drain the child completely first.
                let mut rows: Vec<Row> = child_handle.rx.iter().flatten().collect();
                if let Some(idx) = key_idx {
                    rows.sort_by(|a, b| {
                        let ord = compare_values(&a[idx], &b[idx]);
                        if desc {
                            ord.reverse()
                        } else {
                            ord
                        }
                    });
                }
                for chunk in rows.chunks(BATCH) {
                    if tx.send(chunk.to_vec()).is_err() {
                        break;
                    }
                }
            });
            ExecHandle { columns, rx }
        }
        PlanNode::Aggregate { child, aggs } => {
            let child_handle = spawn_node(ctx, child, scope);
            let (tx, rx) = bounded::<Vec<Row>>(CHANNEL_DEPTH);
            let columns = Arc::new(aggs.iter().map(|a| a.name.clone()).collect::<Vec<_>>());
            // Borrow the specs from the plan ('env outlives the scope);
            // resolve each aggregate's hidden `__agg_i` column up front
            // instead of re-formatting the name per row.
            let aggs: &'env [crate::plan::AggSpec] = aggs;
            let child_cols = child_handle.columns.clone();
            let arg_idx: Vec<Option<usize>> = aggs
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    a.arg.as_ref().map(|_| {
                        child_cols
                            .iter()
                            .position(|c| c == &format!("__agg_{i}"))
                            .expect("lowering appended the agg column")
                    })
                })
                .collect();
            scope.spawn(move || {
                let mut acc: Vec<AggAcc> = aggs.iter().map(|a| AggAcc::new(a.func)).collect();
                for batch in child_handle.rx.iter() {
                    for row in batch {
                        for (i, idx) in arg_idx.iter().enumerate() {
                            let v = idx.and_then(|idx| row[idx].as_num());
                            acc[i].update(v);
                        }
                    }
                }
                let row: Row = acc.into_iter().map(AggAcc::finish).collect();
                let _ = tx.send(vec![row]);
            });
            ExecHandle { columns, rx }
        }
        PlanNode::Set { op, left, right } => {
            let lh = spawn_node(ctx, left, scope);
            let rh = spawn_node(ctx, right, scope);
            let (tx, rx) = bounded::<Vec<Row>>(CHANNEL_DEPTH);
            let columns = lh.columns.clone();
            let n_columns = columns.len();
            let objid_idx = columns
                .iter()
                .position(|c| c == "objid")
                .expect("planner enforced objid for set ops");
            let op = *op;
            scope.spawn(move || {
                // Blocking on the right side: build the key set.
                let mut right_ids: HashSet<u64> = HashSet::new();
                for batch in rh.rx.iter() {
                    for row in batch {
                        if let Some(id) = row[objid_idx].as_id() {
                            right_ids.insert(id);
                        }
                    }
                }
                // Stream the left side against it.
                let mut seen: HashSet<u64> = HashSet::new();
                let mut out = Vec::with_capacity(BATCH);
                for batch in lh.rx.iter() {
                    for row in batch {
                        let Some(id) = row[objid_idx].as_id() else {
                            continue;
                        };
                        if seen.contains(&id) {
                            continue; // set semantics: dedupe left
                        }
                        let keep = match op {
                            crate::ast::SetOp::Union => true,
                            crate::ast::SetOp::Intersect => right_ids.contains(&id),
                            crate::ast::SetOp::Except => !right_ids.contains(&id),
                        };
                        if keep {
                            seen.insert(id);
                            out.push(row);
                            if out.len() >= BATCH
                                && tx.send(std::mem::take(&mut out)).is_err() {
                                    return;
                                }
                        }
                    }
                }
                // Union also emits right-only rows.
                if op == crate::ast::SetOp::Union {
                    for &id in right_ids.iter() {
                        if !seen.contains(&id) {
                            // We only kept ids, not rows, for the right
                            // side; emit a minimal row with objid and NULLs
                            // — documented bag-of-pointers semantics.
                            let mut row: Row = vec![Value::Null; n_columns];
                            row[objid_idx] = Value::Id(id);
                            out.push(row);
                            if out.len() >= BATCH
                                && tx.send(std::mem::take(&mut out)).is_err() {
                                    return;
                                }
                        }
                    }
                }
                if !out.is_empty() {
                    let _ = tx.send(out);
                }
            });
            ExecHandle { columns, rx }
        }
    }
}

/// Lower a scan: project columns (plus hidden aggregate argument columns,
/// handled by the planner caller) and stream matching rows. Tag scans
/// take the columnar compiled path when the predicate and projection
/// both lower to bytecode; everything else interprets row-at-a-time.
fn spawn_scan<'s, 'env: 's, 'a: 'env>(
    ctx: &ExecCtx<'a>,
    spec: &'env ScanSpec,
    scope: &'s std::thread::Scope<'s, 'env>,
) -> ExecHandle {
    let (tx, rx) = bounded::<Vec<Row>>(CHANNEL_DEPTH);
    let columns: Arc<Vec<String>> =
        Arc::new(spec.columns.iter().map(|(n, _)| n.clone()).collect());
    let store = ctx.store;
    let tags = ctx.tags;
    let cover_level = ctx.cover_level;

    // --- columnar fast path -------------------------------------------
    // `compile_scan` is the same gate `plan_uses_columnar` reports
    // through `QueryStats.columnar`; the programs compile exactly once.
    if let Some((pred, proj)) = compile_scan(spec, tags.is_some(), ctx.mode) {
        let tag_store = tags.expect("compile_scan checked tags");
        scope.spawn(move || {
            let mut scratch = BatchScratch::new();
            let mut out: Vec<Row> = Vec::with_capacity(BATCH);
            let mut keep_scratch: Vec<usize> = Vec::new();
            let _ = tag_store.scan_batches(
                spec.domain.as_ref(),
                cover_level,
                |batch, sel| {
                    let mut keep = sel.clone();
                    if let Some(pred) = &pred {
                        // The cover mask is the hint: rows it
                        // rejected are dropped by the AND below
                        // regardless of the predicate lanes.
                        keep.and_with(pred.eval_hinted(
                            batch,
                            &mut scratch,
                            Some(sel),
                        ));
                    }
                    if let Some(f) = spec.sample {
                        keep_scratch.clear();
                        keep_scratch.extend(
                            keep.iter_set()
                                .filter(|&i| !sample_hash_keep(batch.obj_id[i], f)),
                        );
                        for &i in &keep_scratch {
                            keep.clear(i);
                        }
                    }
                    proj.eval_into(batch, &keep, &mut scratch, &mut out);
                    while out.len() >= BATCH {
                        let chunk: Vec<Row> = out.drain(..BATCH).collect();
                        if tx.send(chunk).is_err() {
                            return false; // consumer hung up
                        }
                    }
                    true
                },
            );
            if !out.is_empty() {
                let _ = tx.send(out);
            }
        });
        return ExecHandle { columns, rx };
    }

    // --- row-at-a-time fallback ---------------------------------------
    scope.spawn(move || {
        let mut out: Vec<Row> = Vec::with_capacity(BATCH);
        let mut alive = true;

        // The row pipeline, generic over record type.
        let mut emit = |src: &dyn AttrSource, tx: &Sender<Vec<Row>>| -> bool {
            if let Some(f) = spec.sample {
                let id = src.attr("objid").and_then(|v| v.as_id()).unwrap_or(0);
                if !sample_hash_keep(id, f) {
                    return true;
                }
            }
            if let Some(pred) = &spec.predicate {
                match eval(pred, &SourceRef(src)) {
                    Ok(Value::Bool(true)) => {}
                    Ok(_) => return true,
                    Err(_) => return true, // row-level type errors drop the row
                }
            }
            let mut row: Row = Vec::with_capacity(spec.columns.len());
            for (_, expr) in &spec.columns {
                match eval(expr, &SourceRef(src)) {
                    Ok(v) => row.push(v),
                    Err(_) => row.push(Value::Null),
                }
            }
            out.push(row);
            if out.len() >= BATCH
                && tx.send(std::mem::take(&mut out)).is_err() {
                    return false;
                }
            true
        };

        match (spec.target, tags) {
            (ScanTarget::Tag, Some(tag_store)) => match &spec.domain {
                Some(domain) => {
                    let _ = tag_store.scan_region_until(domain, cover_level, |t| {
                        alive = emit(t, &tx);
                        alive
                    });
                }
                None => {
                    // Full tag scan (no spatial restriction).
                    tag_store.scan_all(|t| {
                        if alive {
                            alive = emit(t, &tx);
                        }
                    });
                }
            },
            _ => match &spec.domain {
                Some(domain) => {
                    let _ = store.scan_region_until(domain, cover_level, |o| {
                        alive = emit(o, &tx);
                        alive
                    });
                }
                None => {
                    store.scan_all(|o| {
                        if alive {
                            alive = emit(o, &tx);
                        }
                    });
                }
            },
        }
        if alive && !out.is_empty() {
            let _ = tx.send(out);
        }
    });
    ExecHandle { columns, rx }
}

/// Wrapper so `&dyn AttrSource` satisfies the generic eval bound.
struct SourceRef<'a>(&'a dyn AttrSource);

impl AttrSource for SourceRef<'_> {
    fn attr(&self, name: &str) -> Option<Value> {
        self.0.attr(name)
    }

    fn position(&self) -> sdss_skycoords::UnitVec3 {
        self.0.position()
    }
}

/// Total order over values for ORDER BY (numbers < strings < bools < NULL).
pub fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => x.total_cmp(y),
        (Value::Id(x), Value::Id(y)) => x.cmp(y),
        (Value::Id(x), Value::Num(y)) => (*x as f64).total_cmp(y),
        (Value::Num(x), Value::Id(y)) => x.total_cmp(&(*y as f64)),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Null, Value::Null) => Equal,
        (Value::Num(_) | Value::Id(_), _) => Less,
        (_, Value::Num(_) | Value::Id(_)) => Greater,
        (Value::Str(_), _) => Less,
        (_, Value::Str(_)) => Greater,
        (Value::Bool(_), _) => Less,
        (_, Value::Bool(_)) => Greater,
    }
}

/// Aggregate accumulator.
struct AggAcc {
    func: AggFn,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl AggAcc {
    fn new(func: AggFn) -> AggAcc {
        AggAcc {
            func,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn update(&mut self, v: Option<f64>) {
        match self.func {
            AggFn::Count => self.count += 1,
            _ => {
                if let Some(x) = v {
                    self.count += 1;
                    self.sum += x;
                    self.min = self.min.min(x);
                    self.max = self.max.max(x);
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self.func {
            AggFn::Count => Value::Num(self.count as f64),
            AggFn::Sum => Value::Num(self.sum),
            AggFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.sum / self.count as f64)
                }
            }
            AggFn::Min => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.min)
                }
            }
            AggFn::Max => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Num(self.max)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_total() {
        let vals = [
            Value::Num(1.0),
            Value::Num(2.0),
            Value::Str("a".into()),
            Value::Bool(false),
            Value::Null,
        ];
        // compare_values is a total order: antisymmetric & transitive on
        // this sample.
        for a in &vals {
            assert_eq!(compare_values(a, a), std::cmp::Ordering::Equal);
            for b in &vals {
                let ab = compare_values(a, b);
                let ba = compare_values(b, a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn agg_accumulators() {
        let mut count = AggAcc::new(AggFn::Count);
        let mut avg = AggAcc::new(AggFn::Avg);
        let mut min = AggAcc::new(AggFn::Min);
        let mut max = AggAcc::new(AggFn::Max);
        let mut sum = AggAcc::new(AggFn::Sum);
        for v in [2.0, 4.0, 6.0] {
            count.update(None);
            avg.update(Some(v));
            min.update(Some(v));
            max.update(Some(v));
            sum.update(Some(v));
        }
        assert_eq!(count.finish(), Value::Num(3.0));
        assert_eq!(avg.finish(), Value::Num(4.0));
        assert_eq!(min.finish(), Value::Num(2.0));
        assert_eq!(max.finish(), Value::Num(6.0));
        assert_eq!(sum.finish(), Value::Num(12.0));
        // Empty aggregates are NULL (except COUNT = 0).
        assert_eq!(AggAcc::new(AggFn::Avg).finish(), Value::Null);
        assert_eq!(AggAcc::new(AggFn::Count).finish(), Value::Num(0.0));
    }
}
