//! The archive server API: a shared, thread-safe query surface.
//!
//! The paper's archive is a multi-user server: query agents accept many
//! concurrent requests, *estimate their cost before running them*,
//! stream partial results ASAP, and let users abort long scans. This
//! module is that surface:
//!
//! * [`Archive`] — an owned, cloneable, `Send + Sync` handle; stores
//!   live behind `Arc` and any number of threads submit queries
//!   concurrently.
//! * [`Prepared`] — parse + plan exactly once ([`Archive::prepare`]),
//!   inspect the plan and its plan-time [`CostEstimate`] (rows / bytes /
//!   containers touched, from the container density map + HTM cover),
//!   then execute repeatedly with `$1`-style numeric parameters re-bound
//!   per execution — no re-parse, no re-plan.
//! * [`ResultStream`] — a pull-based stream of [`ResultBatch`]es; the
//!   columnar scan path delivers struct-of-arrays batches end to end and
//!   rows materialize only when the consumer asks
//!   ([`ResultBatch::rows`]).
//! * [`QueryTicket`] — every execution's cancel token + live progress
//!   counters; [`QueryStats`] summarizes the run once the stream
//!   finishes.
//! * Admission control — a semaphore-bounded slot pool
//!   ([`AdmissionConfig`]): executions queue for a slot instead of
//!   oversubscribing the machine, and *heavy* queries (estimated bytes
//!   over a threshold) additionally share a smaller heavy-slot pool so
//!   a burst of full-sky sweeps cannot starve interactive cone searches.

use crate::exec::{
    compile_into_scan, drive_into_scan, launch, plan_uses_columnar, BatchHandle, ExecEnv, ExecMode,
    ResultBatch, Row, ScanTotals, TicketCore,
};
use crate::parser::parse_statement;
use crate::plan::{plan, MatchInput, PlanNode, QueryPlan, QuerySource};
use crate::session::{Session, SessionConfig, SessionInfo, SessionShared};
use crate::QueryError;
use sdss_storage::{CostModel, ObjectStore, ResultSet, ResultSetBuilder, TagStore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Which store the root scans of a query were routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// At least one scan read full photometric objects.
    Full,
    /// No scan touched the full store: every leaf ran on the tag
    /// vertical partition or a stored (tag-shaped) session set.
    TagOnly,
}

/// Timing, routing and scan statistics for one finished execution.
#[derive(Debug, Clone)]
pub struct QueryStats {
    pub route: RouteChoice,
    /// Did every scan leaf run on the compiled columnar batch path?
    pub columnar: bool,
    /// Time spent queued for an admission slot before execution began.
    pub queue_time: Duration,
    /// Latency from execution start (admission granted, threads
    /// launched) until the first row reached the consumer — the ASAP
    /// metric. Parse/plan time is *not* included: `prepare` is a
    /// separate phase.
    pub time_to_first_row: Option<Duration>,
    /// Execution wall time (excludes parse/plan and queueing).
    pub total_time: Duration,
    /// Rows delivered to the consumer.
    pub rows: usize,
    /// Rows the producers pushed into the channel fabric, counted at the
    /// batch edge (per-worker safe — every scan worker bumps one shared
    /// atomic on its own sends). Under LIMIT or cancellation this can
    /// exceed `rows`; sessions accumulate it into `SessionStats`.
    pub rows_emitted: u64,
    /// Batches delivered to the consumer.
    pub batches: usize,
    /// Worker-thread slots this execution held (= scan workers granted
    /// at admission).
    pub workers_granted: usize,
    /// Scan workers that actually ran (morsel workers, serial drivers
    /// and interpreted fallbacks all register).
    pub workers_used: usize,
    /// Bytes scanned per worker, in worker completion order — the
    /// balance check for the parallel-efficiency numbers.
    pub worker_bytes: Vec<u64>,
    /// Container morsels dispatched across all scan workers (0 when no
    /// morsel queue was involved, e.g. interpreted fallbacks).
    pub morsels: u64,
    /// Scan-side totals: bytes/containers touched, exact geometry
    /// tests, and cover-cache hit/miss counts.
    pub scan: ScanTotals,
}

/// A fully materialized query result.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    pub stats: QueryStats,
}

/// Plan-time cost prediction for one prepared query, summed over every
/// scan leaf of the plan (set operations have several).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostEstimate {
    /// Predicted number of rows the scans will yield (before residual
    /// predicates).
    pub est_rows: f64,
    /// Bytes the scans will read (exact for whole-container reads).
    pub est_bytes: u64,
    /// Predicted single-server scan seconds at the cost model's
    /// calibrated bandwidth.
    pub est_seconds: f64,
    pub containers_full: usize,
    pub containers_partial: usize,
    /// At least one scan has no spatial restriction (whole-store sweep).
    pub full_sweep: bool,
}

/// Per-MATCH-leaf sizing accumulated alongside the cost estimate in the
/// same plan walk (so the two can never drift): probe-side morsels (the
/// join's actual parallelism surface — the build side is read once by
/// the coordinator, not drained by workers) and the containers the MATCH
/// leaves contributed to the estimate's totals, which `planned_workers`
/// swaps back out so columnar leaves sharing a set-op plan keep their
/// own surface.
#[derive(Debug, Clone, Copy, Default)]
struct MatchSurface {
    probe_morsels: usize,
    est_containers: usize,
}

/// Admission-control configuration: the slot pool bounding concurrent
/// scan **worker threads** (not query count — a query holds one slot per
/// granted scan worker, so an 8-worker sweep occupies the machine like 8
/// single-worker queries).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Total worker-thread slots across all executing queries; waiters
    /// queue cost-ordered (shortest estimated query first, with a
    /// starvation bound).
    pub max_worker_slots: usize,
    /// Estimated scan bytes at or above which a query is *heavy*.
    pub heavy_bytes: u64,
    /// How many heavy queries may execute at once (clamped to at least 1
    /// so heavy queries always make progress).
    pub max_heavy: usize,
    /// Cap on scan workers granted to one query — the intra-query
    /// parallelism degree (clamped to at least 1).
    pub max_workers_per_query: usize,
    /// Starvation bound for the cost-ordered queue: once a waiter has
    /// been bypassed by this many later-arriving queries it becomes a
    /// barrier no later arrival may pass.
    pub max_bypass: u32,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        AdmissionConfig {
            // Enough slots for one full-width sweep plus interactive
            // queries alongside it.
            max_worker_slots: (2 * cores).max(4),
            heavy_bytes: 64 << 20,
            max_heavy: 2,
            max_workers_per_query: cores.max(1),
            max_bypass: 4,
        }
    }
}

/// A point-in-time view of the admission state. All slot counts are in
/// worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Worker-thread slots currently held by executing queries.
    pub running: usize,
    /// Queries blocked waiting for slots.
    pub queued: usize,
    /// High-water mark of `running` since the archive was built.
    pub peak_running: usize,
}

/// One queued admission request.
#[derive(Debug)]
struct Waiter {
    id: u64,
    weight: usize,
    heavy: bool,
    est_seconds: f64,
    /// Later-arriving queries that dispatched ahead of this one.
    bypass: u32,
}

#[derive(Debug)]
struct SlotState {
    free: usize,
    heavy_free: usize,
    total: usize,
    max_bypass: u32,
    /// Waiting queries in arrival order.
    waiters: Vec<Waiter>,
    next_id: u64,
    running: usize,
    peak_running: usize,
}

/// A weighted counting semaphore over (general, heavy) worker slots with
/// a **cost-ordered** wait queue: among the waiters that fit the free
/// slots, the one with the smallest `est_seconds` dispatches first
/// (short interactive queries jump queued sweeps). Every dispatch that
/// overtakes an earlier arrival increments the overtaken waiters'
/// bypass counts; a waiter at the bound becomes a barrier — nothing
/// later passes it, so the pool drains until the starved query fits.
#[derive(Debug)]
struct Slots {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slots {
    fn new(cfg: &AdmissionConfig) -> Slots {
        let total = cfg.max_worker_slots.max(1);
        Slots {
            state: Mutex::new(SlotState {
                free: total,
                heavy_free: cfg.max_heavy.clamp(1, total),
                total,
                max_bypass: cfg.max_bypass,
                waiters: Vec::new(),
                next_id: 0,
                running: 0,
                peak_running: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn fits(st: &SlotState, w: &Waiter) -> bool {
        w.weight <= st.free && (!w.heavy || st.heavy_free > 0)
    }

    /// The waiter that should dispatch next, if any fits right now.
    fn chosen(st: &SlotState) -> Option<usize> {
        // A starved waiter is a barrier: it dispatches next or nothing
        // does (the pool drains until it fits).
        if let Some(pos) = st.waiters.iter().position(|w| w.bypass >= st.max_bypass) {
            return Self::fits(st, &st.waiters[pos]).then_some(pos);
        }
        // Cost order: cheapest eligible first; `min_by` keeps the first
        // (earliest-arrival) of equal estimates, so FIFO breaks ties.
        st.waiters
            .iter()
            .enumerate()
            .filter(|(_, w)| Self::fits(st, w))
            .min_by(|(_, a), (_, b)| a.est_seconds.total_cmp(&b.est_seconds))
            .map(|(pos, _)| pos)
    }

    /// Take `pos` out of the queue and claim its slots. Earlier arrivals
    /// still waiting were just bypassed.
    fn dispatch(st: &mut SlotState, pos: usize) -> Waiter {
        let w = st.waiters.remove(pos);
        for earlier in &mut st.waiters[..pos] {
            earlier.bypass += 1;
        }
        st.free -= w.weight;
        if w.heavy {
            st.heavy_free -= 1;
        }
        st.running += w.weight;
        st.peak_running = st.peak_running.max(st.running);
        w
    }

    /// Blocking acquire of `weight` worker slots (clamped to the pool
    /// size so wide queries always fit eventually).
    fn acquire(self: &Arc<Slots>, weight: usize, heavy: bool, est_seconds: f64) -> SlotGuard {
        let mut st = self.state.lock().unwrap();
        let weight = weight.clamp(1, st.total);
        let id = st.next_id;
        st.next_id += 1;
        st.waiters.push(Waiter {
            id,
            weight,
            heavy,
            est_seconds,
            bypass: 0,
        });
        loop {
            if let Some(pos) = Self::chosen(&st) {
                if st.waiters[pos].id == id {
                    let w = Self::dispatch(&mut st, pos);
                    drop(st);
                    // Another waiter may also fit in what's left.
                    self.cv.notify_all();
                    return SlotGuard {
                        slots: self.clone(),
                        weight: w.weight,
                        heavy,
                    };
                }
                // Someone else should go first; make sure they're awake.
                self.cv.notify_all();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Non-blocking acquire: `None` when the slots aren't free right now
    /// or queued queries are ahead (try never jumps the queue).
    fn try_acquire(self: &Arc<Slots>, weight: usize, heavy: bool) -> Option<SlotGuard> {
        let mut st = self.state.lock().unwrap();
        let weight = weight.clamp(1, st.total);
        let probe = Waiter {
            id: 0,
            weight,
            heavy,
            est_seconds: 0.0,
            bypass: 0,
        };
        if !st.waiters.is_empty() || !Self::fits(&st, &probe) {
            return None;
        }
        st.free -= weight;
        if heavy {
            st.heavy_free -= 1;
        }
        st.running += weight;
        st.peak_running = st.peak_running.max(st.running);
        drop(st);
        Some(SlotGuard {
            slots: self.clone(),
            weight,
            heavy,
        })
    }

    fn snapshot(&self) -> AdmissionSnapshot {
        let st = self.state.lock().unwrap();
        AdmissionSnapshot {
            running: st.running,
            queued: st.waiters.len(),
            peak_running: st.peak_running,
        }
    }
}

/// Holds one execution's worker slots; returning them on drop wakes
/// queued queries.
#[derive(Debug)]
struct SlotGuard {
    slots: Arc<Slots>,
    weight: usize,
    heavy: bool,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut st = self.slots.state.lock().unwrap();
        st.free += self.weight;
        if self.heavy {
            st.heavy_free += 1;
        }
        st.running -= self.weight;
        drop(st);
        self.slots.cv.notify_all();
    }
}

/// Archive-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArchiveConfig {
    /// Cover level override for all scans (None = store default).
    pub cover_level: Option<u8>,
    /// Columnar compilation vs forced interpretation (default: Auto).
    pub mode: ExecMode,
    /// Calibration for plan-time cost estimates.
    pub cost_model: CostModel,
    /// The execution slot pool.
    pub admission: AdmissionConfig,
}

#[derive(Debug)]
struct ArchiveInner {
    store: Arc<ObjectStore>,
    tags: Option<Arc<TagStore>>,
    config: ArchiveConfig,
    slots: Arc<Slots>,
    /// Session registry: weak handles to every live session workspace,
    /// pruned on access (observability only — sessions own their sets).
    sessions: Mutex<Vec<Weak<SessionShared>>>,
    next_session_id: AtomicU64,
}

/// The shared archive handle: clone it freely, send it across threads;
/// every clone talks to the same stores and the same admission pool.
#[derive(Debug, Clone)]
pub struct Archive {
    inner: Arc<ArchiveInner>,
}

impl Archive {
    /// An archive over the given stores with default configuration.
    /// Accepts owned stores or pre-shared `Arc`s.
    pub fn new(store: impl Into<Arc<ObjectStore>>, tags: Option<Arc<TagStore>>) -> Archive {
        Archive::with_config(store, tags, ArchiveConfig::default())
    }

    pub fn with_config(
        store: impl Into<Arc<ObjectStore>>,
        tags: Option<Arc<TagStore>>,
        config: ArchiveConfig,
    ) -> Archive {
        Archive {
            inner: Arc::new(ArchiveInner {
                store: store.into(),
                tags,
                slots: Arc::new(Slots::new(&config.admission)),
                config,
                sessions: Mutex::new(Vec::new()),
                next_session_id: AtomicU64::new(1),
            }),
        }
    }

    /// Open a session workspace with default quotas: a per-user
    /// namespace of named server-side result sets that `INTO` / `FROM
    /// <set>` queries compose over. Each call opens an isolated
    /// namespace; clone the returned [`Session`] to share one workspace
    /// across threads.
    pub fn session(&self) -> Session {
        self.session_with(SessionConfig::default())
    }

    /// Open a session workspace with explicit quotas.
    pub fn session_with(&self, config: SessionConfig) -> Session {
        Session::open(self.clone(), config)
    }

    /// Live session workspaces (id, set/row/byte/query counts), pruning
    /// dropped sessions from the registry as a side effect.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        let mut reg = self.inner.sessions.lock().unwrap();
        reg.retain(|w| w.strong_count() > 0);
        reg.iter()
            .filter_map(|w| w.upgrade())
            .map(|s| s.info())
            .collect()
    }

    /// Allocate an archive-unique session id.
    pub(crate) fn alloc_session_id(&self) -> u64 {
        self.inner.next_session_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a new session in the observability registry, pruning
    /// dead entries so churning sessions can't grow the vec unbounded.
    pub(crate) fn register_session(&self, shared: &Arc<SessionShared>) {
        let mut reg = self.inner.sessions.lock().unwrap();
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(shared));
    }

    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.inner.store
    }

    pub fn tags(&self) -> Option<&Arc<TagStore>> {
        self.inner.tags.as_ref()
    }

    pub fn config(&self) -> &ArchiveConfig {
        &self.inner.config
    }

    /// Current admission-control state (running / queued / peak).
    pub fn admission(&self) -> AdmissionSnapshot {
        self.inner.slots.snapshot()
    }

    /// Parse and plan without executing (EXPLAIN). Accepts the full
    /// statement form, including a trailing `INTO <name>`.
    pub fn explain(&self, sql: &str) -> Result<QueryPlan, QueryError> {
        let (query, trailing_into) = parse_statement(sql)?;
        let mut query_plan = plan(&query, self.inner.tags.is_some())?;
        if let Some(name) = trailing_into {
            query_plan.set_into(name)?;
        }
        Ok(query_plan)
    }

    /// Parse + plan + estimate once; the returned [`Prepared`] executes
    /// any number of times (concurrently, with fresh parameters) without
    /// repeating any of that work.
    ///
    /// Queries over stored sets (`FROM <set>`, `INTO <set>`) need a
    /// session workspace to resolve the names against — prepare those
    /// through [`Session::prepare`]; here they error.
    pub fn prepare(&self, sql: &str) -> Result<Prepared, QueryError> {
        self.prepare_in(sql, Arc::new(HashMap::new()), None)
    }

    /// The shared prepare path: `sets` is the session's pinned stored-set
    /// snapshot (empty for sessionless prepares) and `workspace` the
    /// session the statement runs under (required for `INTO`).
    pub(crate) fn prepare_in(
        &self,
        sql: &str,
        sets: Arc<HashMap<String, Arc<ResultSet>>>,
        workspace: Option<Arc<SessionShared>>,
    ) -> Result<Prepared, QueryError> {
        let query_plan = self.explain(sql)?;
        if query_plan.into.is_some() && workspace.is_none() {
            return Err(QueryError::Exec(
                "INTO requires a session workspace (use Archive::session)".to_string(),
            ));
        }
        // Pin only the sets this statement actually scans — a long-lived
        // Prepared must not keep the whole workspace's memory alive
        // after sets it never references are dropped.
        let referenced = query_plan.root.referenced_sets();
        let sets: Arc<HashMap<String, Arc<ResultSet>>> = if referenced.is_empty() {
            Arc::new(HashMap::new())
        } else {
            Arc::new(
                referenced
                    .iter()
                    .filter_map(|n| sets.get(*n).map(|s| (n.to_string(), s.clone())))
                    .collect(),
            )
        };
        let route = route_of(&query_plan.root);
        let columnar = plan_uses_columnar(
            &query_plan.root,
            self.inner.tags.is_some(),
            self.inner.config.mode,
        );
        let (estimate, match_surface) = self.estimate_plan(&query_plan.root, &sets)?;
        let heavy = estimate.est_bytes >= self.inner.config.admission.heavy_bytes;
        let (match_probe_morsels, match_est_containers) =
            (match_surface.probe_morsels, match_surface.est_containers);
        Ok(Prepared {
            archive: self.clone(),
            columns: query_plan.root.columns(),
            into: query_plan.into.clone(),
            plan: Arc::new(query_plan),
            sets,
            workspace,
            route,
            columnar,
            estimate,
            heavy,
            match_probe_morsels,
            match_est_containers,
        })
    }

    /// Prepare, execute without parameters, and collect every row.
    pub fn run(&self, sql: &str) -> Result<QueryOutput, QueryError> {
        self.prepare(sql)?.run()
    }

    /// One-shot convenience: run and return the rows *and* the execution
    /// statistics as a pair, so callers that only want timing / scan
    /// counters don't hand-roll the stream loop. (The stats are the same
    /// object as `output.stats`; the pair form just makes the common
    /// `let (out, stats) = ...` destructure direct.)
    pub fn run_with_stats(&self, sql: &str) -> Result<(QueryOutput, QueryStats), QueryError> {
        let output = self.run(sql)?;
        let stats = output.stats.clone();
        Ok((output, stats))
    }

    /// Sum per-scan-leaf estimates from container statistics + the HTM
    /// cover (base stores) or materialized row/byte/chunk counts (stored
    /// sets — exact, the set is resident). Reads no object data; covers
    /// memoize in the stores' cover caches, so repeated prepares of a
    /// hot region cost nothing.
    fn estimate_plan(
        &self,
        node: &PlanNode,
        sets: &HashMap<String, Arc<ResultSet>>,
    ) -> Result<(CostEstimate, MatchSurface), QueryError> {
        let mut est = CostEstimate::default();
        let mut surface = MatchSurface::default();
        self.accumulate_estimate(node, sets, &mut est, &mut surface)?;
        Ok((est, surface))
    }

    fn accumulate_estimate(
        &self,
        node: &PlanNode,
        sets: &HashMap<String, Arc<ResultSet>>,
        est: &mut CostEstimate,
        surface: &mut MatchSurface,
    ) -> Result<(), QueryError> {
        match node {
            PlanNode::Scan(s) => {
                let model = &self.inner.config.cost_model;
                if let QuerySource::Match(m) = &s.source {
                    // Cost from both inputs' exact row counts: stored
                    // sets are resident (exact); an archive input prices
                    // a whole tag sweep. Pair multiplicity is
                    // data-dependent, so est_rows carries the probe-side
                    // row count (the scan driver), and est_seconds adds
                    // a per-probe zone-lookup term on top of the byte
                    // cost of reading both sides.
                    let mut probe_rows = 0.0;
                    for (input, is_probe) in [(&m.a, true), (&m.b, false)] {
                        let (rows, bytes, full, partial) = match input {
                            MatchInput::Set(name) => {
                                let set = sets.get(name).ok_or_else(|| {
                                    QueryError::Unknown(format!(
                                        "stored set {name} (prepare through a session \
                                         workspace that holds it)"
                                    ))
                                })?;
                                (set.rows() as f64, set.bytes() as u64, set.n_chunks(), 0)
                            }
                            MatchInput::Archive => {
                                est.full_sweep = true;
                                let tags = self.inner.tags.as_ref().ok_or_else(|| {
                                    QueryError::Type(
                                        "MATCH against the archive requires the tag store"
                                            .to_string(),
                                    )
                                })?;
                                let leaf = model.estimate_sweep(tags.containers());
                                (
                                    leaf.est_rows,
                                    leaf.est_bytes,
                                    leaf.containers_full,
                                    leaf.containers_partial,
                                )
                            }
                        };
                        if is_probe {
                            probe_rows = rows;
                            surface.probe_morsels += full + partial;
                        }
                        // The surface mirrors exactly what this arm adds
                        // to the estimate, so `planned_workers`' swap-out
                        // subtraction can never drift from the totals.
                        surface.est_containers += full + partial;
                        est.est_bytes += bytes;
                        est.est_seconds += bytes as f64 / model.scan_bandwidth_bps;
                        est.containers_full += full;
                        est.containers_partial += partial;
                    }
                    est.est_rows += probe_rows;
                    // Per-probe zone lookup (a small HTM cover per probe
                    // row) dominates the join — see the ROADMAP's
                    // cover-memoization open item; the queue orders on
                    // est_seconds, so underpricing this would let heavy
                    // joins jump interactive queries.
                    est.est_seconds += probe_rows * model.match_probe_seconds;
                    return Ok(());
                }
                if let QuerySource::Set(name) = &s.source {
                    // Stored-set stats are exact: the set is resident and
                    // scans read it whole (chunks are the containers).
                    let set = sets.get(name).ok_or_else(|| {
                        QueryError::Unknown(format!(
                            "stored set {name} (prepare through a session workspace \
                             that holds it)"
                        ))
                    })?;
                    est.est_rows += set.rows() as f64;
                    est.est_bytes += set.bytes() as u64;
                    est.est_seconds += set.bytes() as f64 / model.scan_bandwidth_bps;
                    est.containers_full += set.n_chunks();
                    return Ok(());
                }
                let tag_route = s.source == QuerySource::Tag && self.inner.tags.is_some();
                let leaf = match (&s.domain, tag_route) {
                    (Some(domain), true) => {
                        let tags = self.inner.tags.as_ref().expect("tag_route checked");
                        model.estimate_tags(tags, domain)?
                    }
                    (Some(domain), false) => model.estimate(&self.inner.store, domain)?,
                    (None, true) => {
                        est.full_sweep = true;
                        let tags = self.inner.tags.as_ref().expect("tag_route checked");
                        model.estimate_sweep(tags.containers())
                    }
                    (None, false) => {
                        est.full_sweep = true;
                        model.estimate_sweep(self.inner.store.containers())
                    }
                };
                est.est_rows += leaf.est_rows;
                est.est_bytes += leaf.est_bytes;
                est.est_seconds += leaf.est_seconds;
                est.containers_full += leaf.containers_full;
                est.containers_partial += leaf.containers_partial;
            }
            PlanNode::Sort { child, .. }
            | PlanNode::Limit { child, .. }
            | PlanNode::Aggregate { child, .. } => {
                self.accumulate_estimate(child, sets, est, surface)?
            }
            PlanNode::Set { left, right, .. } => {
                self.accumulate_estimate(left, sets, est, surface)?;
                self.accumulate_estimate(right, sets, est, surface)?;
            }
        }
        Ok(())
    }
}

/// Scan leaves of a plan (set operations have several running at once).
fn count_scan_leaves(node: &PlanNode) -> usize {
    match node {
        PlanNode::Scan(_) => 1,
        PlanNode::Sort { child, .. }
        | PlanNode::Limit { child, .. }
        | PlanNode::Aggregate { child, .. } => count_scan_leaves(child),
        PlanNode::Set { left, right, .. } => count_scan_leaves(left) + count_scan_leaves(right),
    }
}

/// Does any scan leaf run a MATCH join? Match joins parallelize over
/// probe-side morsels even though they are not compiled-columnar scans,
/// so the worker grant treats them like columnar plans.
fn plan_has_match(node: &PlanNode) -> bool {
    match node {
        PlanNode::Scan(s) => matches!(s.source, QuerySource::Match(_)),
        PlanNode::Sort { child, .. }
        | PlanNode::Limit { child, .. }
        | PlanNode::Aggregate { child, .. } => plan_has_match(child),
        PlanNode::Set { left, right, .. } => plan_has_match(left) || plan_has_match(right),
    }
}

fn route_of(node: &PlanNode) -> RouteChoice {
    fn any_full(node: &PlanNode) -> bool {
        match node {
            PlanNode::Scan(s) => s.source == QuerySource::Full,
            PlanNode::Sort { child, .. } | PlanNode::Limit { child, .. } => any_full(child),
            PlanNode::Aggregate { child, .. } => any_full(child),
            PlanNode::Set { left, right, .. } => any_full(left) || any_full(right),
        }
    }
    if any_full(node) {
        RouteChoice::Full
    } else {
        RouteChoice::TagOnly
    }
}

/// A parsed + planned + estimated query, ready to execute any number of
/// times. Cheap to clone; clones share the plan (and, for
/// session-prepared statements, the pinned stored-set snapshot).
#[derive(Debug, Clone)]
pub struct Prepared {
    archive: Archive,
    plan: Arc<QueryPlan>,
    columns: Vec<String>,
    /// Stored sets pinned at prepare time: `FROM <set>` leaves read
    /// these snapshots even if the session later drops or replaces the
    /// name (the `Arc` keeps the data alive).
    sets: Arc<HashMap<String, Arc<ResultSet>>>,
    /// `INTO <name>` target, when this statement materializes a set.
    into: Option<String>,
    /// The session workspace this statement runs under (set when
    /// prepared via [`Session::prepare`]; executions report their stats
    /// into its `SessionStats`).
    workspace: Option<Arc<SessionShared>>,
    route: RouteChoice,
    columnar: bool,
    estimate: CostEstimate,
    heavy: bool,
    /// Probe-side morsel count summed over MATCH leaves (0 when the
    /// plan has none). Worker grants for match leaves cap here rather
    /// than at the estimate's container total, which also counts the
    /// build side — slots granted past the probe morsel count could
    /// never be used.
    match_probe_morsels: usize,
    /// Containers the MATCH leaves contributed to the cost estimate
    /// (probe + build sides) — subtracted back out so co-existing
    /// columnar leaves keep their own parallelism surface.
    match_est_containers: usize,
}

impl Prepared {
    /// The Query Execution Tree this statement will run.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// EXPLAIN-style rendering: the plan-time cost estimate (the same
    /// numbers the admission queue orders on), then the QET. The
    /// estimate line carries `est_rows` / `est_bytes` / `containers` /
    /// `est_seconds` / `planned_workers` / `route` so EXPLAIN and the
    /// admission decision tell one story.
    pub fn explain(&self) -> String {
        let est = &self.estimate;
        format!(
            "Estimate: est_rows={:.0} est_bytes={} containers={}+{} \
             est_seconds={:.4} planned_workers={} route={:?} heavy={} \
             columnar={} full_sweep={}\n{}",
            est.est_rows,
            est.est_bytes,
            est.containers_full,
            est.containers_partial,
            est.est_seconds,
            self.planned_workers(),
            self.route,
            self.heavy,
            self.columnar,
            est.full_sweep,
            self.plan.explain(),
        )
    }

    /// The materialization target (`INTO <name>`), if any.
    pub fn into_set(&self) -> Option<&str> {
        self.into.as_deref()
    }

    pub(crate) fn archive(&self) -> &Archive {
        &self.archive
    }

    pub(crate) fn workspace(&self) -> Option<&Arc<SessionShared>> {
        self.workspace.as_ref()
    }

    /// The plan-time cost prediction (rows / bytes / containers).
    pub fn estimate(&self) -> &CostEstimate {
        &self.estimate
    }

    /// Number of `$N` parameters each execution must bind.
    pub fn n_params(&self) -> usize {
        self.plan.n_params
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn route(&self) -> RouteChoice {
        self.route
    }

    /// Plan-time prediction: will every scan leaf run on the compiled
    /// columnar path? ([`QueryStats::columnar`] is the per-execution
    /// truth, judged after parameter binding.)
    pub fn columnar(&self) -> bool {
        self.columnar
    }

    /// Would this execution occupy a heavy admission slot?
    pub fn is_heavy(&self) -> bool {
        self.heavy
    }

    /// Scan workers an execution will be granted — and the worker-thread
    /// slots it will hold while running. Every scan leaf needs at least
    /// one thread (set operations run their sides concurrently), so the
    /// grant never drops below the leaf count; beyond that, only
    /// compiled columnar plans parallelize, bounded by the per-query
    /// cap, the pool size, and the number of touched containers (a
    /// one-container cone search gains nothing from a second worker).
    pub fn planned_workers(&self) -> usize {
        let leaves = count_scan_leaves(&self.plan.root).max(1);
        let has_match = plan_has_match(&self.plan.root);
        if !self.columnar && !has_match {
            return leaves;
        }
        // The parallelism surface: touched containers for columnar
        // scan leaves plus probe-side morsels for MATCH leaves. The
        // estimate's container total counts MATCH build sides too,
        // which workers never drain — granting past the probe morsels
        // would hold slots the execution can never use — so the MATCH
        // contribution is swapped out for the probe morsel count while
        // any co-existing columnar leaves keep their own surface.
        let est_containers = self.estimate.containers_full + self.estimate.containers_partial;
        let containers = if has_match {
            est_containers.saturating_sub(self.match_est_containers) + self.match_probe_morsels
        } else {
            est_containers
        };
        let cfg = &self.archive.inner.config.admission;
        cfg.max_workers_per_query
            .max(1)
            .min(cfg.max_worker_slots.max(1))
            .min(containers.max(1))
            .max(leaves)
    }

    /// Execute with no parameters, streaming batches.
    pub fn stream(&self) -> Result<ResultStream, QueryError> {
        self.stream_with(&[])
    }

    /// Execute with `$N` parameters bound positionally (`params[0]` is
    /// `$1`). Binding substitutes literals into a clone of the plan —
    /// no re-parse, no re-plan, spatial covers and routing reused as-is.
    /// Blocks while the admission pool is full (the queue), then
    /// launches execution threads and returns the pull end.
    ///
    /// **Deadlock note:** an open [`ResultStream`] holds its admission
    /// slots (one per granted worker, see [`Prepared::planned_workers`])
    /// until dropped or finished. A caller whose open streams already
    /// hold enough of the `max_worker_slots` pool that this execution's
    /// grant cannot fit waits for slots only it can free — layer nested
    /// queries over open streams with [`Prepared::try_stream_with`]
    /// instead.
    pub fn stream_with(&self, params: &[f64]) -> Result<ResultStream, QueryError> {
        self.reject_into_stream()?;
        self.stream_raw(params)
    }

    /// `INTO` statements materialize server-side: the archive drives the
    /// stream into the session's writer sink, so handing the pull end to
    /// a caller would be two consumers fighting over one stream.
    fn reject_into_stream(&self) -> Result<(), QueryError> {
        match &self.into {
            Some(name) => Err(QueryError::Exec(format!(
                "INTO {name} materializes server-side; execute it with run()/run_with()"
            ))),
            None => Ok(()),
        }
    }

    /// The admission + launch path, with no `INTO` guard — the session
    /// writer sink uses this to drive the materializing stream itself.
    pub(crate) fn stream_raw(&self, params: &[f64]) -> Result<ResultStream, QueryError> {
        let root = self.bind_root(params)?;
        let queued_at = Instant::now();
        let slot = self.archive.inner.slots.acquire(
            self.planned_workers(),
            self.heavy,
            self.estimate.est_seconds,
        );
        Ok(self.launch_stream(root, slot, queued_at.elapsed()))
    }

    /// Non-blocking variant of [`Prepared::stream`]: errors immediately
    /// when the admission pool has no free (heavy-)slot.
    pub fn try_stream(&self) -> Result<ResultStream, QueryError> {
        self.try_stream_with(&[])
    }

    /// Non-blocking variant of [`Prepared::stream_with`]: errors
    /// immediately when the admission pool has no free (heavy-)slot
    /// instead of queueing, so callers that hold open streams can issue
    /// nested queries without risking self-deadlock.
    pub fn try_stream_with(&self, params: &[f64]) -> Result<ResultStream, QueryError> {
        self.reject_into_stream()?;
        let root = self.bind_root(params)?;
        let slot = self
            .archive
            .inner
            .slots
            .try_acquire(self.planned_workers(), self.heavy)
            .ok_or_else(|| {
                QueryError::Exec("admission pool is full (try again later)".to_string())
            })?;
        Ok(self.launch_stream(root, slot, Duration::ZERO))
    }

    fn bind_root(&self, params: &[f64]) -> Result<PlanNode, QueryError> {
        if params.len() != self.plan.n_params {
            return Err(QueryError::Exec(format!(
                "query takes {} parameter(s), got {}",
                self.plan.n_params,
                params.len()
            )));
        }
        if params.is_empty() {
            Ok(self.plan.root.clone())
        } else {
            self.plan.root.bind_params(params)
        }
    }

    /// The post-admission half of an execution: spawn the node threads
    /// and wrap the pull end.
    fn launch_stream(&self, root: PlanNode, slot: SlotGuard, queue_time: Duration) -> ResultStream {
        let inner = &self.archive.inner;
        // The execution-truth flag: judged on the *bound* plan (binding
        // can only widen compilability — e.g. a parameter in a position
        // the static gate judged conservatively).
        let columnar = plan_uses_columnar(&root, inner.tags.is_some(), inner.config.mode);
        let ticket = Arc::new(TicketCore::default());
        // The granted slots split across the plan's scan leaves (set
        // operations run several concurrently): `leaves * per_leaf <=
        // granted`, so the execution never runs more scan threads than
        // it holds slots for. (`planned_workers` grants at least one
        // slot per leaf; the only exception is a pool smaller than the
        // plan's leaf count, where the clamp to the pool size leaves
        // each leaf its mandatory single thread.)
        let workers_granted = slot.weight;
        let leaves = count_scan_leaves(&root).max(1);
        let env = ExecEnv {
            store: inner.store.clone(),
            tags: inner.tags.clone(),
            sets: self.sets.clone(),
            cover_level: inner.config.cover_level,
            mode: inner.config.mode,
            workers: (workers_granted / leaves).max(1),
        };
        let started = Instant::now();
        let handle = launch(&env, root, &ticket);
        ResultStream {
            handle,
            ticket: QueryTicket { core: ticket },
            route: self.route,
            columnar,
            queue_time,
            started,
            first: None,
            rows: 0,
            batches: 0,
            workers_granted,
            finished: false,
            workspace: self.workspace.clone(),
            _slot: slot,
        }
    }

    /// Execute with no parameters and collect every row (or, for `INTO`
    /// statements, materialize the named set server-side and return the
    /// empty-rows output carrying the execution stats).
    pub fn run(&self) -> Result<QueryOutput, QueryError> {
        self.run_with(&[])
    }

    /// Execute with parameters and collect every row. `INTO` statements
    /// fold the result into their session set instead of returning rows.
    pub fn run_with(&self, params: &[f64]) -> Result<QueryOutput, QueryError> {
        if self.into.is_some() {
            return crate::session::run_into(self, params);
        }
        self.stream_with(params)?.collect_output()
    }

    /// The **direct columnar INTO fast path**: when the statement is a
    /// bare tag- or set-routed scan with a compilable predicate, the
    /// materialization projects whole tag records straight out of the
    /// scan's [`sdss_storage::ColumnBatch`] lanes into the
    /// [`ResultSetBuilder`] — no per-objid full-store fetch, no dedup
    /// hash (tag containers and stored sets hold each object once), no
    /// channel fabric. Returns `Ok(None)` when the plan shape is
    /// ineligible (full-store route, set operations, sort/limit stacks,
    /// non-compilable predicates) — the caller falls back to the
    /// stream-and-fetch path, which handles every shape.
    ///
    /// The sink enforces `budget` live per pushed row, so a quota abort
    /// stops the scan exactly like the slow path's mid-stream check.
    pub(crate) fn run_into_columnar(
        &self,
        params: &[f64],
        set_name: &str,
        chunk_rows: usize,
        budget: u64,
    ) -> Result<Option<(ResultSet, QueryStats)>, QueryError> {
        let inner = &self.archive.inner;
        let root = self.bind_root(params)?;
        let PlanNode::Scan(spec) = &root else {
            return Ok(None);
        };
        let Some(pred) = compile_into_scan(spec, inner.tags.is_some(), inner.config.mode) else {
            return Ok(None);
        };
        // The fold is one serial driver — hold one worker slot. (The
        // scan runs at memory bandwidth; the builder push is the
        // bottleneck, not scan parallelism.)
        let queued_at = Instant::now();
        let slot = inner
            .slots
            .acquire(1, self.heavy, self.estimate.est_seconds);
        let queue_time = queued_at.elapsed();
        let started = Instant::now();
        let ticket = Arc::new(TicketCore::default());
        let mut builder = ResultSetBuilder::new(chunk_rows);
        let result = drive_into_scan(
            inner.tags.clone(),
            &self.sets,
            spec,
            pred,
            inner.config.cover_level,
            &ticket,
            |tag, htm20| {
                builder.push(tag, htm20);
                if builder.bytes() as u64 > budget {
                    return Err(QueryError::Exec(format!(
                        "session byte quota exceeded materializing `{set_name}`: \
                         {} bytes available, {} rows already folded",
                        budget,
                        builder.rows()
                    )));
                }
                Ok(())
            },
        );
        drop(slot);
        result?;
        let worker_scans = ticket.worker_scans();
        let totals = ticket.totals();
        let stats = QueryStats {
            route: self.route,
            columnar: true,
            queue_time,
            time_to_first_row: None,
            total_time: started.elapsed(),
            // The sink consumed every selected row — report it like the
            // stream-and-fetch route does, so SessionStats.rows_delivered
            // doesn't depend on which INTO route executed.
            rows: totals.rows_scanned as usize,
            rows_emitted: ticket.rows_emitted(),
            batches: totals.batches_emitted as usize,
            workers_granted: 1,
            workers_used: worker_scans.len(),
            worker_bytes: worker_scans.iter().map(|w| w.bytes_scanned).collect(),
            morsels: worker_scans.iter().map(|w| w.morsels).sum(),
            scan: totals,
        };
        Ok(Some((builder.finish(), stats)))
    }
}

/// Live progress + cancellation for one execution. Clones share state;
/// hand one to a dashboard thread and call [`QueryTicket::cancel`] from
/// anywhere.
#[derive(Debug, Clone)]
pub struct QueryTicket {
    core: Arc<TicketCore>,
}

impl QueryTicket {
    /// Request cooperative cancellation: scan leaves stop between
    /// batches (already-buffered batches may still arrive).
    pub fn cancel(&self) {
        self.core.cancel();
    }

    pub fn is_cancelled(&self) -> bool {
        self.core.is_cancelled()
    }

    /// Scan-side progress so far (rows/batches produced, bytes read).
    pub fn progress(&self) -> ScanTotals {
        self.core.totals()
    }

    /// The first execution-thread failure, if any (a failed producer
    /// otherwise looks like a clean early end-of-stream).
    pub fn failure(&self) -> Option<String> {
        self.core.failure()
    }
}

/// The pull end of one execution: iterate [`ResultBatch`]es as they
/// arrive (ASAP push upstream, pull at the edge), then call
/// [`ResultStream::finish`] for the [`QueryStats`].
///
/// Dropping the stream mid-flight tears execution down: node threads
/// observe the closed channel and exit. The admission slot is held until
/// the stream is dropped or finished.
pub struct ResultStream {
    handle: BatchHandle,
    ticket: QueryTicket,
    route: RouteChoice,
    columnar: bool,
    queue_time: Duration,
    started: Instant,
    first: Option<Duration>,
    rows: usize,
    batches: usize,
    workers_granted: usize,
    finished: bool,
    /// Session this execution runs under: [`ResultStream::finish`]
    /// reports the final stats into its accumulated `SessionStats`.
    workspace: Option<Arc<SessionShared>>,
    _slot: SlotGuard,
}

impl ResultStream {
    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.handle.columns
    }

    /// This execution's cancel/progress ticket.
    pub fn ticket(&self) -> QueryTicket {
        self.ticket.clone()
    }

    /// The next batch, blocking until one arrives or the plan finishes.
    pub fn next_batch(&mut self) -> Option<ResultBatch> {
        if self.finished {
            return None;
        }
        match self.handle.rx.recv() {
            Ok(batch) => {
                if self.first.is_none() && !batch.is_empty() {
                    self.first = Some(self.started.elapsed());
                }
                self.rows += batch.len();
                self.batches += 1;
                Some(batch)
            }
            Err(_) => {
                self.finished = true;
                None
            }
        }
    }

    /// Statistics for what this stream consumed. Scan-side totals are
    /// final once the stream has fully drained (or execution was
    /// cancelled and wound down).
    pub fn finish(self) -> QueryStats {
        // The consumer is done: cancel so producers still scanning stop
        // at their next morsel/batch check. On a fully drained plan this
        // is a no-op (everything already exited); after a LIMIT cut the
        // stream short, it keeps scan workers from burning CPU on
        // morsels nobody will read — the slots return when `self` drops
        // at the end of this call, and unaccounted background work is
        // exactly what admission exists to prevent.
        self.ticket.cancel();
        let worker_scans = self.ticket.core.worker_scans();
        let stats = QueryStats {
            route: self.route,
            columnar: self.columnar,
            queue_time: self.queue_time,
            time_to_first_row: self.first,
            total_time: self.started.elapsed(),
            rows: self.rows,
            rows_emitted: self.ticket.core.rows_emitted(),
            batches: self.batches,
            workers_granted: self.workers_granted,
            workers_used: worker_scans.len(),
            worker_bytes: worker_scans.iter().map(|w| w.bytes_scanned).collect(),
            morsels: worker_scans.iter().map(|w| w.morsels).sum(),
            scan: self.ticket.core.totals(),
        };
        if let Some(ws) = &self.workspace {
            ws.note_query(&stats);
        }
        stats
    }

    /// The first execution-thread failure, if any. Meaningful once the
    /// stream has drained: a dead producer closes its channel exactly
    /// like a finished one, so callers that need the distinction check
    /// here (or use [`ResultStream::collect_output`], which does).
    pub fn failure(&self) -> Option<String> {
        self.ticket.failure()
    }

    /// Drain everything, materializing rows at the edge. Errors if an
    /// execution thread failed mid-flight (the rows would be silently
    /// truncated otherwise).
    pub fn collect_output(mut self) -> Result<QueryOutput, QueryError> {
        let columns = self.columns().to_vec();
        let mut rows: Vec<Row> = Vec::new();
        while let Some(batch) = self.next_batch() {
            batch.append_rows(&mut rows);
        }
        if let Some(msg) = self.failure() {
            return Err(QueryError::Exec(msg));
        }
        Ok(QueryOutput {
            columns,
            rows,
            stats: self.finish(),
        })
    }
}

impl Iterator for ResultStream {
    type Item = ResultBatch;

    fn next(&mut self) -> Option<ResultBatch> {
        self.next_batch()
    }
}

/// Abandoning a stream cancels its execution: without this, blocking
/// nodes (Sort/Aggregate/Set) would keep draining their children to
/// completion on detached threads *after* the admission slot returns to
/// the pool — unaccounted background work admission exists to prevent.
impl Drop for ResultStream {
    fn drop(&mut self) {
        self.ticket.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Value;
    use sdss_catalog::{PhotoObj, SkyModel};
    use sdss_htm::Region;
    use sdss_storage::StoreConfig;

    fn setup(seed: u64) -> (Archive, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let tags = TagStore::from_store(&store);
        (Archive::new(store, Some(Arc::new(tags))), objs)
    }

    #[test]
    fn cone_query_matches_brute_force() {
        let (archive, objs) = setup(1);
        let out = archive
            .run("SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < 21")
            .unwrap();
        let domain = Region::circle(185.0, 15.0, 1.5).unwrap();
        let want: Vec<&PhotoObj> = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()) && o.mag(2) < 21.0)
            .collect();
        assert_eq!(out.rows.len(), want.len());
        assert_eq!(out.stats.route, RouteChoice::TagOnly);
        assert_eq!(out.columns, vec!["objid", "ra", "dec", "r"]);
        // ids agree
        let mut got: Vec<u64> = out.rows.iter().map(|r| r[0].as_id().unwrap()).collect();
        let mut exp: Vec<u64> = want.iter().map(|o| o.obj_id).collect();
        got.sort_unstable();
        exp.sort_unstable();
        assert_eq!(got, exp);
        // Scan accounting flowed through the ticket into the stats.
        assert!(out.stats.scan.bytes_scanned > 0);
        assert_eq!(
            out.stats.scan.cover_cache_hits + out.stats.scan.cover_cache_misses,
            1
        );
    }

    #[test]
    fn full_route_when_needed() {
        let (archive, objs) = setup(2);
        let out = archive
            .run("SELECT objid, psf_r FROM photoobj WHERE CIRCLE(185, 15, 1) AND psf_r < 21")
            .unwrap();
        assert_eq!(out.stats.route, RouteChoice::Full);
        let domain = Region::circle(185.0, 15.0, 1.0).unwrap();
        let want = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()) && o.bands[2].psf_mag < 21.0)
            .count();
        assert_eq!(out.rows.len(), want);
    }

    #[test]
    fn order_by_and_limit() {
        let (archive, _) = setup(3);
        let out = archive
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2) ORDER BY r LIMIT 5")
            .unwrap();
        assert!(out.rows.len() <= 5);
        // Sorted ascending by r.
        for w in out.rows.windows(2) {
            assert!(w[0][1].as_num().unwrap() <= w[1][1].as_num().unwrap());
        }
        // DESC gives the reverse extreme.
        let desc = archive
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2) ORDER BY r DESC LIMIT 1")
            .unwrap();
        let all = archive
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2)")
            .unwrap();
        let max_r = all
            .rows
            .iter()
            .map(|r| r[1].as_num().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(desc.rows[0][1].as_num().unwrap(), max_r);
    }

    #[test]
    fn aggregates_over_region() {
        let (archive, objs) = setup(4);
        let out = archive
            .run("SELECT COUNT(*), MIN(r), MAX(r), AVG(r) FROM photoobj WHERE CIRCLE(185, 15, 2)")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
        let rs: Vec<f64> = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()))
            .map(|o| o.mag(2) as f64)
            .collect();
        let row = &out.rows[0];
        assert_eq!(row[0].as_num().unwrap() as usize, rs.len());
        let min = rs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!((row[1].as_num().unwrap() - min).abs() < 1e-9);
        assert!((row[2].as_num().unwrap() - max).abs() < 1e-9);
        assert!((row[3].as_num().unwrap() - avg).abs() < 1e-6);
    }

    #[test]
    fn set_operations() {
        let (archive, objs) = setup(5);
        let bright = "SELECT objid FROM photoobj WHERE r < 20";
        let galaxies = "SELECT objid FROM photoobj WHERE class = 'GALAXY'";
        let inter = archive
            .run(&format!("({bright}) INTERSECT ({galaxies})"))
            .unwrap();
        let expect_inter = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 && o.class == sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(inter.rows.len(), expect_inter);

        let except = archive
            .run(&format!("({bright}) EXCEPT ({galaxies})"))
            .unwrap();
        let expect_except = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 && o.class != sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(except.rows.len(), expect_except);

        let union = archive
            .run(&format!("({bright}) UNION ({galaxies})"))
            .unwrap();
        let expect_union = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 || o.class == sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(union.rows.len(), expect_union);
    }

    #[test]
    fn sample_reduces_rows_deterministically() {
        let (archive, _) = setup(6);
        let all = archive.run("SELECT objid FROM photoobj").unwrap();
        let s1 = archive
            .run("SELECT objid FROM photoobj SAMPLE 0.2")
            .unwrap();
        let s2 = archive
            .run("SELECT objid FROM photoobj SAMPLE 0.2")
            .unwrap();
        assert_eq!(s1.rows.len(), s2.rows.len());
        assert!(s1.rows.len() < all.rows.len() / 2);
        assert!(!s1.rows.is_empty());
    }

    #[test]
    fn streaming_early_drop_stops_consumption() {
        let (archive, _) = setup(7);
        let prepared = archive.prepare("SELECT objid FROM photoobj").unwrap();
        let mut stream = prepared.stream().unwrap();
        let first = stream.next_batch().expect("at least one batch");
        assert!(!first.is_empty());
        // Dropping mid-flight releases the slot and tears down cleanly.
        drop(stream);
        assert_eq!(archive.admission().running, 0);
    }

    #[test]
    fn time_to_first_row_is_recorded() {
        let (archive, _) = setup(8);
        let out = archive
            .run("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 3)")
            .unwrap();
        let stats = out.stats;
        assert!(stats.time_to_first_row.is_some());
        assert!(stats.time_to_first_row.unwrap() <= stats.total_time);
        assert_eq!(stats.rows, out.rows.len());
        assert!(stats.batches >= 1);
    }

    #[test]
    fn dist_function_in_predicate() {
        let (archive, objs) = setup(9);
        // DIST is not extracted spatially (it's a scalar function), so it
        // scans everything — correctness check only.
        let out = archive
            .run("SELECT objid FROM photoobj WHERE DIST(185, 15) < 1.0")
            .unwrap();
        let center = sdss_skycoords::SkyPos::new(185.0, 15.0).unwrap().unit_vec();
        let want = objs
            .iter()
            .filter(|o| o.unit_vec().separation_deg(center) < 1.0)
            .count();
        assert_eq!(out.rows.len(), want);
    }

    #[test]
    fn empty_result_is_not_an_error() {
        let (archive, _) = setup(10);
        let out = archive
            .run("SELECT objid FROM photoobj WHERE r < 0")
            .unwrap();
        assert!(out.rows.is_empty());
        assert!(out.stats.time_to_first_row.is_none());
    }

    #[test]
    fn unknown_attributes_rejected_at_prepare_time() {
        let (archive, _) = setup(11);
        assert!(archive.prepare("SELECT qqq FROM photoobj").is_err());
    }

    #[test]
    fn archive_without_tags_still_answers() {
        let objs = SkyModel::small(12).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let archive = Archive::new(store, None);
        let out = archive
            .run("SELECT objid FROM photoobj WHERE r < 20")
            .unwrap();
        let want = objs.iter().filter(|o| o.mag(2) < 20.0).count();
        assert_eq!(out.rows.len(), want);
        assert_eq!(out.stats.route, RouteChoice::Full);
    }

    #[test]
    fn values_are_typed() {
        let (archive, _) = setup(13);
        let out = archive
            .run("SELECT class, r FROM photoobj WHERE CIRCLE(185, 15, 0.5)")
            .unwrap();
        for row in &out.rows {
            assert!(matches!(row[0], Value::Str(_)));
            assert!(matches!(row[1], Value::Num(_)));
        }
    }

    #[test]
    fn estimate_predicts_cone_scan() {
        let (archive, _) = setup(14);
        let small = archive
            .prepare("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 0.5)")
            .unwrap();
        let big = archive
            .prepare("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 3)")
            .unwrap();
        assert!(small.estimate().est_bytes > 0);
        assert!(big.estimate().est_bytes > small.estimate().est_bytes);
        assert!(big.estimate().est_rows > small.estimate().est_rows);
        assert!(!small.estimate().full_sweep);
        let sweep = archive.prepare("SELECT objid FROM photoobj").unwrap();
        assert!(sweep.estimate().full_sweep);
        // The estimate matched reality: the executed scan read exactly
        // the predicted bytes (whole-container reads are exact).
        let out = small.run().unwrap();
        assert_eq!(out.stats.scan.bytes_scanned, small.estimate().est_bytes);
    }

    #[test]
    fn columnar_batches_survive_to_the_edge() {
        let (archive, _) = setup(15);
        let prepared = archive
            .prepare("SELECT objid, ra, r, class FROM photoobj WHERE r < 21")
            .unwrap();
        assert!(prepared.columnar());
        let mut stream = prepared.stream().unwrap();
        let mut saw_columnar = false;
        while let Some(batch) = stream.next_batch() {
            // Every batch off the compiled scan path is still columnar
            // here — nothing flattened to rows inside the fabric.
            saw_columnar |= batch.is_columnar();
            assert!(batch.is_columnar());
        }
        assert!(saw_columnar);
    }

    #[test]
    fn archive_types_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Archive>();
        check::<Prepared>();
        check::<QueryTicket>();
        fn check_send<T: Send>() {}
        check_send::<ResultStream>();
    }

    fn slots_cfg(max_worker_slots: usize, max_heavy: usize, max_bypass: u32) -> AdmissionConfig {
        AdmissionConfig {
            max_worker_slots,
            heavy_bytes: 1,
            max_heavy,
            max_workers_per_query: max_worker_slots,
            max_bypass,
        }
    }

    #[test]
    fn admission_slots_block_and_release() {
        let slots = Arc::new(Slots::new(&slots_cfg(2, 1, 4)));
        let a = slots.acquire(1, false, 1.0);
        let b = slots.acquire(1, true, 1.0);
        assert_eq!(slots.snapshot().running, 2);
        // Third acquire must wait until one guard drops.
        let slots2 = slots.clone();
        let t = std::thread::spawn(move || {
            let _c = slots2.acquire(1, false, 1.0);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(slots.snapshot().queued, 1);
        drop(a);
        t.join().unwrap();
        assert_eq!(slots.snapshot().queued, 0);
        drop(b);
        assert_eq!(slots.snapshot().running, 0);
        assert_eq!(slots.snapshot().peak_running, 2);
    }

    #[test]
    fn weighted_acquire_accounts_worker_slots() {
        let slots = Arc::new(Slots::new(&slots_cfg(8, 2, 4)));
        // An 8-worker sweep holds 8 slots — the whole pool.
        let sweep = slots.acquire(8, false, 100.0);
        assert_eq!(slots.snapshot().running, 8);
        let slots2 = slots.clone();
        let t = std::thread::spawn(move || {
            let _one = slots2.acquire(1, false, 0.1);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            slots.snapshot().queued,
            1,
            "no room beside a full-width sweep"
        );
        drop(sweep);
        t.join().unwrap();
        assert_eq!(slots.snapshot().running, 0);
        assert_eq!(slots.snapshot().peak_running, 8);
        // Weights clamp to the pool: an oversized request still fits.
        let wide = slots.acquire(64, false, 1.0);
        assert_eq!(slots.snapshot().running, 8);
        drop(wide);
    }

    #[test]
    fn admission_queue_is_cost_ordered() {
        let slots = Arc::new(Slots::new(&slots_cfg(1, 1, 100)));
        let hold = slots.acquire(1, false, 0.0);
        let (order_tx, order_rx) = std::sync::mpsc::channel::<&'static str>();
        // Expensive waiter arrives first...
        let slow = {
            let slots = slots.clone();
            let tx = order_tx.clone();
            std::thread::spawn(move || {
                let g = slots.acquire(1, false, 60.0);
                tx.send("slow").unwrap();
                drop(g);
            })
        };
        while slots.snapshot().queued < 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // ...then a cheap one.
        let fast = {
            let slots = slots.clone();
            let tx = order_tx.clone();
            std::thread::spawn(move || {
                let g = slots.acquire(1, false, 0.5);
                tx.send("fast").unwrap();
                // Hold briefly so "slow" can't finish first by racing.
                std::thread::sleep(Duration::from_millis(20));
                drop(g);
            })
        };
        while slots.snapshot().queued < 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(hold);
        // The cheap query dispatches ahead of the earlier expensive one.
        assert_eq!(
            order_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "fast"
        );
        assert_eq!(
            order_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "slow"
        );
        slow.join().unwrap();
        fast.join().unwrap();
    }

    #[test]
    fn starvation_bound_limits_bypasses() {
        // max_bypass = 2: after two cheap queries overtake it, the
        // expensive waiter becomes a barrier and dispatches next even
        // though cheaper work is queued behind it.
        let slots = Arc::new(Slots::new(&slots_cfg(1, 1, 2)));
        let hold = slots.acquire(1, false, 0.0);
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let mut handles = Vec::new();
        // The starving expensive waiter arrives first.
        {
            let (slots, order) = (slots.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                let g = slots.acquire(1, false, 1000.0);
                order.lock().unwrap().push("slow".into());
                drop(g);
            }));
        }
        while slots.snapshot().queued < 1 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Cheap queries arrive one at a time; each dispatch bypasses the
        // expensive waiter until the bound trips.
        for i in 0..4 {
            let (slots_t, order_t) = (slots.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                let g = slots_t.acquire(1, false, 0.1);
                order_t.lock().unwrap().push(format!("fast{i}"));
                std::thread::sleep(Duration::from_millis(10));
                drop(g);
            }));
            while slots.snapshot().queued < 2 + i {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        drop(hold);
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        let slow_pos = order.iter().position(|s| s == "slow").unwrap();
        assert!(
            slow_pos <= 2,
            "starved waiter dispatched after {slow_pos} bypasses (bound is 2): {order:?}"
        );
    }
}
