//! Hand-written lexer for the query language.

use crate::QueryError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    /// `$N` — a 1-based prepared-statement parameter.
    Param(usize),
    LParen,
    RParen,
    Comma,
    /// `.` — the qualifier separator of `a.attr` / `b.attr` references
    /// in MATCH queries (a dot followed by a digit still lexes as part
    /// of a number).
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Eof,
}

/// A token with its source position (byte offset), for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: usize,
}

/// Tokenize the whole input.
pub fn lex(input: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    tok: Tok::Star,
                    pos: i,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    tok: Tok::Plus,
                    pos: i,
                });
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Minus,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '/' => {
                out.push(Spanned {
                    tok: Tok::Slash,
                    pos: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Tok::Le,
                        pos: i,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Lt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Tok::Ge,
                        pos: i,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        tok: Tok::Gt,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '=' => {
                out.push(Spanned {
                    tok: Tok::Eq,
                    pos: i,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        tok: Tok::Ne,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        pos: i,
                        message: "lone '!' (did you mean '!=')".to_string(),
                    });
                }
            }
            '$' => {
                let start = i;
                i += 1;
                let digits_start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[digits_start..i];
                let n: usize = text.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    message: "'$' must be followed by a parameter number ($1, $2, ...)".to_string(),
                })?;
                if n == 0 {
                    return Err(QueryError::Lex {
                        pos: start,
                        message: "parameter numbers are 1-based ($1, $2, ...)".to_string(),
                    });
                }
                out.push(Spanned {
                    tok: Tok::Param(n),
                    pos: start,
                });
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(QueryError::Lex {
                            pos: start,
                            message: "unterminated string literal".to_string(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        // Doubled quote escapes a quote.
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            '0'..='9' | '.' => {
                if c == '.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    out.push(Spanned {
                        tok: Tok::Dot,
                        pos: i,
                    });
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    message: format!("bad number {text:?}"),
                })?;
                out.push(Spanned {
                    tok: Tok::Num(v),
                    pos: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(QueryError::Lex {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        pos: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT ra, dec FROM photoobj"),
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("ra".into()),
                Tok::Comma,
                Tok::Ident("dec".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("photoobj".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 .5 1e3 2.5e-2"),
            vec![
                Tok::Num(1.0),
                Tok::Num(2.5),
                Tok::Num(0.5),
                Tok::Num(1000.0),
                Tok::Num(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_and_comparisons() {
        assert_eq!(
            toks("a<=b >= < > = != <> + - * /"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks("'GALAXY' 'it''s'"),
            vec![Tok::Str("GALAXY".into()), Tok::Str("it's".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("ra -- this is a comment\n dec"),
            vec![Tok::Ident("ra".into()), Tok::Ident("dec".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match lex("ra ; dec") {
            Err(QueryError::Lex { pos, .. }) => assert_eq!(pos, 3),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("'unterminated").is_err());
        assert!(lex("1.2.3").is_err());
        assert!(lex("a ! b").is_err());
    }
}
