//! Abstract syntax of the archive query language.
//!
//! A deliberately small SQL dialect: single-table selects over `photoobj`
//! with spatial predicates, combined by the paper's set-operation nodes.
//!
//! ```sql
//! SELECT ra, dec, r, g - r FROM photoobj
//! WHERE CIRCLE(185.0, 15.0, 2.0) AND r < 22 AND class = 'GALAXY'
//! ORDER BY r LIMIT 10
//! ```

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Num(f64),
    /// A 64-bit identifier (object ids exceed f64's 53-bit mantissa, so
    /// they get their own exact representation).
    Id(u64),
    Str(String),
    Bool(bool),
    /// SQL NULL (missing attribute).
    Null,
}

impl Value {
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Id(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Exact id extraction: `Id` values directly, integral `Num`s checked.
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(v) => Some(*v),
            Value::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 9.0e15 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v:.6}")
                }
            }
            Value::Id(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators, loosest-binding last in each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Spatial predicates — compiled to HTM region covers, never evaluated
/// row-by-row unless the row falls in a boundary trixel.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialPred {
    /// CIRCLE(ra, dec, radius_deg)
    Circle { ra: f64, dec: f64, radius: f64 },
    /// RECT(ra_lo, ra_hi, dec_lo, dec_hi)
    Rect {
        ra_lo: f64,
        ra_hi: f64,
        dec_lo: f64,
        dec_hi: f64,
    },
    /// BAND('GALACTIC', lat_lo, lat_hi) — latitude band in a named frame.
    Band {
        frame: String,
        lat_lo: f64,
        lat_hi: f64,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Attribute reference (`r`, `ra`, `class`, ...).
    Attr(String),
    Lit(Value),
    Unary(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `x BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Scalar function call (`DIST(ra, dec)`, `COLORDIST(...)`, ...).
    Call(String, Vec<Expr>),
    /// A spatial predicate used as a boolean factor.
    Spatial(SpatialPred),
    /// A numbered prepared-statement parameter (`$1`, `$2`, ...;
    /// 1-based). Bound to a numeric value per execution without
    /// re-parsing or re-planning.
    Param(usize),
}

impl Expr {
    /// All attribute names referenced by this expression.
    pub fn attrs(&self, out: &mut Vec<String>) {
        let mut refs = Vec::new();
        self.attrs_ref(&mut refs);
        out.extend(refs.into_iter().map(str::to_string));
    }

    /// Borrowing variant of [`Expr::attrs`]: collects `&str` references
    /// into the expression, so plan-time routing/validation does not
    /// clone a `String` per attribute occurrence.
    pub fn attrs_ref<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Attr(name) => out.push(name),
            Expr::Lit(_) | Expr::Spatial(_) | Expr::Param(_) => {}
            Expr::Unary(_, e) => e.attrs_ref(out),
            Expr::Bin(_, a, b) => {
                a.attrs_ref(out);
                b.attrs_ref(out);
            }
            Expr::Between(a, b, c) => {
                a.attrs_ref(out);
                b.attrs_ref(out);
                c.attrs_ref(out);
            }
            Expr::Call(name, args) => {
                // Functions may implicitly read position attributes.
                if crate::ops::function_uses_position(name) {
                    out.push("cx");
                    out.push("cy");
                    out.push("cz");
                }
                for a in args {
                    a.attrs_ref(out);
                }
            }
        }
    }

    /// Highest `$N` parameter index referenced (0 = no parameters).
    pub fn max_param(&self) -> usize {
        match self {
            Expr::Param(i) => *i,
            Expr::Attr(_) | Expr::Lit(_) | Expr::Spatial(_) => 0,
            Expr::Unary(_, e) => e.max_param(),
            Expr::Bin(_, a, b) => a.max_param().max(b.max_param()),
            Expr::Between(a, b, c) => a.max_param().max(b.max_param()).max(c.max_param()),
            Expr::Call(_, args) => args.iter().map(Expr::max_param).max().unwrap_or(0),
        }
    }

    /// Clone of this expression with every `$N` replaced by the literal
    /// `params[N-1]`. Errors on a reference past the end of `params`.
    pub fn bind_params(&self, params: &[f64]) -> Result<Expr, crate::QueryError> {
        Ok(match self {
            Expr::Param(i) => {
                let v = params
                    .get(i.checked_sub(1).ok_or_else(bad_param_zero)?)
                    .ok_or_else(|| {
                        crate::QueryError::Exec(format!("parameter ${i} not supplied"))
                    })?;
                Expr::Lit(Value::Num(*v))
            }
            Expr::Attr(_) | Expr::Lit(_) | Expr::Spatial(_) => self.clone(),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.bind_params(params)?)),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Between(a, b, c) => Expr::Between(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
                Box::new(c.bind_params(params)?),
            ),
            Expr::Call(name, args) => Expr::Call(
                name.clone(),
                args.iter()
                    .map(|a| a.bind_params(params))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        })
    }

    /// Rewrite every function call to its canonical (upper-case) name,
    /// recursively. The planner runs this once so row-time evaluation
    /// resolves functions without case-folding allocations.
    pub fn normalize_function_names(&mut self) {
        match self {
            Expr::Attr(_) | Expr::Lit(_) | Expr::Spatial(_) | Expr::Param(_) => {}
            Expr::Unary(_, e) => e.normalize_function_names(),
            Expr::Bin(_, a, b) => {
                a.normalize_function_names();
                b.normalize_function_names();
            }
            Expr::Between(a, b, c) => {
                a.normalize_function_names();
                b.normalize_function_names();
                c.normalize_function_names();
            }
            Expr::Call(name, args) => {
                if let Some(canon) = crate::ops::canonical_function_name(name) {
                    if name != canon {
                        *name = canon.to_string();
                    }
                }
                for a in args {
                    a.normalize_function_names();
                }
            }
        }
    }
}

fn bad_param_zero() -> crate::QueryError {
    crate::QueryError::Exec("parameter indexes are 1-based ($1, $2, ...)".to_string())
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    Count,
    Min,
    Max,
    Sum,
    Avg,
}

impl AggFn {
    pub fn name(self) -> &'static str {
        match self {
            AggFn::Count => "COUNT",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Sum => "SUM",
            AggFn::Avg => "AVG",
        }
    }
}

/// What the FROM clause names: a table (base catalog or stored set), or
/// a `MATCH(a, b, radius_arcsec)` cross-match join source pairing two
/// inputs by angular proximity. Match inputs are themselves table names
/// (`photoobj` / `tag` for the archive, anything else for a stored set).
#[derive(Debug, Clone, PartialEq)]
pub enum TableSource {
    /// `FROM <name>` — `photoobj`, `tag`, or a stored session set.
    Named(String),
    /// `FROM MATCH(a, b, radius_arcsec)` — every ordered pair `(a, b)`
    /// within the radius (identity pairs `a.objid = b.objid` excluded).
    /// Rows expose `a.<attr>` / `b.<attr>` for the tag attributes plus
    /// the `sep_arcsec` pseudo-column.
    Match {
        a: String,
        b: String,
        radius_arcsec: f64,
    },
}

impl TableSource {
    /// The plain table name, if this is a named source.
    pub fn named(&self) -> Option<&str> {
        match self {
            TableSource::Named(n) => Some(n),
            TableSource::Match { .. } => None,
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A scalar expression with its display name.
    Expr { expr: Expr, name: String },
    /// An aggregate over a scalar expression (`None` = COUNT(*)).
    Agg {
        func: AggFn,
        arg: Option<Expr>,
        name: String,
    },
    /// `*` — all tag attributes.
    Star,
}

/// A single SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    /// `SELECT ... INTO <name> FROM ...` — materialize the result as a
    /// named server-side set in the caller's session workspace instead
    /// of streaming it back. Names are case-insensitive (stored
    /// lower-case). Only valid on a top-level SELECT.
    pub into: Option<String>,
    /// `photoobj`, `tag`, the (lower-cased) name of a stored result set
    /// in the caller's session workspace, or a `MATCH(a, b, radius)`
    /// cross-match join source.
    pub table: TableSource,
    pub predicate: Option<Expr>,
    /// ORDER BY column name, descending?
    pub order_by: Option<(String, bool)>,
    pub limit: Option<usize>,
    /// `SAMPLE 0.01` — run on the deterministic sample.
    pub sample: Option<f64>,
}

/// Set operations between selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// A full query: a select or a set-operation tree over selects — the
/// shape of the paper's Query Execution Tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectStmt),
    SetOp(SetOp, Box<Query>, Box<Query>),
}

impl Query {
    /// Walk all SELECT statements.
    pub fn selects(&self) -> Vec<&SelectStmt> {
        let mut out = Vec::new();
        fn walk<'a>(q: &'a Query, out: &mut Vec<&'a SelectStmt>) {
            match q {
                Query::Select(s) => out.push(s),
                Query::SetOp(_, l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_display() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.25).to_string(), "3.250000");
        assert_eq!(Value::Str("GALAXY".into()).to_string(), "GALAXY");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Num(2.5).as_num(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_num(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Num(1.0).as_bool(), None);
    }

    #[test]
    fn expr_attrs_collects_references() {
        // (r < 22) AND (g - r > 0.3)
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::Attr("r".into())),
                Box::new(Expr::Lit(Value::Num(22.0))),
            )),
            Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::Attr("g".into())),
                    Box::new(Expr::Attr("r".into())),
                )),
                Box::new(Expr::Lit(Value::Num(0.3))),
            )),
        );
        let mut attrs = Vec::new();
        e.attrs(&mut attrs);
        attrs.sort();
        attrs.dedup();
        assert_eq!(attrs, vec!["g".to_string(), "r".to_string()]);
    }

    #[test]
    fn selects_walks_set_trees() {
        let s = SelectStmt {
            items: vec![SelectItem::Star],
            into: None,
            table: TableSource::Named("photoobj".into()),
            predicate: None,
            order_by: None,
            limit: None,
            sample: None,
        };
        let q = Query::SetOp(
            SetOp::Union,
            Box::new(Query::Select(s.clone())),
            Box::new(Query::SetOp(
                SetOp::Except,
                Box::new(Query::Select(s.clone())),
                Box::new(Query::Select(s)),
            )),
        );
        assert_eq!(q.selects().len(), 3);
    }
}
