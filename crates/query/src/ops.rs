//! Attribute registry, expression evaluation and the paper's "special
//! operators related to angular distances and complex similarity tests".
//!
//! Both record types implement [`AttrSource`]; the planner uses
//! [`TAG_ATTRS`] to decide whether a query can run on the 64-byte tag
//! partition instead of the ~1.2 KB full objects.

use crate::ast::{BinOp, Expr, UnOp, Value};
use crate::QueryError;
use sdss_catalog::{PhotoObj, TagObject};
use sdss_skycoords::{Frame, SkyPos, UnitVec3};

/// Attributes available on the tag (vertical) partition: the 10 popular
/// attributes of the paper plus the object-id pointer and derived colors.
pub const TAG_ATTRS: [&str; 17] = [
    "objid", "ra", "dec", "cx", "cy", "cz", "u", "g", "r", "i", "z", "ug", "gr", "ri", "iz",
    "size", "class",
];

/// All attributes of the full photometric object exposed to queries.
pub const FULL_ATTRS: [&str; 29] = [
    "objid",
    "ra",
    "dec",
    "cx",
    "cy",
    "cz",
    "u",
    "g",
    "r",
    "i",
    "z",
    "ug",
    "gr",
    "ri",
    "iz",
    "size",
    "class",
    "run",
    "camcol",
    "field",
    "mjd",
    "ra_err",
    "dec_err",
    "psf_r",
    "petro_r50_r",
    "sb_r",
    "extinction_r",
    "spectro_target",
    "parent",
];

/// The scalar function table: canonical (upper-case) name and arity.
/// Lookups compare case-insensitively without allocating, and the
/// planner rewrites every call to the canonical name at plan time so
/// per-row evaluation never pays `to_ascii_uppercase`.
const FUNCTIONS: &[(&str, usize)] = &[
    ("DIST", 2),     // DIST(ra, dec) → degrees to that point
    ("FRAMELAT", 1), // FRAMELAT('GALACTIC') → latitude in frame
    ("FRAMELON", 1),
    ("COLORDIST", 4), // COLORDIST(ug, gr, ri, iz) → color-space distance
    ("ABS", 1),
    ("SQRT", 1),
    ("LOG10", 1),
];

/// Canonical (upper-case, `'static`) spelling of a function name.
pub fn canonical_function_name(name: &str) -> Option<&'static str> {
    FUNCTIONS
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|&(n, _)| n)
}

/// Does a scalar function implicitly read *any* unqualified attribute
/// of its row (position or colors)? Such functions cannot bind to one
/// side of a MATCH pair and are rejected over pair sources.
pub fn function_reads_implicit_attrs(name: &str) -> bool {
    matches!(
        canonical_function_name(name),
        Some("DIST" | "FRAMELAT" | "FRAMELON" | "COLORDIST")
    )
}

/// Does a scalar function read the object position implicitly?
pub fn function_uses_position(name: &str) -> bool {
    matches!(
        canonical_function_name(name),
        Some("DIST" | "FRAMELAT" | "FRAMELON")
    )
}

/// Is `name` a known scalar function, and its expected arity?
pub fn function_arity(name: &str) -> Option<usize> {
    FUNCTIONS
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|&(_, a)| a)
}

/// Anything queries can read attributes from.
pub trait AttrSource {
    /// Attribute by (lower-case) name; `None` if this record type lacks it.
    fn attr(&self, name: &str) -> Option<Value>;

    /// Position for the implicit-position functions.
    fn position(&self) -> UnitVec3;
}

impl AttrSource for TagObject {
    fn attr(&self, name: &str) -> Option<Value> {
        let v = match name {
            "objid" => Value::Id(self.obj_id),
            "ra" => Value::Num(self.pos().ra_deg()),
            "dec" => Value::Num(self.pos().dec_deg()),
            "cx" => Value::Num(self.x),
            "cy" => Value::Num(self.y),
            "cz" => Value::Num(self.z),
            "u" => Value::Num(self.mags[0] as f64),
            "g" => Value::Num(self.mags[1] as f64),
            "r" => Value::Num(self.mags[2] as f64),
            "i" => Value::Num(self.mags[3] as f64),
            "z" => Value::Num(self.mags[4] as f64),
            "ug" => Value::Num(self.color_ug() as f64),
            "gr" => Value::Num(self.color_gr() as f64),
            "ri" => Value::Num(self.color_ri() as f64),
            "iz" => Value::Num(self.color_iz() as f64),
            "size" => Value::Num(self.size as f64),
            "class" => Value::Str(self.class.as_str().to_string()),
            _ => return None,
        };
        Some(v)
    }

    fn position(&self) -> UnitVec3 {
        self.unit_vec()
    }
}

impl AttrSource for PhotoObj {
    fn attr(&self, name: &str) -> Option<Value> {
        let v = match name {
            "objid" => Value::Id(self.obj_id),
            "ra" => Value::Num(self.ra_deg),
            "dec" => Value::Num(self.dec_deg),
            "cx" => Value::Num(self.x),
            "cy" => Value::Num(self.y),
            "cz" => Value::Num(self.z),
            "u" => Value::Num(self.mag(0) as f64),
            "g" => Value::Num(self.mag(1) as f64),
            "r" => Value::Num(self.mag(2) as f64),
            "i" => Value::Num(self.mag(3) as f64),
            "z" => Value::Num(self.mag(4) as f64),
            "ug" => Value::Num(self.color_ug() as f64),
            "gr" => Value::Num(self.color_gr() as f64),
            "ri" => Value::Num(self.color_ri() as f64),
            "iz" => Value::Num(self.color_iz() as f64),
            "size" => Value::Num(self.size_arcsec() as f64),
            "class" => Value::Str(self.class.as_str().to_string()),
            "run" => Value::Num(self.run as f64),
            "camcol" => Value::Num(self.camcol as f64),
            "field" => Value::Num(self.field as f64),
            "mjd" => Value::Num(self.mjd),
            "ra_err" => Value::Num(self.ra_err_arcsec as f64),
            "dec_err" => Value::Num(self.dec_err_arcsec as f64),
            "psf_r" => Value::Num(self.bands[2].psf_mag as f64),
            "petro_r50_r" => Value::Num(self.bands[2].petro_r50 as f64),
            "sb_r" => Value::Num(self.bands[2].surface_brightness as f64),
            "extinction_r" => Value::Num(self.bands[2].extinction as f64),
            "spectro_target" => Value::Bool(self.spectro_target),
            "parent" => Value::Id(self.parent_id),
            _ => return None,
        };
        Some(v)
    }

    fn position(&self) -> UnitVec3 {
        self.unit_vec()
    }
}

/// Evaluate an expression against a record.
///
/// Spatial factors evaluate geometrically (they are normally handled by
/// the cover and only reach here inside OR branches or boundary trixels).
pub fn eval<S: AttrSource>(expr: &Expr, src: &S) -> Result<Value, QueryError> {
    match expr {
        Expr::Attr(name) => src
            .attr(name)
            .ok_or_else(|| QueryError::Unknown(name.clone())),
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Unary(UnOp::Neg, e) => {
            let v = num(eval(e, src)?)?;
            Ok(Value::Num(-v))
        }
        Expr::Unary(UnOp::Not, e) => {
            let v = boolean(eval(e, src)?)?;
            Ok(Value::Bool(!v))
        }
        Expr::Bin(op, a, b) => eval_bin(*op, a, b, src),
        Expr::Between(x, lo, hi) => {
            let xv = num(eval(x, src)?)?;
            let lov = num(eval(lo, src)?)?;
            let hiv = num(eval(hi, src)?)?;
            Ok(Value::Bool(xv >= lov && xv <= hiv))
        }
        Expr::Call(name, args) => eval_call(name, args, src),
        Expr::Spatial(sp) => {
            let domain = crate::plan::spatial_to_domain(sp)?;
            Ok(Value::Bool(domain.contains(src.position())))
        }
        // Parameters are substituted at bind time; reaching one here
        // means the query ran without its parameters.
        Expr::Param(i) => Err(QueryError::Exec(format!("unbound parameter ${i}"))),
    }
}

fn eval_bin<S: AttrSource>(op: BinOp, a: &Expr, b: &Expr, src: &S) -> Result<Value, QueryError> {
    match op {
        BinOp::And => {
            // Short-circuit.
            if !boolean(eval(a, src)?)? {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(boolean(eval(b, src)?)?))
        }
        BinOp::Or => {
            if boolean(eval(a, src)?)? {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(boolean(eval(b, src)?)?))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let x = num(eval(a, src)?)?;
            let y = num(eval(b, src)?)?;
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y, // IEEE semantics; NULL-free engine
                _ => unreachable!(),
            };
            Ok(Value::Num(v))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
            let av = eval(a, src)?;
            let bv = eval(b, src)?;
            let result = match (&av, &bv) {
                (Value::Num(x), Value::Num(y)) => compare_ord(op, x.partial_cmp(y)),
                (Value::Id(x), Value::Id(y)) => compare_ord(op, Some(x.cmp(y))),
                (Value::Id(x), Value::Num(y)) => compare_ord(op, (*x as f64).partial_cmp(y)),
                (Value::Num(x), Value::Id(y)) => compare_ord(op, x.partial_cmp(&(*y as f64))),
                (Value::Str(x), Value::Str(y)) => match op {
                    BinOp::Eq => Some(x.eq_ignore_ascii_case(y)),
                    BinOp::Ne => Some(!x.eq_ignore_ascii_case(y)),
                    _ => compare_ord(op, Some(x.cmp(y))),
                },
                (Value::Bool(x), Value::Bool(y)) => match op {
                    BinOp::Eq => Some(x == y),
                    BinOp::Ne => Some(x != y),
                    _ => None,
                },
                _ => None,
            };
            result
                .map(Value::Bool)
                .ok_or_else(|| QueryError::Type(format!("cannot compare {av:?} with {bv:?}")))
        }
    }
}

fn compare_ord(op: BinOp, ord: Option<std::cmp::Ordering>) -> Option<bool> {
    use std::cmp::Ordering::*;
    let ord = ord?;
    Some(match op {
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        _ => return None,
    })
}

fn eval_call<S: AttrSource>(name: &str, args: &[Expr], src: &S) -> Result<Value, QueryError> {
    // Resolve to the canonical static spelling (planned queries arrive
    // pre-normalized; direct `eval` callers may pass any case) — no
    // per-row string allocation either way.
    let name =
        canonical_function_name(name).ok_or_else(|| QueryError::Unknown(name.to_string()))?;
    let arity = function_arity(name).expect("canonical names have arities");
    if args.len() != arity {
        return Err(QueryError::Type(format!(
            "{name} takes {arity} arguments, got {}",
            args.len()
        )));
    }
    match name {
        // Angular distance (degrees) from the object to a fixed point —
        // the flagship special operator.
        "DIST" => {
            let ra = num(eval(&args[0], src)?)?;
            let dec = num(eval(&args[1], src)?)?;
            let target = SkyPos::new(ra, dec)
                .map_err(|e| QueryError::Type(format!("DIST target: {e}")))?
                .unit_vec();
            Ok(Value::Num(src.position().separation_deg(target)))
        }
        // Latitude / longitude of the object in a named frame: the
        // "linear combinations of the three Cartesian coordinates".
        "FRAMELAT" | "FRAMELON" => {
            let frame_name = match eval(&args[0], src)? {
                Value::Str(s) => s,
                other => return Err(QueryError::Type(format!("frame name, got {other:?}"))),
            };
            let frame = parse_frame(&frame_name)?;
            let pos = SkyPos::from_unit_vec(frame.from_equatorial().apply(src.position()));
            Ok(Value::Num(if name == "FRAMELAT" {
                pos.dec_deg()
            } else {
                pos.ra_deg()
            }))
        }
        // Euclidean distance in 4-color space to a reference color — the
        // "complex similarity tests of object properties like colors".
        "COLORDIST" => {
            let refs = [
                num(eval(&args[0], src)?)?,
                num(eval(&args[1], src)?)?,
                num(eval(&args[2], src)?)?,
                num(eval(&args[3], src)?)?,
            ];
            let mine = [
                num(src
                    .attr("ug")
                    .ok_or_else(|| QueryError::Unknown("ug".into()))?)?,
                num(src
                    .attr("gr")
                    .ok_or_else(|| QueryError::Unknown("gr".into()))?)?,
                num(src
                    .attr("ri")
                    .ok_or_else(|| QueryError::Unknown("ri".into()))?)?,
                num(src
                    .attr("iz")
                    .ok_or_else(|| QueryError::Unknown("iz".into()))?)?,
            ];
            let d2: f64 = refs
                .iter()
                .zip(mine.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            Ok(Value::Num(d2.sqrt()))
        }
        "ABS" => Ok(Value::Num(num(eval(&args[0], src)?)?.abs())),
        "SQRT" => Ok(Value::Num(num(eval(&args[0], src)?)?.sqrt())),
        "LOG10" => Ok(Value::Num(num(eval(&args[0], src)?)?.log10())),
        _ => Err(QueryError::Unknown(name.to_string())),
    }
}

/// Parse a frame name used in BAND(...) / FRAMELAT(...). Alias matching
/// is case-insensitive without allocating (this runs per row for
/// interpreted FRAMELAT/FRAMELON calls).
pub fn parse_frame(name: &str) -> Result<Frame, QueryError> {
    const ALIASES: &[(&str, Frame)] = &[
        ("EQ", Frame::Equatorial),
        ("EQUATORIAL", Frame::Equatorial),
        ("J2000", Frame::Equatorial),
        ("GAL", Frame::Galactic),
        ("GALACTIC", Frame::Galactic),
        ("SGAL", Frame::Supergalactic),
        ("SUPERGALACTIC", Frame::Supergalactic),
        ("ECL", Frame::Ecliptic),
        ("ECLIPTIC", Frame::Ecliptic),
    ];
    ALIASES
        .iter()
        .find(|(alias, _)| alias.eq_ignore_ascii_case(name))
        .map(|&(_, frame)| frame)
        .ok_or_else(|| QueryError::Unknown(format!("frame {name}")))
}

fn num(v: Value) -> Result<f64, QueryError> {
    v.as_num()
        .ok_or_else(|| QueryError::Type(format!("expected number, got {v:?}")))
}

fn boolean(v: Value) -> Result<bool, QueryError> {
    v.as_bool()
        .ok_or_else(|| QueryError::Type(format!("expected boolean, got {v:?}")))
}

/// Pair predicate helpers shared with the hash machine: the gravitational
/// lens condition from the paper — "objects within 10 arcsec of each other
/// which have identical colors, but may have a different brightness".
pub fn lens_pair_condition(
    a: &TagObject,
    b: &TagObject,
    max_sep_arcsec: f64,
    color_tol: f64,
    min_mag_diff: f64,
) -> bool {
    let sep = a.unit_vec().separation_deg(b.unit_vec()) * 3600.0;
    if sep > max_sep_arcsec || a.obj_id == b.obj_id {
        return false;
    }
    let dc = [
        (a.color_ug() - b.color_ug()).abs(),
        (a.color_gr() - b.color_gr()).abs(),
        (a.color_ri() - b.color_ri()).abs(),
        (a.color_iz() - b.color_iz()).abs(),
    ];
    let colors_match = dc.iter().all(|&d| (d as f64) <= color_tol);
    let mag_differs = ((a.mag(2) - b.mag(2)).abs() as f64) >= min_mag_diff;
    colors_match && mag_differs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, SelectItem};
    use crate::parser::parse;
    use sdss_catalog::ObjClass;

    fn tag_at(ra: f64, dec: f64, mags: [f32; 5]) -> TagObject {
        let v = SkyPos::new(ra, dec).unwrap().unit_vec();
        TagObject {
            obj_id: 1,
            x: v.x(),
            y: v.y(),
            z: v.z(),
            mags,
            size: 2.0,
            class: ObjClass::Galaxy,
        }
    }

    fn eval_str(expr_sql: &str, src: &impl AttrSource) -> Value {
        // Parse "SELECT <expr> FROM photoobj" and evaluate the item.
        let q = parse(&format!("SELECT {expr_sql} FROM photoobj")).unwrap();
        let Query::Select(s) = q else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        eval(expr, src).unwrap()
    }

    #[test]
    fn arithmetic_and_colors() {
        let t = tag_at(10.0, 0.0, [20.0, 19.0, 18.5, 18.2, 18.0]);
        assert_eq!(eval_str("g - r", &t), Value::Num(0.5));
        assert_eq!(eval_str("gr", &t).as_num().unwrap(), 0.5);
        assert_eq!(eval_str("2 * r + 1", &t), Value::Num(38.0));
        assert_eq!(eval_str("ABS(0 - 3)", &t), Value::Num(3.0));
        assert_eq!(eval_str("SQRT(16)", &t), Value::Num(4.0));
        assert_eq!(eval_str("LOG10(100)", &t), Value::Num(2.0));
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let t = tag_at(10.0, 0.0, [20.0, 19.0, 18.5, 18.2, 18.0]);
        assert_eq!(eval_str("r < 19", &t), Value::Bool(true));
        assert_eq!(eval_str("r >= 19", &t), Value::Bool(false));
        assert_eq!(eval_str("r BETWEEN 18 AND 19", &t), Value::Bool(true));
        assert_eq!(
            eval_str("class = 'GALAXY' AND r < 19", &t),
            Value::Bool(true)
        );
        assert_eq!(eval_str("class = 'galaxy'", &t), Value::Bool(true));
        assert_eq!(eval_str("NOT (r < 19)", &t), Value::Bool(false));
        assert_eq!(eval_str("r < 10 OR g < 20", &t), Value::Bool(true));
    }

    #[test]
    fn dist_operator() {
        let t = tag_at(10.0, 0.0, [20.0; 5]);
        let d = eval_str("DIST(10, 0)", &t).as_num().unwrap();
        assert!(d.abs() < 1e-9);
        let d = eval_str("DIST(11, 0)", &t).as_num().unwrap();
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn framelat_matches_frames_crate() {
        let t = tag_at(192.85948, 27.12825, [20.0; 5]); // galactic pole
        let b = eval_str("FRAMELAT('GALACTIC')", &t).as_num().unwrap();
        assert!((b - 90.0).abs() < 1e-6, "b = {b}");
        // Unknown frame names error at evaluation time.
        let q = parse("SELECT FRAMELAT('NOPE') FROM photoobj").unwrap();
        let Query::Select(s) = q else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        assert!(matches!(eval(expr, &t), Err(QueryError::Unknown(_))));
    }

    #[test]
    fn colordist_zero_for_own_colors() {
        let t = tag_at(10.0, 5.0, [21.0, 19.8, 19.1, 18.8, 18.6]);
        let expr = format!(
            "COLORDIST({}, {}, {}, {})",
            t.color_ug(),
            t.color_gr(),
            t.color_ri(),
            t.color_iz()
        );
        let d = eval_str(&expr, &t).as_num().unwrap();
        assert!(d < 1e-6, "d = {d}");
    }

    #[test]
    fn type_errors_are_reported() {
        let t = tag_at(10.0, 0.0, [20.0; 5]);
        let q = parse("SELECT r FROM photoobj WHERE class + 1 > 0").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(
            eval(s.predicate.as_ref().unwrap(), &t),
            Err(QueryError::Type(_))
        ));
        // Unknown attribute.
        let q = parse("SELECT r FROM photoobj WHERE nonsense < 1").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(
            eval(s.predicate.as_ref().unwrap(), &t),
            Err(QueryError::Unknown(_))
        ));
    }

    #[test]
    fn full_photoobj_attrs() {
        let objs = sdss_catalog::SkyModel::small(3).generate().unwrap();
        let o = &objs[0];
        for name in FULL_ATTRS {
            assert!(o.attr(name).is_some(), "missing attr {name}");
        }
        // Tag lacks full-only attributes.
        let t = TagObject::from_photo(o);
        assert!(t.attr("psf_r").is_none());
        assert!(t.attr("mjd").is_none());
        for name in TAG_ATTRS {
            assert!(t.attr(name).is_some(), "tag missing {name}");
            // Values must agree between representations.
            if name != "class" {
                let a = o.attr(name).unwrap().as_num().unwrap();
                let b = t.attr(name).unwrap().as_num().unwrap();
                assert!((a - b).abs() < 1e-5, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lens_condition() {
        let a = tag_at(10.0, 0.0, [21.0, 20.0, 19.5, 19.2, 19.0]);
        let mut b = tag_at(10.0 + 5.0 / 3600.0, 0.0, [22.0, 21.0, 20.5, 20.2, 20.0]);
        b.obj_id = 2;
        // Same colors (all differences equal), 1 mag fainter, 5 arcsec away.
        assert!(lens_pair_condition(&a, &b, 10.0, 0.1, 0.5));
        // Too far.
        assert!(!lens_pair_condition(&a, &b, 2.0, 0.1, 0.5));
        // Colors must match.
        let mut c = b;
        c.mags[0] += 1.0; // breaks u-g
        assert!(!lens_pair_condition(&a, &c, 10.0, 0.1, 0.5));
        // Brightness must differ.
        let mut d = a;
        d.obj_id = 3;
        assert!(!lens_pair_condition(&a, &d, 10.0, 0.1, 0.5));
    }
}
