//! Query planning: AST → Query Execution Tree.
//!
//! The planner does three jobs the paper calls out:
//!
//! 1. **Spatial extraction** — top-level conjunctive spatial factors of
//!    the WHERE clause become one HTM [`Domain`] so the scan reads only
//!    covered containers; the residual predicate is evaluated per object.
//! 2. **Routing** — if every attribute the query touches lives on the
//!    64-byte tag record, the plan scans the tag partition ("searched
//!    more than 10 times faster, if no other attributes are involved").
//! 3. **Tree shaping** — set operations become internal QET nodes; sort /
//!    aggregate / limit stack on top of scans.

use crate::ast::{AggFn, Expr, Query, SelectItem, SelectStmt, SetOp, SpatialPred, TableSource};
use crate::ops::{function_arity, FULL_ATTRS, TAG_ATTRS};
use crate::QueryError;
use sdss_htm::{Domain, Region};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of plans built — lets tests assert that prepared
/// queries re-execute without re-planning.
static PLANS_BUILT: AtomicU64 = AtomicU64::new(0);

/// Total number of [`plan`] invocations in this process.
pub fn plans_built() -> u64 {
    PLANS_BUILT.load(Ordering::Relaxed)
}

/// One side of a `MATCH(a, b, radius)` cross-match join: the base
/// archive (its tag partition) or a stored session set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchInput {
    /// The tag vertical partition of the base archive (`photoobj`/`tag`).
    Archive,
    /// A named stored set, resolved against the session's pinned
    /// snapshot at prepare time.
    Set(String),
}

impl MatchInput {
    fn label(&self) -> String {
        match self {
            MatchInput::Archive => "archive".to_string(),
            MatchInput::Set(name) => format!("set:{name}"),
        }
    }
}

/// The `MATCH(a, b, radius_arcsec)` join description carried by a scan
/// leaf: probe side `a` (one morsel per chunk/container), build side `b`
/// (zone-partitioned into an HTM bucket index), and the match radius.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchSpec {
    /// Probe side — its chunks become the scan morsels.
    pub a: MatchInput,
    /// Build side — zone-indexed in memory before probing starts.
    pub b: MatchInput,
    pub radius_arcsec: f64,
}

/// Where a scan leaf reads its rows from. Replaces the old implicit
/// tags-vs-full-store routing flag: a query source is now first-class,
/// and stored session sets sit beside the base stores as equal citizens.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySource {
    /// The ~1.2 KB full photometric objects.
    Full,
    /// The 64-byte tag vertical partition.
    Tag,
    /// A named server-side result set in the caller's session workspace
    /// (resolved to a pinned snapshot at prepare time). Tag-shaped:
    /// exposes exactly the tag attributes, scans columnar.
    Set(String),
    /// A `MATCH(a, b, radius)` cross-match join: rows are the ordered
    /// pairs within the radius, exposing `a.<attr>` / `b.<attr>` plus
    /// `sep_arcsec`. Executes morsel-parallel over the probe side
    /// against the zone-partitioned build side.
    Match(MatchSpec),
}

impl QuerySource {
    /// Short label for EXPLAIN output.
    pub fn label(&self) -> String {
        match self {
            QuerySource::Full => "full".to_string(),
            QuerySource::Tag => "tag".to_string(),
            QuerySource::Set(name) => format!("set:{name}"),
            QuerySource::Match(m) => format!(
                "match:{}~{}@{}\"",
                m.a.label(),
                m.b.label(),
                m.radius_arcsec
            ),
        }
    }
}

/// One scan leaf of the QET.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    pub source: QuerySource,
    /// Spatial restriction (None = whole stored sky). Always `None` for
    /// stored-set sources: sets carry no HTM clustering, so spatial
    /// factors stay in the residual predicate and evaluate row-wise.
    pub domain: Option<Domain>,
    /// Residual predicate after spatial extraction.
    pub predicate: Option<Expr>,
    /// Output columns (name, expression).
    pub columns: Vec<(String, Expr)>,
    /// Deterministic sampling fraction (`SAMPLE 0.01`).
    pub sample: Option<f64>,
}

/// Aggregate description.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFn,
    pub arg: Option<Expr>,
    pub name: String,
}

/// A node of the Query Execution Tree.
#[derive(Debug, Clone)]
pub enum PlanNode {
    Scan(ScanSpec),
    /// Blocking sort on an output column.
    Sort {
        child: Box<PlanNode>,
        key: String,
        desc: bool,
    },
    /// Streaming row-count cutoff.
    Limit {
        child: Box<PlanNode>,
        n: usize,
    },
    /// Blocking aggregation (one output row).
    Aggregate {
        child: Box<PlanNode>,
        aggs: Vec<AggSpec>,
    },
    /// Set operation keyed on `objid` (the paper's bags of
    /// object-pointers).
    Set {
        op: SetOp,
        left: Box<PlanNode>,
        right: Box<PlanNode>,
    },
}

impl PlanNode {
    /// Output column names of this node.
    pub fn columns(&self) -> Vec<String> {
        match self {
            PlanNode::Scan(s) => s.columns.iter().map(|(n, _)| n.clone()).collect(),
            PlanNode::Sort { child, .. } | PlanNode::Limit { child, .. } => child.columns(),
            PlanNode::Aggregate { aggs, .. } => aggs.iter().map(|a| a.name.clone()).collect(),
            PlanNode::Set { left, .. } => left.columns(),
        }
    }

    /// Highest `$N` parameter index referenced anywhere in the tree
    /// (0 = the plan takes no parameters).
    pub fn max_param(&self) -> usize {
        fn scan_max(s: &ScanSpec) -> usize {
            let p = s.predicate.as_ref().map_or(0, Expr::max_param);
            let c = s
                .columns
                .iter()
                .map(|(_, e)| e.max_param())
                .max()
                .unwrap_or(0);
            p.max(c)
        }
        match self {
            PlanNode::Scan(s) => scan_max(s),
            PlanNode::Sort { child, .. } | PlanNode::Limit { child, .. } => child.max_param(),
            PlanNode::Aggregate { child, aggs } => child.max_param().max(
                aggs.iter()
                    .filter_map(|a| a.arg.as_ref())
                    .map(Expr::max_param)
                    .max()
                    .unwrap_or(0),
            ),
            PlanNode::Set { left, right, .. } => left.max_param().max(right.max_param()),
        }
    }

    /// Clone of this tree with every `$N` replaced by `params[N-1]` —
    /// the per-execution bind step of a prepared query. Spatial domains,
    /// routing and node shape are reused untouched; no re-parse, no
    /// re-plan.
    pub fn bind_params(&self, params: &[f64]) -> Result<PlanNode, QueryError> {
        Ok(match self {
            PlanNode::Scan(s) => PlanNode::Scan(ScanSpec {
                source: s.source.clone(),
                domain: s.domain.clone(),
                predicate: s
                    .predicate
                    .as_ref()
                    .map(|p| p.bind_params(params))
                    .transpose()?,
                columns: s
                    .columns
                    .iter()
                    .map(|(n, e)| Ok((n.clone(), e.bind_params(params)?)))
                    .collect::<Result<Vec<_>, QueryError>>()?,
                sample: s.sample,
            }),
            PlanNode::Sort { child, key, desc } => PlanNode::Sort {
                child: Box::new(child.bind_params(params)?),
                key: key.clone(),
                desc: *desc,
            },
            PlanNode::Limit { child, n } => PlanNode::Limit {
                child: Box::new(child.bind_params(params)?),
                n: *n,
            },
            PlanNode::Aggregate { child, aggs } => PlanNode::Aggregate {
                child: Box::new(child.bind_params(params)?),
                aggs: aggs
                    .iter()
                    .map(|a| {
                        Ok(AggSpec {
                            func: a.func,
                            arg: a.arg.as_ref().map(|e| e.bind_params(params)).transpose()?,
                            name: a.name.clone(),
                        })
                    })
                    .collect::<Result<Vec<_>, QueryError>>()?,
            },
            PlanNode::Set { op, left, right } => PlanNode::Set {
                op: *op,
                left: Box::new(left.bind_params(params)?),
                right: Box::new(right.bind_params(params)?),
            },
        })
    }

    /// Names of every stored set this tree scans (deduplicated) — what
    /// a session prepare needs to pin, and nothing more.
    pub fn referenced_sets(&self) -> Vec<&str> {
        fn push<'a>(name: &'a str, out: &mut Vec<&'a str>) {
            if !out.contains(&name) {
                out.push(name);
            }
        }
        fn walk<'a>(node: &'a PlanNode, out: &mut Vec<&'a str>) {
            match node {
                PlanNode::Scan(s) => match &s.source {
                    QuerySource::Set(name) => push(name, out),
                    QuerySource::Match(m) => {
                        for input in [&m.a, &m.b] {
                            if let MatchInput::Set(name) = input {
                                push(name, out);
                            }
                        }
                    }
                    QuerySource::Full | QuerySource::Tag => {}
                },
                PlanNode::Sort { child, .. }
                | PlanNode::Limit { child, .. }
                | PlanNode::Aggregate { child, .. } => walk(child, out),
                PlanNode::Set { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Number of nodes (for tests / EXPLAIN).
    pub fn size(&self) -> usize {
        match self {
            PlanNode::Scan(_) => 1,
            PlanNode::Sort { child, .. } | PlanNode::Limit { child, .. } => 1 + child.size(),
            PlanNode::Aggregate { child, .. } => 1 + child.size(),
            PlanNode::Set { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// EXPLAIN-style rendering.
    pub fn explain(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            PlanNode::Scan(s) => {
                out.push_str(&format!(
                    "{pad}Scan[{}] domain={} predicate={} cols={} sample={:?}\n",
                    s.source.label(),
                    s.domain.is_some(),
                    s.predicate.is_some(),
                    s.columns.len(),
                    s.sample,
                ));
            }
            PlanNode::Sort { child, key, desc } => {
                out.push_str(&format!("{pad}Sort key={key} desc={desc}\n"));
                child.explain(indent + 1, out);
            }
            PlanNode::Limit { child, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                child.explain(indent + 1, out);
            }
            PlanNode::Aggregate { child, aggs } => {
                out.push_str(&format!("{pad}Aggregate {} fns\n", aggs.len()));
                child.explain(indent + 1, out);
            }
            PlanNode::Set { op, left, right } => {
                out.push_str(&format!("{pad}Set {op:?}\n"));
                left.explain(indent + 1, out);
                right.explain(indent + 1, out);
            }
        }
    }
}

/// A complete plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub root: PlanNode,
    /// Number of `$N` parameters the plan expects per execution.
    pub n_params: usize,
    /// Materialization target: `Some(name)` when the statement ends in
    /// `INTO <name>` — execution folds the result into a named session
    /// set instead of streaming it back.
    pub into: Option<String>,
}

impl QueryPlan {
    pub fn explain(&self) -> String {
        let mut s = String::new();
        if let Some(name) = &self.into {
            s.push_str(&format!("Into[{name}]\n"));
        }
        self.root.explain(0, &mut s);
        s
    }

    /// Attach a statement-level (trailing) `INTO` target, validating it
    /// the same way a select-level one is validated at plan time.
    pub fn set_into(&mut self, name: String) -> Result<(), QueryError> {
        if self.into.is_some() {
            return Err(QueryError::Type(
                "INTO given twice (select-level and statement-level)".to_string(),
            ));
        }
        validate_into(&name, &self.root)?;
        self.into = Some(name);
        Ok(())
    }
}

/// The column an `INTO` materialization treats as the object pointer:
/// `objid`, or — for MATCH sources, whose natural projections are
/// qualified — `a.objid` / `b.objid` (first present wins). Also used by
/// the session writer sink to locate the pointer at fold time.
pub fn pointer_column(columns: &[String]) -> Option<usize> {
    ["objid", "a.objid", "b.objid"]
        .iter()
        .find_map(|want| columns.iter().position(|c| c == want))
}

/// INTO targets must be legal set names and the materialized rows must
/// carry the object pointer (a stored set is a bag of tagged objects).
fn validate_into(name: &str, root: &PlanNode) -> Result<(), QueryError> {
    if name == "photoobj" || name == "tag" {
        return Err(QueryError::Type(format!(
            "INTO {name}: the base catalog names are reserved"
        )));
    }
    if pointer_column(&root.columns()).is_none() {
        return Err(QueryError::Type(
            "INTO requires objid (or a.objid / b.objid for MATCH) in the \
             select list (stored sets are bags of object pointers)"
                .to_string(),
        ));
    }
    Ok(())
}

/// Compile a parsed query into a QET.
///
/// `tags_available` controls routing: without a tag store every scan goes
/// to the full store.
pub fn plan(query: &Query, tags_available: bool) -> Result<QueryPlan, QueryError> {
    PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
    // Select-level INTO is only meaningful on a top-level plain SELECT;
    // inside a set-operation branch it would be ambiguous about which
    // rows materialize (use the trailing statement form for those).
    let into = match query {
        Query::Select(s) => s.into.clone(),
        Query::SetOp(..) => {
            if query.selects().iter().any(|s| s.into.is_some()) {
                return Err(QueryError::Type(
                    "INTO inside a set-operation branch; put it at the end \
                     of the statement: (..) UNION (..) INTO name"
                        .to_string(),
                ));
            }
            None
        }
    };
    let root = plan_query(query, tags_available)?;
    if let Some(name) = &into {
        validate_into(name, &root)?;
    }
    let n_params = root.max_param();
    Ok(QueryPlan {
        root,
        n_params,
        into,
    })
}

fn plan_query(query: &Query, tags_available: bool) -> Result<PlanNode, QueryError> {
    match query {
        Query::Select(s) => plan_select(s, tags_available),
        Query::SetOp(op, l, r) => {
            let left = plan_query(l, tags_available)?;
            let right = plan_query(r, tags_available)?;
            // Set inputs must expose objid to key on.
            for side in [&left, &right] {
                if !side.columns().iter().any(|c| c == "objid") {
                    return Err(QueryError::Type(
                        "set operations require objid in the select list".to_string(),
                    ));
                }
            }
            if left.columns() != right.columns() {
                return Err(QueryError::Type(
                    "set operation sides must select the same columns".to_string(),
                ));
            }
            Ok(PlanNode::Set {
                op: *op,
                left: Box::new(left),
                right: Box::new(right),
            })
        }
    }
}

fn plan_select(s: &SelectStmt, tags_available: bool) -> Result<PlanNode, QueryError> {
    // Resolve the FROM clause. A MATCH source names two inputs (archive
    // or stored set); any other table name besides the two base catalogs
    // is a stored-set reference, resolved against the session workspace
    // at prepare time.
    let match_spec: Option<MatchSpec> = match &s.table {
        TableSource::Match {
            a,
            b,
            radius_arcsec,
        } => {
            let resolve = |n: &str| {
                if n == "photoobj" || n == "tag" {
                    MatchInput::Archive
                } else {
                    MatchInput::Set(n.to_string())
                }
            };
            let (ma, mb) = (resolve(a), resolve(b));
            if !tags_available && (ma == MatchInput::Archive || mb == MatchInput::Archive) {
                return Err(QueryError::Type(
                    "MATCH against the archive requires the tag store".to_string(),
                ));
            }
            Some(MatchSpec {
                a: ma,
                b: mb,
                radius_arcsec: *radius_arcsec,
            })
        }
        TableSource::Named(_) => None,
    };
    let table_name = s.table.named().unwrap_or("MATCH");
    let set_source = match_spec.is_none() && table_name != "photoobj" && table_name != "tag";

    // --- split the predicate into spatial conjuncts and the residual ---
    // Stored sets have no HTM container clustering to cover, so their
    // spatial factors stay in the residual predicate and evaluate
    // row-wise (compiled `SpatialMask` on the columnar path, geometry in
    // the interpreter otherwise). MATCH pair predicates are inherently
    // row-wise too: the join itself is the spatial restriction.
    let (domain, residual) = match &s.predicate {
        Some(p) if !set_source && match_spec.is_none() => extract_spatial(p)?,
        Some(p) => (None, Some(p.clone())),
        None => (None, None),
    };
    let residual = residual.map(|mut e| {
        e.normalize_function_names();
        e
    });

    // --- projection ---
    // The plan owns its expressions (cloned out of the AST once, here);
    // function names normalize to their canonical spelling at the same
    // time so row-at-a-time evaluation never case-folds.
    let mut columns: Vec<(String, Expr)> = Vec::new();
    let mut aggs: Vec<AggSpec> = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Star => {
                if match_spec.is_some() {
                    return Err(QueryError::Type(
                        "SELECT * is ambiguous over a MATCH source; project \
                         a.<attr> / b.<attr> explicitly"
                            .to_string(),
                    ));
                }
                for a in TAG_ATTRS {
                    columns.push((a.to_string(), Expr::Attr(a.to_string())));
                }
            }
            SelectItem::Expr { expr, name } => {
                let mut expr = expr.clone();
                expr.normalize_function_names();
                columns.push((name.clone(), expr));
            }
            SelectItem::Agg { func, arg, name } => aggs.push(AggSpec {
                func: *func,
                arg: arg.clone().map(|mut e| {
                    e.normalize_function_names();
                    e
                }),
                name: name.clone(),
            }),
        }
    }
    if !aggs.is_empty() && !columns.is_empty() {
        return Err(QueryError::Type(
            "mixing aggregates and plain columns needs GROUP BY, which is not supported"
                .to_string(),
        ));
    }

    // --- collect every referenced attribute for routing & validation ---
    // (borrowed &str names: no per-attribute String clones at plan time)
    let mut attrs: Vec<&str> = Vec::new();
    for (_, e) in &columns {
        e.attrs_ref(&mut attrs);
    }
    for a in &aggs {
        if let Some(e) = &a.arg {
            e.attrs_ref(&mut attrs);
        }
    }
    if let Some(p) = &residual {
        p.attrs_ref(&mut attrs);
    }
    // Order key must be an output column, not a table attribute. The
    // match is case-insensitive (identifiers are, everywhere else in
    // the language) and canonicalizes to the projected column's actual
    // name so execution's by-name key lookup always hits.
    let order_by = match &s.order_by {
        Some((key, desc)) => {
            let canonical = columns
                .iter()
                .map(|(n, _)| n)
                .chain(aggs.iter().map(|a| &a.name))
                .find(|n| n.eq_ignore_ascii_case(key));
            match canonical {
                Some(name) => Some((name.clone(), *desc)),
                None => return Err(QueryError::Unknown(format!("ORDER BY column {key}"))),
            }
        }
        None => None,
    };
    if match_spec.is_some() {
        // MATCH rows are pairs: every attribute must be qualified to a
        // join side (and name a tag attribute — both inputs are
        // tag-shaped) or be the separation pseudo-column.
        for a in &attrs {
            let ok = *a == "sep_arcsec"
                || a.strip_prefix("a.")
                    .or_else(|| a.strip_prefix("b."))
                    .is_some_and(|base| TAG_ATTRS.contains(&base));
            if !ok {
                return Err(QueryError::Unknown(format!(
                    "attribute {a} in a MATCH query (project a.<tag attr>, \
                     b.<tag attr> or sep_arcsec)"
                )));
            }
        }
        // Spatial predicates and implicit-attribute functions (DIST,
        // FRAMELAT, COLORDIST, ...) are as ambiguous over a pair as an
        // unqualified attribute: they would silently bind one side
        // only (or error per pair), so they are rejected rather than
        // mis-answered.
        fn no_rowwise_geometry(e: &Expr) -> Result<(), QueryError> {
            match e {
                Expr::Spatial(_) => Err(QueryError::Type(
                    "spatial predicates are ambiguous over a MATCH source \
                     (restrict the inputs before joining, or filter on \
                     a./b. attributes and sep_arcsec)"
                        .to_string(),
                )),
                Expr::Unary(_, a) => no_rowwise_geometry(a),
                Expr::Bin(_, a, b) => {
                    no_rowwise_geometry(a)?;
                    no_rowwise_geometry(b)
                }
                Expr::Between(a, b, c) => {
                    no_rowwise_geometry(a)?;
                    no_rowwise_geometry(b)?;
                    no_rowwise_geometry(c)
                }
                Expr::Call(name, args) => {
                    if crate::ops::function_reads_implicit_attrs(name) {
                        return Err(QueryError::Type(format!(
                            "{name} reads unqualified row attributes and is \
                             ambiguous over a MATCH source"
                        )));
                    }
                    args.iter().try_for_each(no_rowwise_geometry)
                }
                Expr::Attr(_) | Expr::Lit(_) | Expr::Param(_) => Ok(()),
            }
        }
        if let Some(p) = &residual {
            no_rowwise_geometry(p)?;
        }
        for (_, e) in &columns {
            no_rowwise_geometry(e)?;
        }
        for a in &aggs {
            if let Some(e) = &a.arg {
                no_rowwise_geometry(e)?;
            }
        }
        validate_functions(&columns, &aggs, &residual)?;
    } else {
        validate_names(&attrs, &columns, &aggs, &residual)?;
    }

    let force_tag = table_name == "tag";
    let tag_ok = attrs.iter().all(|a| TAG_ATTRS.contains(a));
    if (force_tag || set_source) && !tag_ok && match_spec.is_none() {
        return Err(QueryError::Type(format!(
            "query against `{table_name}` uses attributes outside the tag record"
        )));
    }
    let source = if let Some(m) = match_spec {
        QuerySource::Match(m)
    } else if set_source {
        QuerySource::Set(table_name.to_string())
    } else if (force_tag || tag_ok) && tags_available {
        QuerySource::Tag
    } else {
        QuerySource::Full
    };

    // Aggregates: the scan emits hidden `__agg_i` columns carrying each
    // aggregate's argument expression; the Aggregate node accumulates
    // over them (COUNT(*) needs no column).
    let scan_columns = if aggs.is_empty() {
        columns
    } else {
        aggs.iter()
            .enumerate()
            .filter_map(|(i, a)| a.arg.clone().map(|e| (format!("__agg_{i}"), e)))
            .collect()
    };

    let mut node = PlanNode::Scan(ScanSpec {
        source,
        domain,
        predicate: residual,
        columns: scan_columns,
        sample: s.sample,
    });

    if !aggs.is_empty() {
        node = PlanNode::Aggregate {
            child: Box::new(node),
            aggs,
        };
    }
    if let Some((key, desc)) = order_by {
        node = PlanNode::Sort {
            child: Box::new(node),
            key,
            desc,
        };
    }
    if let Some(n) = s.limit {
        node = PlanNode::Limit {
            child: Box::new(node),
            n,
        };
    }
    Ok(node)
}

/// Validate attribute and function names against the full schema.
fn validate_names(
    attrs: &[&str],
    columns: &[(String, Expr)],
    aggs: &[AggSpec],
    residual: &Option<Expr>,
) -> Result<(), QueryError> {
    for a in attrs {
        if !FULL_ATTRS.contains(a) {
            return Err(QueryError::Unknown(format!("attribute {a}")));
        }
    }
    validate_functions(columns, aggs, residual)
}

/// Check function names/arities recursively across every expression of
/// the select (shared by named-table and MATCH validation — MATCH does
/// its own attribute checks but functions resolve identically).
fn validate_functions(
    columns: &[(String, Expr)],
    aggs: &[AggSpec],
    residual: &Option<Expr>,
) -> Result<(), QueryError> {
    fn check(e: &Expr) -> Result<(), QueryError> {
        match e {
            Expr::Call(name, args) => {
                match function_arity(name) {
                    Some(n) if n == args.len() => {}
                    Some(n) => {
                        return Err(QueryError::Type(format!(
                            "{name} takes {n} arguments, got {}",
                            args.len()
                        )))
                    }
                    None => return Err(QueryError::Unknown(format!("function {name}"))),
                }
                for a in args {
                    check(a)?;
                }
                Ok(())
            }
            Expr::Unary(_, a) => check(a),
            Expr::Bin(_, a, b) => {
                check(a)?;
                check(b)
            }
            Expr::Between(a, b, c) => {
                check(a)?;
                check(b)?;
                check(c)
            }
            _ => Ok(()),
        }
    }
    for (_, e) in columns {
        check(e)?;
    }
    for a in aggs {
        if let Some(e) = &a.arg {
            check(e)?;
        }
    }
    if let Some(e) = residual {
        check(e)?;
    }
    Ok(())
}

/// Pull top-level conjunctive spatial factors out of a predicate.
/// Returns (combined domain, residual predicate).
fn extract_spatial(pred: &Expr) -> Result<(Option<Domain>, Option<Expr>), QueryError> {
    let mut factors = Vec::new();
    let mut residual = Vec::new();
    split_conjuncts(pred, &mut factors);
    let mut domain: Option<Domain> = None;
    for f in factors {
        match f {
            Expr::Spatial(sp) => {
                let d = spatial_to_domain(&sp)?;
                domain = Some(match domain {
                    None => d,
                    Some(prev) => prev.intersect(&d),
                });
            }
            other => residual.push(other),
        }
    }
    let residual = residual
        .into_iter()
        .reduce(|a, b| Expr::Bin(crate::ast::BinOp::And, Box::new(a), Box::new(b)));
    Ok((domain, residual))
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Bin(crate::ast::BinOp::And, a, b) => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Compile a spatial predicate to an HTM domain.
pub fn spatial_to_domain(sp: &SpatialPred) -> Result<Domain, QueryError> {
    match sp {
        SpatialPred::Circle { ra, dec, radius } => Ok(Region::circle(*ra, *dec, *radius)?),
        SpatialPred::Rect {
            ra_lo,
            ra_hi,
            dec_lo,
            dec_hi,
        } => Ok(Region::rect(*ra_lo, *ra_hi, *dec_lo, *dec_hi)?),
        SpatialPred::Band {
            frame,
            lat_lo,
            lat_hi,
        } => {
            let f = crate::ops::parse_frame(frame)?;
            Ok(Region::band(f, *lat_lo, *lat_hi)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan_sql(sql: &str) -> Result<QueryPlan, QueryError> {
        plan(&parse(sql)?, true)
    }

    #[test]
    fn tag_routing_for_popular_attributes() {
        let p = plan_sql("SELECT ra, dec, r FROM photoobj WHERE r < 20").unwrap();
        match &p.root {
            PlanNode::Scan(s) => assert_eq!(s.source, QuerySource::Tag),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_routing_when_rare_attribute_used() {
        let p = plan_sql("SELECT ra, psf_r FROM photoobj WHERE r < 20").unwrap();
        match &p.root {
            PlanNode::Scan(s) => assert_eq!(s.source, QuerySource::Full),
            other => panic!("{other:?}"),
        }
        // ... even if only the predicate needs it.
        let p = plan_sql("SELECT ra FROM photoobj WHERE mjd > 51000").unwrap();
        match &p.root {
            PlanNode::Scan(s) => assert_eq!(s.source, QuerySource::Full),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_tag_store_forces_full() {
        let p = plan(&parse("SELECT ra FROM photoobj").unwrap(), false).unwrap();
        match &p.root {
            PlanNode::Scan(s) => assert_eq!(s.source, QuerySource::Full),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stored_set_sources_resolve_and_keep_spatial_rowwise() {
        // An unknown table name is a stored-set reference; its spatial
        // factors stay in the residual (sets have no cover to extract).
        let p =
            plan_sql("SELECT objid, r FROM bright WHERE CIRCLE(185, 15, 1) AND r < 20").unwrap();
        match &p.root {
            PlanNode::Scan(s) => {
                assert_eq!(s.source, QuerySource::Set("bright".to_string()));
                assert!(s.domain.is_none(), "sets never get a cover domain");
                let pred = s.predicate.as_ref().expect("whole predicate kept");
                let mut spatial = false;
                fn walk(e: &Expr, found: &mut bool) {
                    match e {
                        Expr::Spatial(_) => *found = true,
                        Expr::Bin(_, a, b) => {
                            walk(a, found);
                            walk(b, found);
                        }
                        _ => {}
                    }
                }
                walk(pred, &mut spatial);
                assert!(spatial, "spatial factor must stay in the residual");
            }
            other => panic!("{other:?}"),
        }
        // Sets are tag-shaped: full-object attributes are rejected.
        assert!(matches!(
            plan_sql("SELECT psf_r FROM bright"),
            Err(QueryError::Type(_))
        ));
        assert!(p.explain().contains("set:bright"));
    }

    #[test]
    fn into_validation() {
        // Select-level INTO needs objid.
        assert!(matches!(
            plan_sql("SELECT ra INTO s FROM photoobj"),
            Err(QueryError::Type(_))
        ));
        let p = plan_sql("SELECT objid, ra INTO s FROM photoobj").unwrap();
        assert_eq!(p.into.as_deref(), Some("s"));
        assert!(p.explain().contains("Into[s]"));
        // Reserved names are rejected.
        assert!(plan_sql("SELECT objid INTO photoobj FROM tag").is_err());
        // INTO buried in a set-op branch is rejected with a pointer to
        // the trailing statement form.
        assert!(
            plan_sql("(SELECT objid INTO s FROM photoobj) UNION (SELECT objid FROM photoobj)")
                .is_err()
        );
        // The trailing form attaches via set_into, once.
        let mut p =
            plan_sql("(SELECT objid FROM photoobj) UNION (SELECT objid FROM photoobj)").unwrap();
        p.set_into("merged".to_string()).unwrap();
        assert_eq!(p.into.as_deref(), Some("merged"));
        assert!(p.set_into("again".to_string()).is_err());
    }

    #[test]
    fn spatial_extraction_removes_factors() {
        let p = plan_sql(
            "SELECT ra FROM photoobj WHERE CIRCLE(185, 15, 2) AND r < 21 AND BAND('GALACTIC', 30, 90)",
        )
        .unwrap();
        match &p.root {
            PlanNode::Scan(s) => {
                let d = s.domain.as_ref().expect("domain extracted");
                // Two intersected spatial factors → intersected domain.
                assert!(!d.convexes().is_empty());
                // The residual predicate only holds r < 21.
                let mut attrs = Vec::new();
                s.predicate.as_ref().unwrap().attrs(&mut attrs);
                assert_eq!(attrs, vec!["r".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spatial_inside_or_stays_in_predicate() {
        // OR-ed spatial factors cannot be extracted conjunctively.
        let p = plan_sql("SELECT ra FROM photoobj WHERE CIRCLE(185, 15, 1) OR r < 15").unwrap();
        match &p.root {
            PlanNode::Scan(s) => {
                assert!(s.domain.is_none());
                assert!(s.predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_stacking_order() {
        let p = plan_sql("SELECT ra, r FROM photoobj WHERE r < 21 ORDER BY r LIMIT 5").unwrap();
        // Limit on top of Sort on top of Scan.
        match &p.root {
            PlanNode::Limit { child, n } => {
                assert_eq!(*n, 5);
                match child.as_ref() {
                    PlanNode::Sort { child, key, desc } => {
                        assert_eq!(key, "r");
                        assert!(!desc);
                        assert!(matches!(child.as_ref(), PlanNode::Scan(_)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.root.size(), 3);
        assert!(p.explain().contains("Limit 5"));
    }

    #[test]
    fn set_ops_need_objid_and_same_columns() {
        assert!(
            plan_sql("(SELECT objid FROM photoobj) UNION (SELECT objid FROM photoobj)").is_ok()
        );
        assert!(plan_sql("(SELECT ra FROM photoobj) UNION (SELECT ra FROM photoobj)").is_err());
        assert!(plan_sql(
            "(SELECT objid, ra FROM photoobj) UNION (SELECT objid, dec FROM photoobj)"
        )
        .is_err());
    }

    #[test]
    fn aggregates_cannot_mix_with_columns() {
        assert!(plan_sql("SELECT COUNT(*), ra FROM photoobj").is_err());
        assert!(plan_sql("SELECT COUNT(*), MAX(r) FROM photoobj").is_ok());
    }

    #[test]
    fn unknown_names_rejected_at_plan_time() {
        assert!(matches!(
            plan_sql("SELECT nonsense FROM photoobj"),
            Err(QueryError::Unknown(_))
        ));
        assert!(matches!(
            plan_sql("SELECT NOSUCHFN(1) FROM photoobj"),
            Err(QueryError::Unknown(_))
        ));
        assert!(matches!(
            plan_sql("SELECT DIST(1) FROM photoobj"),
            Err(QueryError::Type(_))
        ));
        // A non-catalog table name is now a stored-set reference: it
        // plans fine (tag-shaped) and resolution happens at prepare
        // time against the session workspace.
        assert!(plan_sql("SELECT ra FROM spectra").is_ok());
        assert!(matches!(
            plan_sql("SELECT ra FROM photoobj ORDER BY qqq"),
            Err(QueryError::Unknown(_))
        ));
    }

    #[test]
    fn tag_table_rejects_full_attrs() {
        assert!(plan_sql("SELECT psf_r FROM tag").is_err());
        assert!(plan_sql("SELECT r FROM tag").is_ok());
    }

    #[test]
    fn star_expands_to_tag_attrs() {
        let p = plan_sql("SELECT * FROM photoobj").unwrap();
        assert_eq!(p.root.columns().len(), TAG_ATTRS.len());
    }
}
