//! The query engine façade: parse → plan → execute → stream.

use crate::exec::{execute, plan_uses_columnar, ExecCtx, ExecMode, Row};
use crate::parser::parse;
use crate::plan::{plan, PlanNode, QueryPlan, ScanTarget};
use crate::QueryError;
use sdss_storage::{ObjectStore, TagStore};
use std::time::{Duration, Instant};

/// Which store the root scans of a query were routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteChoice {
    /// At least one scan read full photometric objects.
    Full,
    /// Every scan ran on the tag vertical partition.
    TagOnly,
}

/// Timing and routing statistics for one query.
#[derive(Debug, Clone)]
pub struct QueryStats {
    pub route: RouteChoice,
    /// Did every scan leaf run on the compiled columnar batch path?
    pub columnar: bool,
    /// Latency until the first row reached the consumer (the ASAP metric).
    pub time_to_first_row: Option<Duration>,
    pub total_time: Duration,
    pub rows: usize,
}

/// A fully materialized query result.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    pub stats: QueryStats,
}

/// The engine: borrows the stores, compiles and runs query strings.
pub struct Engine<'a> {
    store: &'a ObjectStore,
    tags: Option<&'a TagStore>,
    /// Cover level override for all scans (None = store default).
    pub cover_level: Option<u8>,
    /// Columnar compilation vs forced interpretation (default: Auto).
    pub mode: ExecMode,
}

impl<'a> Engine<'a> {
    pub fn new(store: &'a ObjectStore, tags: Option<&'a TagStore>) -> Engine<'a> {
        Engine {
            store,
            tags,
            cover_level: None,
            mode: ExecMode::Auto,
        }
    }

    /// Parse and plan without executing (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<QueryPlan, QueryError> {
        plan(&parse(sql)?, self.tags.is_some())
    }

    /// Run a query to completion, collecting all rows.
    pub fn run(&self, sql: &str) -> Result<QueryOutput, QueryError> {
        let mut columns = Vec::new();
        let mut rows = Vec::new();
        let stats = self.run_each(sql, |cols, row| {
            if columns.is_empty() {
                columns = cols.to_vec();
            }
            rows.push(row);
            true
        })?;
        Ok(QueryOutput {
            columns,
            rows,
            stats,
        })
    }

    /// Run a query streaming each row into `f` as soon as it is produced
    /// (the paper's ASAP push). `f` returns `false` to cancel.
    pub fn run_each(
        &self,
        sql: &str,
        mut f: impl FnMut(&[String], Row) -> bool,
    ) -> Result<QueryStats, QueryError> {
        let query_plan = self.explain(sql)?;
        let route = route_of(&query_plan.root);
        let columnar = plan_uses_columnar(&query_plan.root, self.tags.is_some(), self.mode);
        let ctx = ExecCtx {
            store: self.store,
            tags: self.tags,
            cover_level: self.cover_level,
            mode: self.mode,
        };
        let start = Instant::now();
        let mut first: Option<Duration> = None;
        let mut n_rows = 0usize;
        execute(&ctx, &query_plan.root, |handle| {
            let columns = handle.columns.clone();
            'outer: for batch in handle.rx.iter() {
                for row in batch {
                    if first.is_none() {
                        first = Some(start.elapsed());
                    }
                    n_rows += 1;
                    if !f(&columns, row) {
                        break 'outer;
                    }
                }
            }
        })?;
        Ok(QueryStats {
            route,
            columnar,
            time_to_first_row: first,
            total_time: start.elapsed(),
            rows: n_rows,
        })
    }
}

fn route_of(node: &PlanNode) -> RouteChoice {
    fn any_full(node: &PlanNode) -> bool {
        match node {
            PlanNode::Scan(s) => s.target == ScanTarget::Full,
            PlanNode::Sort { child, .. } | PlanNode::Limit { child, .. } => any_full(child),
            PlanNode::Aggregate { child, .. } => any_full(child),
            PlanNode::Set { left, right, .. } => any_full(left) || any_full(right),
        }
    }
    if any_full(node) {
        RouteChoice::Full
    } else {
        RouteChoice::TagOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Value;
    use sdss_catalog::{PhotoObj, SkyModel};
    use sdss_htm::Region;
    use sdss_storage::StoreConfig;

    fn setup(seed: u64) -> (ObjectStore, TagStore, Vec<PhotoObj>) {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let tags = TagStore::from_store(&store);
        (store, tags, objs)
    }

    #[test]
    fn cone_query_matches_brute_force() {
        let (store, tags, objs) = setup(1);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT objid, ra, dec, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < 21")
            .unwrap();
        let domain = Region::circle(185.0, 15.0, 1.5).unwrap();
        let want: Vec<&PhotoObj> = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()) && o.mag(2) < 21.0)
            .collect();
        assert_eq!(out.rows.len(), want.len());
        assert_eq!(out.stats.route, RouteChoice::TagOnly);
        assert_eq!(out.columns, vec!["objid", "ra", "dec", "r"]);
        // ids agree
        let mut got: Vec<u64> = out
            .rows
            .iter()
            .map(|r| r[0].as_id().unwrap())
            .collect();
        let mut exp: Vec<u64> = want.iter().map(|o| o.obj_id).collect();
        got.sort_unstable();
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn full_route_when_needed() {
        let (store, tags, objs) = setup(2);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT objid, psf_r FROM photoobj WHERE CIRCLE(185, 15, 1) AND psf_r < 21")
            .unwrap();
        assert_eq!(out.stats.route, RouteChoice::Full);
        let domain = Region::circle(185.0, 15.0, 1.0).unwrap();
        let want = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()) && o.bands[2].psf_mag < 21.0)
            .count();
        assert_eq!(out.rows.len(), want);
    }

    #[test]
    fn order_by_and_limit() {
        let (store, tags, _) = setup(3);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2) ORDER BY r LIMIT 5")
            .unwrap();
        assert!(out.rows.len() <= 5);
        // Sorted ascending by r.
        for w in out.rows.windows(2) {
            assert!(w[0][1].as_num().unwrap() <= w[1][1].as_num().unwrap());
        }
        // DESC gives the reverse extreme.
        let desc = engine
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2) ORDER BY r DESC LIMIT 1")
            .unwrap();
        let all = engine
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 2)")
            .unwrap();
        let max_r = all
            .rows
            .iter()
            .map(|r| r[1].as_num().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(desc.rows[0][1].as_num().unwrap(), max_r);
    }

    #[test]
    fn aggregates_over_region() {
        let (store, tags, objs) = setup(4);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT COUNT(*), MIN(r), MAX(r), AVG(r) FROM photoobj WHERE CIRCLE(185, 15, 2)")
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        let domain = Region::circle(185.0, 15.0, 2.0).unwrap();
        let rs: Vec<f64> = objs
            .iter()
            .filter(|o| domain.contains(o.unit_vec()))
            .map(|o| o.mag(2) as f64)
            .collect();
        let row = &out.rows[0];
        assert_eq!(row[0].as_num().unwrap() as usize, rs.len());
        let min = rs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = rs.iter().sum::<f64>() / rs.len() as f64;
        assert!((row[1].as_num().unwrap() - min).abs() < 1e-9);
        assert!((row[2].as_num().unwrap() - max).abs() < 1e-9);
        assert!((row[3].as_num().unwrap() - avg).abs() < 1e-6);
    }

    #[test]
    fn set_operations() {
        let (store, tags, objs) = setup(5);
        let engine = Engine::new(&store, Some(&tags));
        let bright = "SELECT objid FROM photoobj WHERE r < 20";
        let galaxies = "SELECT objid FROM photoobj WHERE class = 'GALAXY'";
        let inter = engine
            .run(&format!("({bright}) INTERSECT ({galaxies})"))
            .unwrap();
        let expect_inter = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 && o.class == sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(inter.rows.len(), expect_inter);

        let except = engine
            .run(&format!("({bright}) EXCEPT ({galaxies})"))
            .unwrap();
        let expect_except = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 && o.class != sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(except.rows.len(), expect_except);

        let union = engine
            .run(&format!("({bright}) UNION ({galaxies})"))
            .unwrap();
        let expect_union = objs
            .iter()
            .filter(|o| o.mag(2) < 20.0 || o.class == sdss_catalog::ObjClass::Galaxy)
            .count();
        assert_eq!(union.rows.len(), expect_union);
    }

    #[test]
    fn sample_reduces_rows_deterministically() {
        let (store, tags, _) = setup(6);
        let engine = Engine::new(&store, Some(&tags));
        let all = engine.run("SELECT objid FROM photoobj").unwrap();
        let s1 = engine.run("SELECT objid FROM photoobj SAMPLE 0.2").unwrap();
        let s2 = engine.run("SELECT objid FROM photoobj SAMPLE 0.2").unwrap();
        assert_eq!(s1.rows.len(), s2.rows.len());
        assert!(s1.rows.len() < all.rows.len() / 2);
        assert!(!s1.rows.is_empty());
    }

    #[test]
    fn streaming_cancellation() {
        let (store, tags, _) = setup(7);
        let engine = Engine::new(&store, Some(&tags));
        let mut taken = 0;
        let stats = engine
            .run_each("SELECT objid FROM photoobj", |_, _| {
                taken += 1;
                taken < 10
            })
            .unwrap();
        assert_eq!(taken, 10);
        assert_eq!(stats.rows, 10);
    }

    #[test]
    fn time_to_first_row_is_recorded() {
        let (store, tags, _) = setup(8);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT objid FROM photoobj WHERE CIRCLE(185, 15, 3)")
            .unwrap();
        let stats = out.stats;
        assert!(stats.time_to_first_row.is_some());
        assert!(stats.time_to_first_row.unwrap() <= stats.total_time);
        assert_eq!(stats.rows, out.rows.len());
    }

    #[test]
    fn dist_function_in_predicate() {
        let (store, tags, objs) = setup(9);
        let engine = Engine::new(&store, Some(&tags));
        // DIST is not extracted spatially (it's a scalar function), so it
        // scans everything — correctness check only.
        let out = engine
            .run("SELECT objid FROM photoobj WHERE DIST(185, 15) < 1.0")
            .unwrap();
        let center = sdss_skycoords::SkyPos::new(185.0, 15.0).unwrap().unit_vec();
        let want = objs
            .iter()
            .filter(|o| o.unit_vec().separation_deg(center) < 1.0)
            .count();
        assert_eq!(out.rows.len(), want);
    }

    #[test]
    fn empty_result_is_not_an_error() {
        let (store, tags, _) = setup(10);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT objid FROM photoobj WHERE r < 0")
            .unwrap();
        assert!(out.rows.is_empty());
        assert!(out.stats.time_to_first_row.is_none());
    }

    #[test]
    fn null_columns_for_unknown_in_projection_only() {
        let (store, tags, _) = setup(11);
        let engine = Engine::new(&store, Some(&tags));
        // Unknown attributes are rejected at plan time, not silently NULL.
        assert!(engine.run("SELECT qqq FROM photoobj").is_err());
    }

    #[test]
    fn engine_without_tags_still_answers() {
        let (store, _, objs) = setup(12);
        let engine = Engine::new(&store, None);
        let out = engine
            .run("SELECT objid FROM photoobj WHERE r < 20")
            .unwrap();
        let want = objs.iter().filter(|o| o.mag(2) < 20.0).count();
        assert_eq!(out.rows.len(), want);
        assert_eq!(out.stats.route, RouteChoice::Full);
    }

    #[test]
    fn values_are_typed() {
        let (store, tags, _) = setup(13);
        let engine = Engine::new(&store, Some(&tags));
        let out = engine
            .run("SELECT class, r FROM photoobj WHERE CIRCLE(185, 15, 0.5)")
            .unwrap();
        for row in &out.rows {
            assert!(matches!(row[0], Value::Str(_)));
            assert!(matches!(row[1], Value::Num(_)));
        }
    }
}
