//! The deprecated single-caller engine façade.
//!
//! [`Engine`] predates the shared [`Archive`] handle: it owned the whole
//! parse → plan → execute → stream pipeline behind two synchronous
//! methods. It survives for one release as a thin shim that delegates
//! to [`Archive`], so downstream code keeps compiling while it migrates.
//!
//! Migration map:
//!
//! | old | new |
//! |---|---|
//! | `Engine::new(&store, Some(&tags))` | `Archive::new(store, Some(Arc::new(tags)))` |
//! | `engine.run(sql)` | `archive.run(sql)` (or `prepare(sql)?.run()`) |
//! | `engine.run_each(sql, f)` | `prepare(sql)?.stream()?` + iterate batches |
//! | `engine.explain(sql)` | `archive.explain(sql)` / `prepare(sql)?.plan()` |
//! | `engine.mode = ...` | `ArchiveConfig { mode, .. }` |
//! | `engine.cover_level = ...` | `ArchiveConfig { cover_level, .. }` |
//!
//! The shim's constructor takes *owned* (or `Arc`'d) stores — borrowing
//! was the old API's core limitation (single caller, no pull streams),
//! so there is no borrow-compatible bridge.

use crate::archive::{Archive, ArchiveConfig, QueryOutput, QueryStats};
use crate::exec::ExecMode;
use crate::plan::QueryPlan;
use crate::{QueryError, Row};
use sdss_storage::{ObjectStore, TagStore};
use std::sync::Arc;

/// The old single-caller façade, now a shim over [`Archive`].
#[deprecated(
    since = "0.2.0",
    note = "use `Archive` (shared handle, prepared queries, batch streams); see the module docs for the migration map"
)]
#[derive(Debug)]
pub struct Engine {
    store: Arc<ObjectStore>,
    tags: Option<Arc<TagStore>>,
    /// Cover level override for all scans (None = store default).
    pub cover_level: Option<u8>,
    /// Columnar compilation vs forced interpretation (default: Auto).
    pub mode: ExecMode,
    /// The delegate, cached so repeated calls share one admission pool
    /// (rebuilt only when the pub settings fields change).
    cached: std::sync::Mutex<Option<CachedArchive>>,
}

/// The settings an [`Archive`] delegate was built with, plus the handle.
type CachedArchive = ((Option<u8>, ExecMode), Archive);

#[allow(deprecated)]
impl Engine {
    pub fn new(
        store: impl Into<Arc<ObjectStore>>,
        tags: Option<Arc<TagStore>>,
    ) -> Engine {
        Engine {
            store: store.into(),
            tags,
            cover_level: None,
            mode: ExecMode::Auto,
            cached: std::sync::Mutex::new(None),
        }
    }

    /// The equivalent archive handle for the current settings. Cached:
    /// concurrent calls through one shared `Engine` hit the same
    /// admission pool, exactly as direct `Archive` users do.
    fn archive(&self) -> Archive {
        let key = (self.cover_level, self.mode);
        let mut cached = self.cached.lock().unwrap();
        if let Some((cached_key, archive)) = cached.as_ref() {
            if *cached_key == key {
                return archive.clone();
            }
        }
        let archive = Archive::with_config(
            self.store.clone(),
            self.tags.clone(),
            ArchiveConfig {
                cover_level: self.cover_level,
                mode: self.mode,
                ..ArchiveConfig::default()
            },
        );
        *cached = Some((key, archive.clone()));
        archive
    }

    /// Parse and plan without executing (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<QueryPlan, QueryError> {
        self.archive().explain(sql)
    }

    /// Run a query to completion, collecting all rows.
    pub fn run(&self, sql: &str) -> Result<QueryOutput, QueryError> {
        self.archive().run(sql)
    }

    /// Run a query streaming each row into `f` as soon as it is produced
    /// (the paper's ASAP push). `f` returns `false` to cancel.
    pub fn run_each(
        &self,
        sql: &str,
        mut f: impl FnMut(&[String], Row) -> bool,
    ) -> Result<QueryStats, QueryError> {
        let prepared = self.archive().prepare(sql)?;
        let mut stream = prepared.stream()?;
        let columns = stream.columns().to_vec();
        let mut delivered = 0usize;
        'outer: while let Some(batch) = stream.next_batch() {
            for row in batch.rows() {
                delivered += 1;
                if !f(&columns, row) {
                    break 'outer;
                }
            }
        }
        let mut stats = stream.finish();
        // Preserve the old contract: `rows` counts rows the callback saw.
        stats.rows = delivered;
        Ok(stats)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::archive::RouteChoice;
    use sdss_catalog::SkyModel;
    use sdss_storage::StoreConfig;

    #[test]
    fn shim_delegates_to_archive() {
        let objs = SkyModel::small(31).generate().unwrap();
        let mut store = ObjectStore::new(StoreConfig::default()).unwrap();
        store.insert_batch(&objs).unwrap();
        let tags = TagStore::from_store(&store);
        let engine = Engine::new(store, Some(Arc::new(tags)));

        let out = engine
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < 21")
            .unwrap();
        assert_eq!(out.stats.route, RouteChoice::TagOnly);
        assert!(out.stats.columnar);
        assert_eq!(out.columns, vec!["objid", "r"]);

        // Early-cancel contract: `rows` counts delivered rows.
        let mut taken = 0;
        let stats = engine
            .run_each("SELECT objid FROM photoobj", |_, _| {
                taken += 1;
                taken < 10
            })
            .unwrap();
        assert_eq!(taken, 10);
        assert_eq!(stats.rows, 10);

        // Forced interpretation still answers identically.
        let mut interp = Engine::new(engine.store.clone(), engine.tags.clone());
        interp.mode = ExecMode::Interpreted;
        let b = interp
            .run("SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 1.5) AND r < 21")
            .unwrap();
        assert_eq!(out.rows.len(), b.rows.len());
        assert!(!b.stats.columnar);
    }
}
