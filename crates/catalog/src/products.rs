//! The Table 1 data-product size model.
//!
//! Paper, Table 1 ("Sizes of various SDSS datasets"):
//!
//! | Product                  | Items | Size   |
//! |--------------------------|-------|--------|
//! | Raw observational data   | –     | 40 TB  |
//! | Redshift Catalog         | 10⁶   | 2 GB   |
//! | Survey Description       | 10⁵   | 1 GB   |
//! | Simplified Catalog       | 3·10⁸ | 60 GB  |
//! | 1D Spectra               | 10⁶   | 60 GB  |
//! | Atlas Images             | 10⁹   | 1.5 TB |
//! | Compressed Sky Map       | 5·10⁵ | 1.0 TB |
//! | Full photometric catalog | 3·10⁸ | 400 GB |
//!
//! This module derives each row from survey physics (area, pixel scale,
//! object densities, record widths), so the `table1` harness can print
//! model-vs-paper and the E1 experiment can check the shapes. Each byte
//! count documents its formula.

/// Physical parameters of the survey (defaults = the real SDSS's).
#[derive(Debug, Clone, Copy)]
pub struct SurveyParams {
    /// Photometric footprint, square degrees.
    pub area_deg2: f64,
    /// Pixel scale, arcsec/pixel.
    pub pixel_arcsec: f64,
    /// Photometric bands.
    pub n_bands: f64,
    /// Bytes per raw pixel sample.
    pub bytes_per_pixel: f64,
    /// Raw overhead factor over single-pass footprint pixels: interleaved
    /// drift-scan strips overlap, the southern cap is imaged repeatedly
    /// ("SDSS repeatedly images several areas in the Southern Galactic
    /// cap"), and the 22 astrometric + 2 focus CCDs and calibration
    /// frames all ship home on the same tapes.
    pub raw_overhead: f64,
    /// Detected objects (galaxies + stars + quasars).
    pub n_objects: f64,
    /// Spectroscopic targets.
    pub n_spectra: f64,
    /// Survey description items (fields, plates, runs).
    pub n_fields: f64,
}

impl Default for SurveyParams {
    fn default() -> Self {
        SurveyParams {
            area_deg2: 10_000.0,
            pixel_arcsec: 0.4,
            n_bands: 5.0,
            bytes_per_pixel: 2.0,
            raw_overhead: 4.9,
            n_objects: 3.0e8,
            n_spectra: 1.2e6,
            n_fields: 5.0e5,
        }
    }
}

/// One product row.
#[derive(Debug, Clone)]
pub struct ProductSize {
    pub name: &'static str,
    /// Item count (`None` for the raw stream).
    pub items: Option<f64>,
    pub bytes: f64,
    /// Paper's quoted size in bytes, for comparison.
    pub paper_bytes: f64,
    /// The formula used, for the printed table.
    pub formula: &'static str,
}

impl ProductSize {
    /// Model/paper ratio — the E1 check asserts these stay within 2x.
    pub fn ratio(&self) -> f64 {
        self.bytes / self.paper_bytes
    }
}

const GB: f64 = 1e9;
const TB: f64 = 1e12;

/// Compute all Table 1 rows from survey parameters.
pub fn table1(p: &SurveyParams) -> Vec<ProductSize> {
    // Pixels in the photometric footprint.
    let pixels_per_deg2 = (3600.0 / p.pixel_arcsec).powi(2);
    let raw_pixels = p.area_deg2 * pixels_per_deg2 * p.n_bands;
    let raw = raw_pixels * p.bytes_per_pixel * p.raw_overhead;

    // Record widths (bytes/item) with their provenance.
    let redshift_rec = 2.0e3; // redshift + errors + line list + provenance
    let survey_desc_rec = 10.0e3; // per-field calibration & metadata
    let simplified_rec = 200.0; // the paper's simplified/tag record
    let spectrum_rec = 60.0e3; // 3 arrays x ~4k bins x f32 + header
    let atlas_items = p.n_objects * (10.0 / 3.0); // cutouts incl. multiple detections
    let atlas_rec = 1.5e3; // ~25x25 px cutout, compressed
    let skymap_rec = 2.0e6; // 4x-compressed field mosaic
    let full_rec = 1.33e3; // ~500 attributes, mixed f32/f64

    vec![
        ProductSize {
            name: "Raw observational data",
            items: None,
            bytes: raw,
            paper_bytes: 40.0 * TB,
            formula: "area x (3600/0.4\")^2 px x 5 bands x 2 B x overhead",
        },
        ProductSize {
            name: "Redshift Catalog",
            items: Some(p.n_spectra),
            bytes: p.n_spectra * redshift_rec,
            paper_bytes: 2.0 * GB,
            formula: "n_spectra x 2 KB",
        },
        ProductSize {
            name: "Survey Description",
            items: Some(p.n_fields / 5.0),
            bytes: p.n_fields / 5.0 * survey_desc_rec,
            paper_bytes: 1.0 * GB,
            formula: "10^5 items x 10 KB",
        },
        ProductSize {
            name: "Simplified Catalog",
            items: Some(p.n_objects),
            bytes: p.n_objects * simplified_rec,
            paper_bytes: 60.0 * GB,
            formula: "n_objects x 200 B",
        },
        ProductSize {
            name: "1D Spectra",
            items: Some(p.n_spectra),
            bytes: p.n_spectra * spectrum_rec,
            paper_bytes: 60.0 * GB,
            formula: "n_spectra x 60 KB",
        },
        ProductSize {
            name: "Atlas Images",
            items: Some(atlas_items),
            bytes: atlas_items * atlas_rec,
            paper_bytes: 1.5 * TB,
            formula: "10^9 cutouts x 1.5 KB",
        },
        ProductSize {
            name: "Compressed Sky Map",
            items: Some(p.n_fields),
            bytes: p.n_fields * skymap_rec,
            paper_bytes: 1.0 * TB,
            formula: "5x10^5 fields x 2 MB",
        },
        ProductSize {
            name: "Full photometric catalog",
            items: Some(p.n_objects),
            bytes: p.n_objects * full_rec,
            paper_bytes: 400.0 * GB,
            formula: "n_objects x 1.33 KB",
        },
    ]
}

/// Total archive size (the "about 3TB" of the paper, excluding raw).
pub fn total_products_bytes(rows: &[ProductSize]) -> f64 {
    rows.iter()
        .filter(|r| r.name != "Raw observational data")
        .map(|r| r.bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_within_2x_of_paper() {
        let rows = table1(&SurveyParams::default());
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.ratio() > 0.5 && r.ratio() < 2.0,
                "{}: model {:.2e} vs paper {:.2e} (ratio {:.2})",
                r.name,
                r.bytes,
                r.paper_bytes,
                r.ratio()
            );
        }
    }

    #[test]
    fn products_total_about_3tb() {
        let rows = table1(&SurveyParams::default());
        let total = total_products_bytes(&rows);
        // The paper says the products are "about 3TB".
        assert!((2.0 * TB..4.5 * TB).contains(&total), "total {total:.3e}");
    }

    #[test]
    fn raw_dominated_by_pixels() {
        let p = SurveyParams::default();
        let rows = table1(&p);
        let raw = &rows[0];
        assert!(
            raw.bytes > 30.0 * TB && raw.bytes < 50.0 * TB,
            "{}",
            raw.bytes
        );
        // Scaling: halving the area halves the raw volume.
        let mut half = p;
        half.area_deg2 /= 2.0;
        let raw_half = &table1(&half)[0];
        assert!((raw_half.bytes * 2.0 - raw.bytes).abs() < 1.0);
    }

    #[test]
    fn full_catalog_record_width_matches_our_photoobj() {
        // Our PhotoObj serialized width should be the same order as the
        // model's 1.33 KB/object (within 2x).
        let ours = crate::photoobj::PhotoObj::SERIALIZED_LEN as f64;
        assert!(
            ours > 1.33e3 / 2.0 && ours < 1.33e3 * 2.0,
            "PhotoObj is {ours} B vs modeled 1330 B"
        );
    }

    #[test]
    fn item_counts_match_paper_orders() {
        let rows = table1(&SurveyParams::default());
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!((by_name("Simplified Catalog").items.unwrap() - 3.0e8).abs() < 1e7);
        assert!((by_name("Atlas Images").items.unwrap() - 1.0e9).abs() < 1e8);
        assert!((by_name("Compressed Sky Map").items.unwrap() - 5.0e5).abs() < 1e4);
    }
}
