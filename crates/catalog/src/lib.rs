//! # SDSS data products
//!
//! The paper's §Data Products names four datasets — a photometric catalog
//! (~500 attributes per object), a spectroscopic catalog, images and
//! spectra — plus the small "tag" objects of §Desktop Data Analysis:
//!
//! > "We plan to isolate the 10 most popular attributes (3 Cartesian
//! > positions on the sky, 5 colors, 1 size, 1 classification parameter)
//! > into small 'tag' objects, which point to the rest of the attributes."
//!
//! This crate implements those record types with fixed-layout binary
//! serialization (the storage/scan layers account bytes honestly), a
//! deterministic synthetic sky generator standing in for the real
//! telescope (see DESIGN.md substitution table), the FITS interchange
//! writer/reader the paper's pipelines exchange data in, the schema
//! registry (UML → SQL/XML/JSON in the paper's §Broader Metadata Issues),
//! and the Table 1 data-product size model.

pub mod chart;
pub mod fits;
pub mod gen;
pub mod photoobj;
pub mod products;
pub mod schema;
pub mod spectro;
pub mod tag;

pub use chart::FindingChart;
pub use gen::{GenRegion, SkyModel};
pub use photoobj::{BandPhot, ObjClass, PhotoObj, BAND_NAMES, N_BANDS};
pub use spectro::{SpecClass, SpectralLine, SpectroObj};
pub use tag::TagObject;

/// Errors produced by the catalog crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// Buffer too short / malformed while deserializing.
    Corrupt(String),
    /// Generator or schema parameter out of range.
    InvalidParam(String),
    /// FITS structural error (bad card, block, or type code).
    Fits(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Corrupt(m) => write!(f, "corrupt record: {m}"),
            CatalogError::InvalidParam(m) => write!(f, "invalid parameter: {m}"),
            CatalogError::Fits(m) => write!(f, "FITS error: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}
