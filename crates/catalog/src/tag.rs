//! Tag objects: the paper's vertical partition of the 10 popular
//! attributes.
//!
//! > "We plan to isolate the 10 most popular attributes (3 Cartesian
//! > positions on the sky, 5 colors, 1 size, 1 classification parameter)
//! > into small 'tag' objects, which point to the rest of the attributes.
//! > [...] These will occupy much less space, thus can be searched more
//! > than 10 times faster, if no other attributes are involved in the
//! > query."
//!
//! The serialized tag is 64 bytes against ~1.2 KB for the full object —
//! the ~19× byte ratio behind experiment E5's speedup measurement.

use crate::photoobj::{ObjClass, PhotoObj};
use crate::CatalogError;
use bytes::{Buf, BufMut};
use sdss_skycoords::{SkyPos, UnitVec3};

/// The 10-attribute tag record (plus the object-id "pointer to the rest
/// of the attributes").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TagObject {
    /// Pointer back to the full object.
    pub obj_id: u64,
    /// The 3 Cartesian positions.
    pub x: f64,
    pub y: f64,
    pub z: f64,
    /// The 5 "colors" (band magnitudes; colors are adjacent differences).
    pub mags: [f32; 5],
    /// The 1 size: Petrosian radius in r, arcsec.
    pub size: f32,
    /// The 1 classification parameter.
    pub class: ObjClass,
}

impl TagObject {
    /// Fixed serialized width: 8 + 24 + 20 + 4 + 1 + 7 padding = 64 bytes.
    /// Power-of-two width keeps tag pages perfectly packed.
    pub const SERIALIZED_LEN: usize = 64;

    /// Project the tag attributes out of a full object.
    pub fn from_photo(obj: &PhotoObj) -> TagObject {
        TagObject {
            obj_id: obj.obj_id,
            x: obj.x,
            y: obj.y,
            z: obj.z,
            mags: [obj.mag(0), obj.mag(1), obj.mag(2), obj.mag(3), obj.mag(4)],
            size: obj.size_arcsec(),
            class: obj.class,
        }
    }

    #[inline]
    pub fn unit_vec(&self) -> UnitVec3 {
        UnitVec3::new_unchecked(self.x, self.y, self.z)
    }

    pub fn pos(&self) -> SkyPos {
        SkyPos::from_unit_vec(self.unit_vec())
    }

    #[inline]
    pub fn mag(&self, b: usize) -> f32 {
        self.mags[b]
    }

    #[inline]
    pub fn color_ug(&self) -> f32 {
        self.mags[0] - self.mags[1]
    }

    #[inline]
    pub fn color_gr(&self) -> f32 {
        self.mags[1] - self.mags[2]
    }

    #[inline]
    pub fn color_ri(&self) -> f32 {
        self.mags[2] - self.mags[3]
    }

    #[inline]
    pub fn color_iz(&self) -> f32 {
        self.mags[3] - self.mags[4]
    }

    /// Serialize into the fixed 64-byte record.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.obj_id);
        buf.put_f64_le(self.x);
        buf.put_f64_le(self.y);
        buf.put_f64_le(self.z);
        for m in self.mags {
            buf.put_f32_le(m);
        }
        buf.put_f32_le(self.size);
        buf.put_u8(self.class as u8);
        buf.put_bytes(0, 7); // pad to 64
    }

    /// Deserialize a record written by [`TagObject::write_to`].
    pub fn read_from(buf: &mut impl Buf) -> Result<TagObject, CatalogError> {
        if buf.remaining() < Self::SERIALIZED_LEN {
            return Err(CatalogError::Corrupt(format!(
                "need {} bytes for TagObject, have {}",
                Self::SERIALIZED_LEN,
                buf.remaining()
            )));
        }
        let obj_id = buf.get_u64_le();
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let z = buf.get_f64_le();
        let mut mags = [0f32; 5];
        for m in mags.iter_mut() {
            *m = buf.get_f32_le();
        }
        let size = buf.get_f32_le();
        let class = ObjClass::from_u8(buf.get_u8())?;
        buf.advance(7);
        Ok(TagObject {
            obj_id,
            x,
            y,
            z,
            mags,
            size,
            class,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    #[test]
    fn width_is_64_bytes() {
        let tag = TagObject::default();
        let mut buf = BytesMut::new();
        tag.write_to(&mut buf);
        assert_eq!(buf.len(), 64);
        assert_eq!(buf.len(), TagObject::SERIALIZED_LEN);
    }

    #[test]
    fn byte_ratio_supports_10x_claim() {
        // The paper claims tags search >10x faster; the byte ratio alone
        // must exceed 10x for that to be possible.
        let ratio = PhotoObj::SERIALIZED_LEN as f64 / TagObject::SERIALIZED_LEN as f64;
        assert!(ratio > 10.0, "full/tag byte ratio only {ratio:.1}");
    }

    #[test]
    fn projection_preserves_the_ten_attributes() {
        let mut obj = PhotoObj {
            obj_id: 77,
            class: ObjClass::Galaxy,
            ..PhotoObj::default()
        };
        obj.set_position(SkyPos::new(210.5, -12.25).unwrap());
        for (i, m) in [21.0f32, 20.0, 19.4, 19.1, 18.9].into_iter().enumerate() {
            obj.bands[i].model_mag = m;
        }
        obj.bands[2].petro_rad = 3.5;
        let tag = TagObject::from_photo(&obj);
        assert_eq!(tag.obj_id, 77);
        assert_eq!(tag.class, ObjClass::Galaxy);
        assert_eq!(tag.size, 3.5);
        assert!((tag.unit_vec().separation_deg(obj.unit_vec())).abs() < 1e-12);
        assert!((tag.color_gr() - obj.color_gr()).abs() < 1e-6);
        assert!((tag.mag(2) - 19.4).abs() < 1e-6);
    }

    #[test]
    fn short_buffer_rejected() {
        let buf = BytesMut::from(&[0u8; 32][..]);
        assert!(TagObject::read_from(&mut buf.freeze()).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            obj_id in any::<u64>(),
            ra in 0.0f64..360.0, dec in -90.0f64..90.0,
            mags in proptest::array::uniform5(10.0f32..25.0),
            size in 0.0f32..60.0,
            class_byte in 0u8..4,
        ) {
            let v = SkyPos::new(ra, dec).unwrap().unit_vec();
            let tag = TagObject {
                obj_id,
                x: v.x(),
                y: v.y(),
                z: v.z(),
                mags,
                size,
                class: ObjClass::from_u8(class_byte).unwrap(),
            };
            let mut buf = BytesMut::new();
            tag.write_to(&mut buf);
            prop_assert_eq!(buf.len(), TagObject::SERIALIZED_LEN);
            let back = TagObject::read_from(&mut buf.freeze()).unwrap();
            prop_assert_eq!(back, tag);
        }

        #[test]
        fn prop_projection_is_stable(
            ra in 0.0f64..360.0, dec in -89.0f64..89.0,
        ) {
            let mut obj = PhotoObj::default();
            obj.set_position(SkyPos::new(ra, dec).unwrap());
            let t1 = TagObject::from_photo(&obj);
            let t2 = TagObject::from_photo(&obj);
            prop_assert_eq!(t1, t2);
        }
    }
}
