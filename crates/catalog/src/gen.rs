//! Deterministic synthetic sky generator.
//!
//! Substitute for the real SDSS photometric pipeline output (DESIGN.md,
//! substitution table). The paper's index and dataflow designs are driven
//! by two statistical properties of the sky, both reproduced here:
//!
//! 1. **Strong spatial clustering with large density contrasts**
//!    (\[Csabai97\] is cited exactly for this): galaxies are generated as a
//!    two-level hierarchy — Poisson cluster centers with Gaussian-profile
//!    members plus a uniform "field" population. This is a
//!    Neyman–Scott / Soneira–Peebles-style process.
//! 2. **Structured color space**: stars lie on a 1-D locus, galaxies in a
//!    red-ish blob, quasars show the UV excess (u−g < 0.5) that the real
//!    target-selection algorithm exploits. The paper's "find quasars with
//!    a faint blue galaxy nearby" style queries are selective exactly
//!    because of this structure.
//!
//! Magnitudes follow the Euclidean number-count law `N(<m) ∝ 10^{0.6 m}`
//! truncated to the survey range; astrometric and photometric errors grow
//! toward the faint limit. Everything is seeded (`ChaCha8`), so every
//! experiment is reproducible bit-for-bit across platforms.

use crate::photoobj::{pack_obj_id, BandPhot, ObjClass, PhotoObj, N_EXTRA_ATTRS};
use crate::spectro::{SpecClass, SpectralLine, SpectroObj};
use crate::CatalogError;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sdss_skycoords::{SkyPos, UnitVec3};

/// Where on the sky to generate objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenRegion {
    /// The whole celestial sphere.
    AllSky,
    /// A cap of `radius_deg` around (ra, dec).
    Cap {
        ra_deg: f64,
        dec_deg: f64,
        radius_deg: f64,
    },
    /// A declination band (drift-scan stripe shape).
    Band { dec_lo_deg: f64, dec_hi_deg: f64 },
}

impl GenRegion {
    /// Solid angle in steradians.
    pub fn area_sr(&self) -> f64 {
        match *self {
            GenRegion::AllSky => 4.0 * std::f64::consts::PI,
            GenRegion::Cap { radius_deg, .. } => {
                2.0 * std::f64::consts::PI * (1.0 - radius_deg.to_radians().cos())
            }
            GenRegion::Band {
                dec_lo_deg,
                dec_hi_deg,
            } => {
                2.0 * std::f64::consts::PI
                    * (dec_hi_deg.to_radians().sin() - dec_lo_deg.to_radians().sin())
            }
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> SkyPos {
        match *self {
            GenRegion::AllSky => {
                let z: f64 = rng.gen_range(-1.0..1.0);
                let ra: f64 = rng.gen_range(0.0..360.0);
                SkyPos::new(ra, z.asin().to_degrees()).expect("asin stays in range")
            }
            GenRegion::Cap {
                ra_deg,
                dec_deg,
                radius_deg,
            } => {
                // Uniform in the cap: cos(theta) uniform in [cos r, 1].
                let cos_r = radius_deg.to_radians().cos();
                let cos_t: f64 = rng.gen_range(cos_r..=1.0);
                let theta = cos_t.clamp(-1.0, 1.0).acos().to_degrees();
                let pa: f64 = rng.gen_range(0.0..360.0);
                SkyPos::new(ra_deg, dec_deg)
                    .expect("center validated at model construction")
                    .offset_by(pa, theta)
            }
            GenRegion::Band {
                dec_lo_deg,
                dec_hi_deg,
            } => {
                let s_lo = dec_lo_deg.to_radians().sin();
                let s_hi = dec_hi_deg.to_radians().sin();
                let s: f64 = rng.gen_range(s_lo..=s_hi);
                let ra: f64 = rng.gen_range(0.0..360.0);
                SkyPos::new(ra, s.asin().to_degrees()).expect("asin stays in range")
            }
        }
    }

    fn contains(&self, pos: SkyPos) -> bool {
        match *self {
            GenRegion::AllSky => true,
            GenRegion::Cap {
                ra_deg,
                dec_deg,
                radius_deg,
            } => {
                SkyPos::new(ra_deg, dec_deg)
                    .expect("validated center")
                    .separation_deg(pos)
                    <= radius_deg
            }
            GenRegion::Band {
                dec_lo_deg,
                dec_hi_deg,
            } => pos.dec_deg() >= dec_lo_deg && pos.dec_deg() <= dec_hi_deg,
        }
    }
}

/// Parameters of the synthetic sky.
#[derive(Debug, Clone)]
pub struct SkyModel {
    pub region: GenRegion,
    pub n_galaxies: usize,
    pub n_stars: usize,
    pub n_quasars: usize,
    /// Fraction of galaxies placed in clusters (the rest are "field").
    pub cluster_fraction: f64,
    /// Mean members per cluster (Poisson).
    pub mean_cluster_members: f64,
    /// Angular scale of a cluster (Gaussian sigma, degrees).
    pub cluster_sigma_deg: f64,
    /// Survey magnitude range in r.
    pub mag_min: f64,
    pub mag_max: f64,
    /// r-band limit of the spectroscopic main sample (the real survey
    /// used 17.8; tests use brighter catalogs so set it deeper there).
    pub spectro_r_limit: f64,
    /// RNG seed; same seed ⇒ identical catalog.
    pub seed: u64,
}

impl Default for SkyModel {
    fn default() -> Self {
        SkyModel {
            region: GenRegion::Cap {
                ra_deg: 185.0,
                dec_deg: 15.0,
                radius_deg: 5.0,
            },
            n_galaxies: 7_000,
            n_stars: 2_500,
            n_quasars: 500,
            cluster_fraction: 0.35,
            mean_cluster_members: 40.0,
            cluster_sigma_deg: 0.08,
            mag_min: 14.0,
            mag_max: 23.0,
            spectro_r_limit: 17.8,
            seed: 0x5D55_0001,
        }
    }
}

impl SkyModel {
    /// A small model for unit tests (fast) with the default field.
    pub fn small(seed: u64) -> SkyModel {
        SkyModel {
            n_galaxies: 700,
            n_stars: 250,
            n_quasars: 50,
            // Small test catalogs are shallow; lift the spectro limit so
            // they still contain targets.
            spectro_r_limit: 21.0,
            seed,
            ..SkyModel::default()
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), CatalogError> {
        if !(0.0..=1.0).contains(&self.cluster_fraction) {
            return Err(CatalogError::InvalidParam(format!(
                "cluster_fraction {} outside [0,1]",
                self.cluster_fraction
            )));
        }
        if self.mag_min >= self.mag_max {
            return Err(CatalogError::InvalidParam(
                "mag_min must be < mag_max".into(),
            ));
        }
        if self.mean_cluster_members <= 0.0 || self.cluster_sigma_deg <= 0.0 {
            return Err(CatalogError::InvalidParam(
                "cluster parameters must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Total object count.
    pub fn total(&self) -> usize {
        self.n_galaxies + self.n_stars + self.n_quasars
    }

    /// Generate the photometric catalog, ordered by generation sequence
    /// (callers wanting observation order or spatial order re-sort).
    pub fn generate(&self) -> Result<Vec<PhotoObj>, CatalogError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.total());

        // --- galaxies: clustered + field ---
        let n_clustered = (self.n_galaxies as f64 * self.cluster_fraction).round() as usize;
        let mut placed = 0usize;
        while placed < n_clustered {
            let center = self.region.sample(&mut rng);
            let members = poisson(&mut rng, self.mean_cluster_members).max(1);
            // Cluster richness correlates with a slightly brighter core.
            for _ in 0..members.min(n_clustered - placed) {
                let dr = self.cluster_sigma_deg * normal(&mut rng).abs();
                let pa = rng.gen_range(0.0..360.0);
                let pos = center.offset_by(pa, dr);
                if !self.region.contains(pos) {
                    continue; // clip members that leak out of the region
                }
                out.push(self.make_galaxy(&mut rng, pos, placed));
                placed += 1;
            }
        }
        let mut field_idx = placed;
        while field_idx < self.n_galaxies {
            let pos = self.region.sample(&mut rng);
            out.push(self.make_galaxy(&mut rng, pos, field_idx));
            field_idx += 1;
        }

        // --- stars: uniform (foreground) ---
        for i in 0..self.n_stars {
            let pos = self.region.sample(&mut rng);
            out.push(self.make_star(&mut rng, pos, self.n_galaxies + i));
        }

        // --- quasars: uniform, UV-excess colors ---
        for i in 0..self.n_quasars {
            let pos = self.region.sample(&mut rng);
            out.push(self.make_quasar(&mut rng, pos, self.n_galaxies + self.n_stars + i));
        }

        Ok(out)
    }

    /// Generate the spectroscopic follow-up for a photometric catalog:
    /// galaxies brighter than the spectro limit plus all quasar targets,
    /// mirroring the paper's target selection ("galaxies, selected by a
    /// magnitude and surface brightness limit in the r band" plus an
    /// "automated algorithm \[selecting\] quasar candidates").
    pub fn generate_spectro(&self, photo: &[PhotoObj]) -> Vec<SpectroObj> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5bec_7a0b);
        let spectro_r_limit = self.spectro_r_limit;
        let mut out = Vec::new();
        for obj in photo {
            let take = match obj.class {
                ObjClass::Galaxy => obj.mag(2) < spectro_r_limit as f32,
                ObjClass::Quasar => obj.mag(2) < (spectro_r_limit + 1.2) as f32,
                _ => false,
            };
            if !take {
                continue;
            }
            let class = match obj.class {
                ObjClass::Galaxy => SpecClass::Galaxy,
                ObjClass::Quasar => SpecClass::Quasar,
                ObjClass::Star => SpecClass::Star,
                ObjClass::Unknown => SpecClass::Unknown,
            };
            // Crude Hubble-law-ish redshift: fainter ⇒ more distant, with
            // scatter; quasars much deeper.
            let z = match class {
                SpecClass::Quasar => (rng.gen_range(0.3f64..3.5)).max(0.01),
                _ => {
                    let base = ((obj.mag(2) as f64 - 14.0) / 10.0).max(0.003) * 0.3;
                    (base * (1.0 + 0.3 * normal(&mut rng))).clamp(0.001, 0.6)
                }
            };
            let n_flux = 128usize;
            let flux: Vec<f32> = (0..n_flux)
                .map(|i| 1.0 + 0.2 * ((i as f32) * 0.21).sin() + 0.05 * normal32(&mut rng))
                .collect();
            let lines = standard_lines(z, class);
            out.push(SpectroObj {
                obj_id: obj.obj_id,
                plate: (out.len() / 640 + 266) as u16, // 640 fibers per plate
                fiber: (out.len() % 640) as u16,
                redshift: z,
                redshift_err: 1e-4 + 2e-4 * rng.gen::<f64>(),
                class,
                lines,
                flux,
            });
        }
        out
    }

    fn make_galaxy(&self, rng: &mut ChaCha8Rng, pos: SkyPos, seq: usize) -> PhotoObj {
        let r = sample_mag(rng, self.mag_min, self.mag_max);
        // Galaxy locus colors with scatter.
        let gr = 0.65 + 0.18 * normal(rng);
        let ug = 1.35 + 0.30 * normal(rng);
        let ri = 0.38 + 0.10 * normal(rng);
        let iz = 0.25 + 0.10 * normal(rng);
        let mags = mags_from_r(r, ug, gr, ri, iz);
        let size = 1.5 + (23.0 - r).max(0.0) * 0.6 * rng.gen::<f64>(); // brighter ⇒ bigger
        self.make_obj(rng, pos, ObjClass::Galaxy, mags, size as f32, seq as u32)
    }

    fn make_star(&self, rng: &mut ChaCha8Rng, pos: SkyPos, seq: usize) -> PhotoObj {
        let r = sample_mag(rng, self.mag_min, self.mag_max);
        // 1-D stellar locus parametrized by temperature proxy t.
        let t: f64 = rng.gen();
        let ug = 0.8 + 2.0 * t + 0.05 * normal(rng);
        let gr = 0.2 + 1.2 * t + 0.04 * normal(rng);
        let ri = 0.05 + 0.7 * t + 0.04 * normal(rng);
        let iz = 0.0 + 0.4 * t + 0.04 * normal(rng);
        let mags = mags_from_r(r, ug, gr, ri, iz);
        // Stars are unresolved: PSF size with tiny scatter.
        let size = 1.4 + 0.05 * normal(rng);
        self.make_obj(rng, pos, ObjClass::Star, mags, size as f32, seq as u32)
    }

    fn make_quasar(&self, rng: &mut ChaCha8Rng, pos: SkyPos, seq: usize) -> PhotoObj {
        let r = sample_mag(rng, self.mag_min.max(17.0), self.mag_max);
        // UV excess: u-g below the stellar locus — the selection cut.
        let ug = 0.15 + 0.15 * normal(rng);
        let gr = 0.20 + 0.15 * normal(rng);
        let ri = 0.15 + 0.12 * normal(rng);
        let iz = 0.10 + 0.12 * normal(rng);
        let mags = mags_from_r(r, ug, gr, ri, iz);
        let size = 1.4 + 0.05 * normal(rng); // point sources
        self.make_obj(rng, pos, ObjClass::Quasar, mags, size as f32, seq as u32)
    }

    fn make_obj(
        &self,
        rng: &mut ChaCha8Rng,
        pos: SkyPos,
        class: ObjClass,
        mags: [f64; 5],
        size_arcsec: f32,
        seq: u32,
    ) -> PhotoObj {
        // Observation bookkeeping: runs of 1000 fields, 6 camcols.
        let run = 752 + (seq / 600_000) as u16;
        let camcol = (1 + (seq / 100_000) % 6) as u8;
        let field = ((seq / 100) % 1000) as u16;
        let id_in_field = (seq % 100) as u16;
        // (run, camcol, field, id_in_field) decompose `seq` uniquely:
        // 100 ids/field x 1000 fields/camcol x 6 camcols/run.
        let obj_id = pack_obj_id(run, 40, camcol, field, id_in_field);
        let r_mag = mags[2];
        // Errors grow toward the faint limit (5-sigma at mag_max).
        let mag_err = (0.01 + 0.2 * 10f64.powf(0.4 * (r_mag - self.mag_max))) as f32;
        let astrom_err = 0.05 + 0.1 * 10f64.powf(0.4 * (r_mag - self.mag_max));

        let mut bands = [BandPhot::default(); 5];
        for (b, band) in bands.iter_mut().enumerate() {
            let m = mags[b] as f32;
            let noisy = m + mag_err * normal32(rng);
            band.model_mag = noisy;
            band.model_mag_err = mag_err;
            band.psf_mag = noisy
                + if class == ObjClass::Galaxy {
                    // Extended sources lose flux in a PSF fit.
                    0.3 + 0.1 * normal32(rng)
                } else {
                    0.01 * normal32(rng)
                };
            band.psf_mag_err = mag_err;
            band.petro_mag = noisy + 0.02 * normal32(rng);
            band.petro_mag_err = mag_err * 1.2;
            band.fiber_mag = noisy + 0.5; // 3-arcsec fiber aperture loses flux
            band.fiber_mag_err = mag_err * 1.5;
            band.petro_rad = size_arcsec * (0.9 + 0.2 * rng.gen::<f32>());
            band.petro_rad_err = 0.1;
            band.petro_r50 = band.petro_rad * 0.5;
            band.petro_r90 = band.petro_rad * 0.9;
            band.iso_a = band.petro_rad * 1.1;
            band.iso_b = band.petro_rad * (0.4 + 0.6 * rng.gen::<f32>());
            band.iso_phi = rng.gen_range(0.0..180.0);
            band.surface_brightness = noisy + 2.5 * (band.petro_r50.max(0.1)).log10() * 2.0;
            band.stokes_q = 0.1 * normal32(rng);
            band.stokes_u = 0.1 * normal32(rng);
            band.sky_flux = 21.0 + 0.2 * normal32(rng);
            band.sky_flux_err = 0.05;
            band.extinction = 0.05 + 0.02 * (b as f32);
            band.star_likelihood = if class == ObjClass::Galaxy { 0.05 } else { 0.9 };
            band.exp_likelihood = if class == ObjClass::Galaxy { 0.6 } else { 0.05 };
            band.dev_likelihood = if class == ObjClass::Galaxy {
                0.35
            } else {
                0.05
            };
            // Exponential-ish radial profile.
            for (k, p) in band.profile.iter_mut().enumerate() {
                *p = (10.0f32).powf(-0.4 * noisy) * (-(k as f32) / 3.0).exp();
            }
            band.flags = 0;
        }

        let mut extra = [0f32; N_EXTRA_ATTRS];
        for (i, v) in extra.iter_mut().enumerate() {
            // Deterministic filler derived from the object, not random: the
            // block models "more attributes", not entropy.
            *v = (seq as f32 * 0.001 + i as f32).sin();
        }

        let mut obj = PhotoObj {
            obj_id,
            run,
            rerun: 40,
            camcol,
            field,
            id_in_field,
            ra_err_arcsec: astrom_err as f32,
            dec_err_arcsec: astrom_err as f32,
            class,
            flags: 0,
            status: 1,
            htm20: 0,
            mjd: 51_075.0 + (seq / 100_000) as f64, // nights of late 1998
            parent_id: 0,
            spectro_target: false,
            bands,
            extra,
            ..PhotoObj::default()
        };
        obj.set_position(pos);
        obj.htm20 = sdss_htm::lookup_id(obj.unit_vec(), 20)
            .expect("level 20 is valid")
            .raw();
        obj.spectro_target = match class {
            ObjClass::Galaxy => obj.mag(2) < self.spectro_r_limit as f32,
            ObjClass::Quasar => obj.mag(2) < (self.spectro_r_limit + 1.2) as f32,
            _ => false,
        };
        obj
    }
}

/// Standard line list for a class at redshift z.
fn standard_lines(z: f64, class: SpecClass) -> Vec<SpectralLine> {
    let rest: &[(f32, f32)] = match class {
        // (rest wavelength, equivalent width)
        SpecClass::Galaxy => &[
            (6562.8, -20.0),
            (4861.3, -6.0),
            (3933.7, 4.0),
            (5175.0, 3.0),
        ],
        SpecClass::Quasar => &[
            (1215.7, -80.0),
            (1549.0, -40.0),
            (2798.0, -25.0),
            (4861.3, -15.0),
        ],
        _ => &[(6562.8, 2.0), (4861.3, 1.5)],
    };
    rest.iter()
        .map(|&(w, ew)| SpectralLine {
            rest_wavelength: w,
            observed_wavelength: w * (1.0 + z as f32),
            equivalent_width: ew,
            significance: (ew.abs() / 2.0).min(30.0),
        })
        // Keep only lines landing in the spectrograph coverage.
        .filter(|l| {
            l.observed_wavelength >= crate::spectro::WAVELENGTH_MIN_A
                && l.observed_wavelength <= crate::spectro::WAVELENGTH_MAX_A
        })
        .collect()
}

/// Magnitudes from r and the four adjacent colors.
fn mags_from_r(r: f64, ug: f64, gr: f64, ri: f64, iz: f64) -> [f64; 5] {
    let g = r + gr;
    let u = g + ug;
    let i = r - ri;
    let z = i - iz;
    [u, g, r, i, z]
}

/// Sample r from the Euclidean number-count law N(<m) ∝ 10^{0.6 m},
/// truncated to [lo, hi] (inverse-CDF).
fn sample_mag(rng: &mut ChaCha8Rng, lo: f64, hi: f64) -> f64 {
    let u: f64 = rng.gen();
    let k = 0.6f64;
    let span = 10f64.powf(k * (hi - lo)) - 1.0;
    lo + (u * span + 1.0).log10() / k
}

/// Standard normal via Box–Muller (rand_distr is not among the sanctioned
/// offline crates, and two lines of Box–Muller beat a dependency).
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn normal32(rng: &mut ChaCha8Rng) -> f32 {
    normal(rng) as f32
}

/// Poisson sample (Knuth's method; fine for the small means used here).
fn poisson(rng: &mut ChaCha8Rng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Uniform random unit vector (utility shared by tests and benches).
pub fn random_unit_vec(rng: &mut ChaCha8Rng) -> UnitVec3 {
    let z: f64 = rng.gen_range(-1.0..1.0);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let r = (1.0 - z * z).max(0.0).sqrt();
    sdss_skycoords::Vec3::new(r * phi.cos(), r * phi.sin(), z)
        .normalized()
        .expect("unit by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let model = SkyModel::small(42);
        let a = model.generate().unwrap();
        let b = model.generate().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
        // A different seed gives a different sky.
        let c = SkyModel::small(43).generate().unwrap();
        assert_ne!(a[0].ra_deg, c[0].ra_deg);
    }

    #[test]
    fn counts_and_classes() {
        let model = SkyModel::small(1);
        let objs = model.generate().unwrap();
        let galaxies = objs.iter().filter(|o| o.class == ObjClass::Galaxy).count();
        let stars = objs.iter().filter(|o| o.class == ObjClass::Star).count();
        let quasars = objs.iter().filter(|o| o.class == ObjClass::Quasar).count();
        assert_eq!(galaxies, model.n_galaxies);
        assert_eq!(stars, model.n_stars);
        assert_eq!(quasars, model.n_quasars);
    }

    #[test]
    fn all_objects_inside_region() {
        let model = SkyModel::small(7);
        for obj in model.generate().unwrap() {
            assert!(
                model.region.contains(obj.pos()),
                "object at {} outside region",
                obj.pos()
            );
            // Stored Cartesian must match the angular position.
            assert!(obj.pos().unit_vec().separation_deg(obj.unit_vec()) < 1e-9);
        }
    }

    #[test]
    fn magnitudes_in_range_and_faint_heavy() {
        let model = SkyModel::small(3);
        let objs = model.generate().unwrap();
        let mut bright = 0;
        let mut faint = 0;
        for o in &objs {
            // model_mag has noise; allow a small margin.
            let r = o.mag(2) as f64;
            assert!(r > model.mag_min - 1.0 && r < model.mag_max + 1.0, "r={r}");
            if r < 18.5 {
                bright += 1;
            } else if r > 21.5 {
                faint += 1;
            }
        }
        // 10^0.6m counts: the faint bin must dominate the bright bin.
        assert!(
            faint > bright * 4,
            "faint {faint} vs bright {bright} — number counts wrong"
        );
    }

    #[test]
    fn galaxies_are_clustered_stars_are_not() {
        // Clustering statistic: mean nearest-neighbor distance of clustered
        // galaxies is much smaller than that of uniform stars at equal
        // density. Compare scaled values.
        let model = SkyModel {
            n_galaxies: 800,
            n_stars: 800,
            n_quasars: 0,
            cluster_fraction: 0.8,
            ..SkyModel::small(11)
        };
        let objs = model.generate().unwrap();
        let nn = |class: ObjClass| -> f64 {
            let pts: Vec<UnitVec3> = objs
                .iter()
                .filter(|o| o.class == class)
                .map(|o| o.unit_vec())
                .collect();
            let mut total = 0.0;
            for (i, p) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, q) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(p.separation_deg(*q));
                    }
                }
                total += best;
            }
            total / pts.len() as f64
        };
        let gal_nn = nn(ObjClass::Galaxy);
        let star_nn = nn(ObjClass::Star);
        assert!(
            gal_nn < star_nn * 0.6,
            "galaxy NN {gal_nn:.4} not « star NN {star_nn:.4}"
        );
    }

    #[test]
    fn quasars_show_uv_excess() {
        let model = SkyModel::small(5);
        let objs = model.generate().unwrap();
        let mean_ug = |class: ObjClass| -> f64 {
            let v: Vec<f64> = objs
                .iter()
                .filter(|o| o.class == class)
                .map(|o| o.color_ug() as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let q = mean_ug(ObjClass::Quasar);
        let s = mean_ug(ObjClass::Star);
        let g = mean_ug(ObjClass::Galaxy);
        assert!(q < 0.5, "quasar mean u-g = {q}");
        assert!(q < s - 0.5, "quasars not bluer than stars ({q} vs {s})");
        assert!(q < g - 0.5, "quasars not bluer than galaxies ({q} vs {g})");
    }

    #[test]
    fn unique_object_ids() {
        let objs = SkyModel::small(9).generate().unwrap();
        let mut ids: Vec<u64> = objs.iter().map(|o| o.obj_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), objs.len(), "object ids must be unique");
    }

    #[test]
    fn htm20_matches_position() {
        let objs = SkyModel::small(13).generate().unwrap();
        for obj in objs.iter().take(50) {
            let want = sdss_htm::lookup_id(obj.unit_vec(), 20).unwrap().raw();
            assert_eq!(obj.htm20, want);
        }
    }

    #[test]
    fn spectro_follows_targets() {
        let model = SkyModel::small(21);
        let photo = model.generate().unwrap();
        let spec = model.generate_spectro(&photo);
        assert!(!spec.is_empty());
        let by_id: std::collections::HashMap<u64, &PhotoObj> =
            photo.iter().map(|o| (o.obj_id, o)).collect();
        for s in &spec {
            let obj = by_id[&s.obj_id];
            assert!(obj.spectro_target, "spectro of a non-target");
            assert!(s.redshift > 0.0);
            assert!(s.lines_consistent(1e-3), "lines inconsistent with z");
            // Quasars are high-z, galaxies low-z.
            if s.class == SpecClass::Galaxy {
                assert!(s.redshift < 0.7);
            }
        }
        // Determinism of the spectro stage too.
        let spec2 = model.generate_spectro(&photo);
        assert_eq!(spec, spec2);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut m = SkyModel::small(1);
        m.cluster_fraction = 1.5;
        assert!(m.generate().is_err());
        let mut m = SkyModel::small(1);
        m.mag_min = 25.0;
        assert!(m.generate().is_err());
    }

    #[test]
    fn band_region_sampling() {
        let model = SkyModel {
            region: GenRegion::Band {
                dec_lo_deg: -1.25,
                dec_hi_deg: 1.25,
            },
            ..SkyModel::small(17)
        };
        let objs = model.generate().unwrap();
        for o in &objs {
            assert!(o.dec_deg.abs() <= 1.251);
        }
        // RA should cover most of the circle.
        let max_ra = objs.iter().map(|o| o.ra_deg).fold(0.0, f64::max);
        let min_ra = objs.iter().map(|o| o.ra_deg).fold(360.0, f64::min);
        assert!(max_ra > 300.0 && min_ra < 60.0);
    }

    #[test]
    fn region_areas() {
        assert!((GenRegion::AllSky.area_sr() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
        let hemi = GenRegion::Band {
            dec_lo_deg: 0.0,
            dec_hi_deg: 90.0,
        };
        assert!((hemi.area_sr() - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        let cap = GenRegion::Cap {
            ra_deg: 0.0,
            dec_deg: 0.0,
            radius_deg: 90.0,
        };
        assert!((cap.area_sr() - 2.0 * std::f64::consts::PI).abs() < 1e-12);
    }
}
