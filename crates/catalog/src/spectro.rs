//! Spectroscopic catalog records.
//!
//! The paper: "The spectroscopic catalog will contain identified emission
//! and absorption lines, and one-dimensional spectra for 1 million
//! galaxies, 100,000 stars, and 100,000 quasars." Each record carries a
//! redshift (the Doppler distance measure driving the 3-D galaxy map), a
//! line list and a 1-D flux array — variable length, so serialization is
//! length-prefixed rather than fixed-width.

use crate::CatalogError;
use bytes::{Buf, BufMut};

/// Spectral classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum SpecClass {
    #[default]
    Unknown = 0,
    Star = 1,
    Galaxy = 2,
    Quasar = 3,
}

impl SpecClass {
    pub fn from_u8(v: u8) -> Result<SpecClass, CatalogError> {
        match v {
            0 => Ok(SpecClass::Unknown),
            1 => Ok(SpecClass::Star),
            2 => Ok(SpecClass::Galaxy),
            3 => Ok(SpecClass::Quasar),
            other => Err(CatalogError::Corrupt(format!("bad spec class {other}"))),
        }
    }
}

/// An identified emission or absorption line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// Rest-frame wavelength, Ångström.
    pub rest_wavelength: f32,
    /// Observed wavelength, Ångström.
    pub observed_wavelength: f32,
    /// Equivalent width (negative = emission by convention).
    pub equivalent_width: f32,
    /// Detection significance.
    pub significance: f32,
}

/// A spectroscopic catalog object with its 1-D spectrum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpectroObj {
    /// Pointer to the photometric object.
    pub obj_id: u64,
    /// Fiber and plate identifiers (640 fibers per tile in the paper).
    pub plate: u16,
    pub fiber: u16,
    /// Heliocentric redshift and its error.
    pub redshift: f64,
    pub redshift_err: f64,
    /// Classification from the spectrum.
    pub class: SpecClass,
    /// Identified lines.
    pub lines: Vec<SpectralLine>,
    /// 1-D spectrum: flux per wavelength bin over 3900–9200 Å
    /// (the spectrograph coverage quoted in the paper).
    pub flux: Vec<f32>,
}

/// Spectrograph wavelength coverage from the paper, Ångström.
pub const WAVELENGTH_MIN_A: f32 = 3900.0;
pub const WAVELENGTH_MAX_A: f32 = 9200.0;

impl SpectroObj {
    /// Wavelength of flux bin `i` for a spectrum with `n` bins
    /// (log-linear grid like the real spectrographs).
    pub fn wavelength_of_bin(i: usize, n: usize) -> f32 {
        let log_lo = WAVELENGTH_MIN_A.ln();
        let log_hi = WAVELENGTH_MAX_A.ln();
        let frac = i as f32 / (n.max(2) - 1) as f32;
        (log_lo + (log_hi - log_lo) * frac).exp()
    }

    /// Serialized size of this record.
    pub fn serialized_len(&self) -> usize {
        8 + 2 + 2 + 8 + 8 + 1 + 4 + self.lines.len() * 16 + 4 + self.flux.len() * 4
    }

    /// Length-prefixed serialization.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.obj_id);
        buf.put_u16_le(self.plate);
        buf.put_u16_le(self.fiber);
        buf.put_f64_le(self.redshift);
        buf.put_f64_le(self.redshift_err);
        buf.put_u8(self.class as u8);
        buf.put_u32_le(self.lines.len() as u32);
        for line in &self.lines {
            buf.put_f32_le(line.rest_wavelength);
            buf.put_f32_le(line.observed_wavelength);
            buf.put_f32_le(line.equivalent_width);
            buf.put_f32_le(line.significance);
        }
        buf.put_u32_le(self.flux.len() as u32);
        for &f in &self.flux {
            buf.put_f32_le(f);
        }
    }

    pub fn read_from(buf: &mut impl Buf) -> Result<SpectroObj, CatalogError> {
        const FIXED_HEAD: usize = 8 + 2 + 2 + 8 + 8 + 1 + 4;
        if buf.remaining() < FIXED_HEAD {
            return Err(CatalogError::Corrupt("spectro header truncated".into()));
        }
        let obj_id = buf.get_u64_le();
        let plate = buf.get_u16_le();
        let fiber = buf.get_u16_le();
        let redshift = buf.get_f64_le();
        let redshift_err = buf.get_f64_le();
        let class = SpecClass::from_u8(buf.get_u8())?;
        let n_lines = buf.get_u32_le() as usize;
        if buf.remaining() < n_lines * 16 + 4 {
            return Err(CatalogError::Corrupt("spectro line list truncated".into()));
        }
        let mut lines = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            lines.push(SpectralLine {
                rest_wavelength: buf.get_f32_le(),
                observed_wavelength: buf.get_f32_le(),
                equivalent_width: buf.get_f32_le(),
                significance: buf.get_f32_le(),
            });
        }
        let n_flux = buf.get_u32_le() as usize;
        if buf.remaining() < n_flux * 4 {
            return Err(CatalogError::Corrupt("spectro flux truncated".into()));
        }
        let mut flux = Vec::with_capacity(n_flux);
        for _ in 0..n_flux {
            flux.push(buf.get_f32_le());
        }
        Ok(SpectroObj {
            obj_id,
            plate,
            fiber,
            redshift,
            redshift_err,
            class,
            lines,
            flux,
        })
    }

    /// Check the line list is redshift-consistent: every observed
    /// wavelength equals rest · (1 + z) within tolerance.
    pub fn lines_consistent(&self, tol: f32) -> bool {
        self.lines.iter().all(|l| {
            let predicted = l.rest_wavelength * (1.0 + self.redshift as f32);
            (l.observed_wavelength - predicted).abs() <= tol * predicted
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn sample() -> SpectroObj {
        SpectroObj {
            obj_id: 42,
            plate: 266,
            fiber: 113,
            redshift: 0.1045,
            redshift_err: 0.0002,
            class: SpecClass::Galaxy,
            lines: vec![
                SpectralLine {
                    rest_wavelength: 6562.8, // H-alpha
                    observed_wavelength: 6562.8 * 1.1045,
                    equivalent_width: -35.0,
                    significance: 18.0,
                },
                SpectralLine {
                    rest_wavelength: 4861.3, // H-beta
                    observed_wavelength: 4861.3 * 1.1045,
                    equivalent_width: -9.0,
                    significance: 6.5,
                },
            ],
            flux: (0..256).map(|i| (i as f32 * 0.1).sin().abs()).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let mut buf = BytesMut::new();
        s.write_to(&mut buf);
        assert_eq!(buf.len(), s.serialized_len());
        let back = SpectroObj::read_from(&mut buf.freeze()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn truncation_detected() {
        let s = sample();
        let mut buf = BytesMut::new();
        s.write_to(&mut buf);
        for cut in [3usize, 20, 30, buf.len() - 2] {
            let trunc = buf.clone().freeze().slice(..cut);
            assert!(
                SpectroObj::read_from(&mut trunc.clone()).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn line_consistency_check() {
        let s = sample();
        assert!(s.lines_consistent(1e-4));
        let mut broken = s.clone();
        broken.lines[0].observed_wavelength *= 1.05;
        assert!(!broken.lines_consistent(1e-4));
    }

    #[test]
    fn wavelength_grid_spans_coverage() {
        let n = 512;
        let w0 = SpectroObj::wavelength_of_bin(0, n);
        let w_last = SpectroObj::wavelength_of_bin(n - 1, n);
        assert!((w0 - WAVELENGTH_MIN_A).abs() < 1.0, "{w0}");
        assert!((w_last - WAVELENGTH_MAX_A).abs() < 1.0, "{w_last}");
        // Monotonic.
        let mut prev = 0.0;
        for i in 0..n {
            let w = SpectroObj::wavelength_of_bin(i, n);
            assert!(w > prev);
            prev = w;
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            obj_id in any::<u64>(),
            z in 0.0f64..6.0,
            n_lines in 0usize..8,
            n_flux in 0usize..64,
        ) {
            let s = SpectroObj {
                obj_id,
                redshift: z,
                class: SpecClass::Quasar,
                lines: (0..n_lines).map(|i| SpectralLine {
                    rest_wavelength: 4000.0 + i as f32 * 100.0,
                    observed_wavelength: (4000.0 + i as f32 * 100.0) * (1.0 + z as f32),
                    equivalent_width: -1.0,
                    significance: 5.0,
                }).collect(),
                flux: (0..n_flux).map(|i| i as f32).collect(),
                ..SpectroObj::default()
            };
            let mut buf = BytesMut::new();
            s.write_to(&mut buf);
            prop_assert_eq!(buf.len(), s.serialized_len());
            let back = SpectroObj::read_from(&mut buf.freeze()).unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
