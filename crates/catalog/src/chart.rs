//! Finding charts.
//!
//! Paper, §Typical Queries: "At the simplest level these include the
//! on-demand creation of (color) finding charts, with position
//! information."
//!
//! A [`FindingChart`] is a gnomonic (tangent-plane) projection of a field
//! with objects rendered by magnitude (brighter = bigger) and class,
//! plus labelled positions — renderable as ASCII for terminals or as a
//! PGM image for files. No plotting dependencies.

use crate::photoobj::ObjClass;
use crate::tag::TagObject;
use crate::CatalogError;
use sdss_skycoords::angle::{format_dms, format_hms};
use sdss_skycoords::SkyPos;

/// One plotted object.
#[derive(Debug, Clone, Copy)]
struct ChartObject {
    /// Tangent-plane coordinates, degrees (xi toward +RA, eta toward +Dec).
    xi: f64,
    eta: f64,
    mag: f32,
    class: ObjClass,
}

/// A finding chart for a field.
#[derive(Debug, Clone)]
pub struct FindingChart {
    center: SkyPos,
    /// Field half-width, degrees.
    half_width_deg: f64,
    objects: Vec<ChartObject>,
}

impl FindingChart {
    /// Start a chart centered on `(ra, dec)` with the given full field
    /// width in degrees.
    pub fn new(ra_deg: f64, dec_deg: f64, width_deg: f64) -> Result<FindingChart, CatalogError> {
        if width_deg <= 0.0 || width_deg > 90.0 {
            return Err(CatalogError::InvalidParam(format!(
                "chart width {width_deg} outside (0, 90] degrees"
            )));
        }
        let center =
            SkyPos::new(ra_deg, dec_deg).map_err(|e| CatalogError::InvalidParam(e.to_string()))?;
        Ok(FindingChart {
            center,
            half_width_deg: width_deg / 2.0,
            objects: Vec::new(),
        })
    }

    /// Gnomonic projection of a position onto the tangent plane at the
    /// chart center. Returns `None` behind the tangent point or outside
    /// the field.
    fn project(&self, pos: SkyPos) -> Option<(f64, f64)> {
        let c = self.center.unit_vec().as_vec3();
        let p = pos.unit_vec().as_vec3();
        let dot = c.dot(p);
        if dot <= 1e-6 {
            return None; // behind the tangent plane
        }
        // Local east/north basis at the center.
        let east = sdss_skycoords::UnitVec3::Z.cross(self.center.unit_vec());
        let east = east.normalized().ok()?;
        let north = self
            .center
            .unit_vec()
            .cross(east)
            .normalized()
            .expect("orthogonal basis");
        let xi = (p.dot(east.as_vec3()) / dot).to_degrees();
        let eta = (p.dot(north.as_vec3()) / dot).to_degrees();
        if xi.abs() > self.half_width_deg || eta.abs() > self.half_width_deg {
            return None;
        }
        Some((xi, eta))
    }

    /// Add an object; silently skips objects outside the field.
    pub fn add(&mut self, tag: &TagObject) {
        if let Some((xi, eta)) = self.project(tag.pos()) {
            self.objects.push(ChartObject {
                xi,
                eta,
                mag: tag.mag(2),
                class: tag.class,
            });
        }
    }

    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// Render as ASCII art (`cols` × `rows` characters). Symbols by
    /// class (`*` star, `o` galaxy, `Q` quasar), capitals for bright
    /// objects; the center is marked `+`.
    pub fn render_ascii(&self, cols: usize, rows: usize) -> String {
        let mut grid = vec![vec![' '; cols]; rows];
        // North up, East left (the astronomical convention).
        for obj in &self.objects {
            let col = ((self.half_width_deg - obj.xi) / (2.0 * self.half_width_deg)
                * (cols - 1) as f64)
                .round() as usize;
            let row = ((self.half_width_deg - obj.eta) / (2.0 * self.half_width_deg)
                * (rows - 1) as f64)
                .round() as usize;
            let bright = obj.mag < 18.0;
            let symbol = match (obj.class, bright) {
                (ObjClass::Star, true) => '*',
                (ObjClass::Star, false) => '.',
                (ObjClass::Galaxy, true) => 'O',
                (ObjClass::Galaxy, false) => 'o',
                (ObjClass::Quasar, _) => 'Q',
                (ObjClass::Unknown, _) => '?',
            };
            if row < rows && col < cols {
                // Brighter objects overwrite fainter marks.
                let cell = &mut grid[row][col];
                if *cell == ' ' || *cell == '.' || *cell == 'o' {
                    *cell = symbol;
                }
            }
        }
        // Center crosshair.
        grid[rows / 2][cols / 2] = '+';

        let mut out = String::new();
        out.push_str(&format!(
            "Finding chart  {}  {}   field {:.2} deg   N up, E left\n",
            format_hms(self.center.ra_deg()),
            format_dms(self.center.dec_deg()),
            self.half_width_deg * 2.0
        ));
        out.push_str(&format!("({} objects)\n", self.objects.len()));
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        out.push_str("* / . bright/faint star   O / o bright/faint galaxy   Q quasar\n");
        out
    }

    /// Render as a binary PGM (P5) grayscale image: objects are filled
    /// disks whose radius scales with brightness.
    pub fn render_pgm(&self, size: usize) -> Vec<u8> {
        let mut pixels = vec![0u8; size * size];
        for obj in &self.objects {
            let cx =
                (self.half_width_deg - obj.xi) / (2.0 * self.half_width_deg) * (size - 1) as f64;
            let cy =
                (self.half_width_deg - obj.eta) / (2.0 * self.half_width_deg) * (size - 1) as f64;
            // Radius: 1 px at mag 22, ~6 px at mag 14.
            let radius = ((22.0 - obj.mag as f64) * 0.6).clamp(1.0, 8.0);
            let value = match obj.class {
                ObjClass::Quasar => 255u8,
                _ => (255.0 - (obj.mag as f64 - 14.0) * 18.0).clamp(80.0, 255.0) as u8,
            };
            let r = radius.ceil() as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    if (dx * dx + dy * dy) as f64 <= radius * radius {
                        let x = cx as i64 + dx;
                        let y = cy as i64 + dy;
                        if (0..size as i64).contains(&x) && (0..size as i64).contains(&y) {
                            let idx = y as usize * size + x as usize;
                            pixels[idx] = pixels[idx].max(value);
                        }
                    }
                }
            }
        }
        let mut out = format!("P5\n{size} {size}\n255\n").into_bytes();
        out.extend_from_slice(&pixels);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SkyModel;

    fn field_chart(seed: u64) -> FindingChart {
        let objs = SkyModel::small(seed).generate().unwrap();
        let mut chart = FindingChart::new(185.0, 15.0, 1.0).unwrap();
        for o in &objs {
            chart.add(&TagObject::from_photo(o));
        }
        chart
    }

    #[test]
    fn only_field_objects_are_plotted() {
        let objs = SkyModel::small(1).generate().unwrap();
        let mut chart = FindingChart::new(185.0, 15.0, 1.0).unwrap();
        for o in &objs {
            chart.add(&TagObject::from_photo(o));
        }
        // The 5-deg generated cap holds far more objects than the 1-deg
        // chart field.
        assert!(chart.n_objects() > 0);
        assert!(chart.n_objects() < objs.len());
        // Everything plotted is inside the (square) field — check via a
        // fresh projection of a corner object.
        let far = SkyPos::new(190.0, 18.0).unwrap();
        assert!(chart.project(far).is_none());
    }

    #[test]
    fn projection_center_is_origin() {
        let chart = FindingChart::new(120.0, -30.0, 2.0).unwrap();
        let (xi, eta) = chart.project(SkyPos::new(120.0, -30.0).unwrap()).unwrap();
        assert!(xi.abs() < 1e-12 && eta.abs() < 1e-12);
        // A point 0.5 deg north maps to eta ~ +0.5, xi ~ 0.
        let (xi, eta) = chart.project(SkyPos::new(120.0, -29.5).unwrap()).unwrap();
        assert!(xi.abs() < 1e-9);
        assert!((eta - 0.5).abs() < 0.01, "eta = {eta}");
    }

    #[test]
    fn ascii_chart_renders() {
        let chart = field_chart(2);
        let art = chart.render_ascii(60, 24);
        assert!(art.contains("Finding chart"));
        assert!(art.contains('+'), "center crosshair missing");
        // At least one object symbol appears.
        assert!(art.chars().any(|c| "*.OoQ".contains(c)));
        // Correct dimensions: header(2) + rows + legend(1).
        assert_eq!(art.lines().count(), 2 + 24 + 1);
        for line in art.lines().skip(2).take(24) {
            assert_eq!(line.chars().count(), 60);
        }
    }

    #[test]
    fn pgm_is_well_formed() {
        let chart = field_chart(3);
        let pgm = chart.render_pgm(128);
        assert!(pgm.starts_with(b"P5\n128 128\n255\n"));
        let header_len = b"P5\n128 128\n255\n".len();
        assert_eq!(pgm.len(), header_len + 128 * 128);
        // Some pixels lit.
        assert!(pgm[header_len..].iter().any(|&p| p > 0));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(FindingChart::new(0.0, 0.0, 0.0).is_err());
        assert!(FindingChart::new(0.0, 0.0, 100.0).is_err());
        assert!(FindingChart::new(0.0, 95.0, 1.0).is_err());
    }
}
