//! Schema registry with multi-representation export.
//!
//! Paper, §Broader Metadata Issues: "The schema is defined in a high
//! level format, and an automated script generator creates the .h files
//! for the C++ classes, and the .ddl files for Objectivity/DB. This
//! approach enables us to easily create new data model representations in
//! the future (SQL, IDL, XML, etc)."
//!
//! Here the high-level format is Rust data ([`TableDef`]); exporters emit
//! SQL DDL, XML and JSON. The registry carries the actual archive schema
//! ([`archive_schema`]) used by tests and documentation.

/// Attribute types in the abstract schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    F32,
    F64,
    I16,
    I32,
    I64,
    U8,
    Bool,
    Text,
}

impl AttrType {
    fn sql(self) -> &'static str {
        match self {
            AttrType::F32 => "REAL",
            AttrType::F64 => "DOUBLE PRECISION",
            AttrType::I16 => "SMALLINT",
            AttrType::I32 => "INTEGER",
            AttrType::I64 => "BIGINT",
            AttrType::U8 => "SMALLINT",
            AttrType::Bool => "BOOLEAN",
            AttrType::Text => "VARCHAR",
        }
    }

    fn name(self) -> &'static str {
        match self {
            AttrType::F32 => "f32",
            AttrType::F64 => "f64",
            AttrType::I16 => "i16",
            AttrType::I32 => "i32",
            AttrType::I64 => "i64",
            AttrType::U8 => "u8",
            AttrType::Bool => "bool",
            AttrType::Text => "text",
        }
    }
}

/// One attribute of a table.
#[derive(Debug, Clone)]
pub struct AttrDef {
    pub name: String,
    pub ty: AttrType,
    pub unit: String,
    pub description: String,
    /// Repeat count > 1 models array attributes (radial profiles...).
    pub count: usize,
}

impl AttrDef {
    pub fn new(name: &str, ty: AttrType, unit: &str, description: &str) -> AttrDef {
        AttrDef {
            name: name.into(),
            ty,
            unit: unit.into(),
            description: description.into(),
            count: 1,
        }
    }

    pub fn array(mut self, count: usize) -> AttrDef {
        self.count = count;
        self
    }
}

/// One table (object class) of the archive.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub description: String,
    pub attrs: Vec<AttrDef>,
    pub primary_key: String,
}

/// The whole schema.
#[derive(Debug, Clone, Default)]
pub struct SchemaRegistry {
    pub tables: Vec<TableDef>,
}

impl SchemaRegistry {
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total attribute count (arrays count by repeat) of one table.
    pub fn attr_count(&self, table: &str) -> usize {
        self.table(table)
            .map(|t| t.attrs.iter().map(|a| a.count).sum())
            .unwrap_or(0)
    }

    /// SQL DDL export.
    pub fn export_sql(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            out.push_str(&format!("-- {}\n", t.description));
            out.push_str(&format!("CREATE TABLE {} (\n", t.name));
            let mut cols = Vec::new();
            for a in &t.attrs {
                if a.count == 1 {
                    cols.push(format!("    {} {}", a.name, a.ty.sql()));
                } else {
                    for i in 0..a.count {
                        cols.push(format!("    {}_{} {}", a.name, i, a.ty.sql()));
                    }
                }
            }
            cols.push(format!("    PRIMARY KEY ({})", t.primary_key));
            out.push_str(&cols.join(",\n"));
            out.push_str("\n);\n\n");
        }
        out
    }

    /// XML export (the interchange representation the paper plans:
    /// "We plan to define the interchange formats in XML, XSL, and XQL").
    pub fn export_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\"?>\n<schema>\n");
        for t in &self.tables {
            out.push_str(&format!(
                "  <table name=\"{}\" pk=\"{}\">\n    <description>{}</description>\n",
                t.name,
                t.primary_key,
                xml_escape(&t.description)
            ));
            for a in &t.attrs {
                out.push_str(&format!(
                    "    <attribute name=\"{}\" type=\"{}\" unit=\"{}\" count=\"{}\">{}</attribute>\n",
                    a.name,
                    a.ty.name(),
                    a.unit,
                    a.count,
                    xml_escape(&a.description)
                ));
            }
            out.push_str("  </table>\n");
        }
        out.push_str("</schema>\n");
        out
    }

    /// JSON export (hand-rolled; no serde_json dependency).
    pub fn export_json(&self) -> String {
        let mut out = String::from("{\n  \"tables\": [\n");
        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|t| {
                let attrs: Vec<String> = t
                    .attrs
                    .iter()
                    .map(|a| {
                        format!(
                            "        {{\"name\": \"{}\", \"type\": \"{}\", \"unit\": \"{}\", \"count\": {}, \"description\": \"{}\"}}",
                            a.name,
                            a.ty.name(),
                            a.unit,
                            a.count,
                            json_escape(&a.description)
                        )
                    })
                    .collect();
                format!(
                    "    {{\n      \"name\": \"{}\",\n      \"description\": \"{}\",\n      \"primary_key\": \"{}\",\n      \"attributes\": [\n{}\n      ]\n    }}",
                    t.name,
                    json_escape(&t.description),
                    t.primary_key,
                    attrs.join(",\n")
                )
            })
            .collect();
        out.push_str(&tables.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Build the actual archive schema: photoobj (with per-band blocks),
/// tag, and spectro.
pub fn archive_schema() -> SchemaRegistry {
    let mut photo = TableDef {
        name: "photoobj".into(),
        description: "Full photometric catalog object (~500 attributes)".into(),
        attrs: vec![
            AttrDef::new("objid", AttrType::I64, "", "survey-unique object id"),
            AttrDef::new("run", AttrType::I16, "", "imaging run"),
            AttrDef::new("rerun", AttrType::U8, "", "processing rerun"),
            AttrDef::new("camcol", AttrType::U8, "", "camera column 1..6"),
            AttrDef::new("field", AttrType::I16, "", "field within the run"),
            AttrDef::new("obj", AttrType::I16, "", "object within the field"),
            AttrDef::new("ra", AttrType::F64, "deg", "right ascension J2000"),
            AttrDef::new("dec", AttrType::F64, "deg", "declination J2000"),
            AttrDef::new("cx", AttrType::F64, "", "unit vector x"),
            AttrDef::new("cy", AttrType::F64, "", "unit vector y"),
            AttrDef::new("cz", AttrType::F64, "", "unit vector z"),
            AttrDef::new("ra_err", AttrType::F32, "arcsec", "astrometric error"),
            AttrDef::new("dec_err", AttrType::F32, "arcsec", "astrometric error"),
            AttrDef::new("class", AttrType::U8, "", "star/galaxy/qso classification"),
            AttrDef::new("flags", AttrType::I64, "", "pipeline flags"),
            AttrDef::new("status", AttrType::I32, "", "survey status bits"),
            AttrDef::new("htm20", AttrType::I64, "", "level-20 HTM id"),
            AttrDef::new("mjd", AttrType::F64, "day", "observation epoch"),
            AttrDef::new("parent", AttrType::I64, "", "deblend parent id"),
            AttrDef::new("spectro_target", AttrType::Bool, "", "spectro follow-up"),
        ],
        primary_key: "objid".into(),
    };
    // Per-band photometric block, 5 bands.
    for band in crate::photoobj::BAND_NAMES {
        for (field, unit, desc) in [
            ("psf_mag", "mag", "PSF magnitude"),
            ("psf_mag_err", "mag", "PSF magnitude error"),
            ("petro_mag", "mag", "Petrosian magnitude"),
            ("petro_mag_err", "mag", "Petrosian magnitude error"),
            ("model_mag", "mag", "model magnitude"),
            ("model_mag_err", "mag", "model magnitude error"),
            ("fiber_mag", "mag", "3-arcsec fiber magnitude"),
            ("fiber_mag_err", "mag", "fiber magnitude error"),
            ("petro_rad", "arcsec", "Petrosian radius"),
            ("petro_rad_err", "arcsec", "Petrosian radius error"),
            ("petro_r50", "arcsec", "half-light radius"),
            ("petro_r90", "arcsec", "90%-light radius"),
            ("iso_a", "arcsec", "isophotal major axis"),
            ("iso_b", "arcsec", "isophotal minor axis"),
            ("iso_phi", "deg", "isophotal position angle"),
            ("sb", "mag/arcsec2", "mean surface brightness"),
            ("stokes_q", "", "Stokes Q"),
            ("stokes_u", "", "Stokes U"),
            ("sky", "mag/arcsec2", "sky level"),
            ("sky_err", "mag/arcsec2", "sky level error"),
            ("extinction", "mag", "galactic extinction"),
            ("l_star", "", "star likelihood"),
            ("l_exp", "", "exponential likelihood"),
            ("l_dev", "", "de Vaucouleurs likelihood"),
        ] {
            photo.attrs.push(AttrDef::new(
                &format!("{field}_{band}"),
                AttrType::F32,
                unit,
                desc,
            ));
        }
        photo.attrs.push(
            AttrDef::new(
                &format!("profile_{band}"),
                AttrType::F32,
                "maggies/arcsec2",
                "radial profile bins",
            )
            .array(crate::photoobj::N_PROFILE_BINS),
        );
        photo.attrs.push(AttrDef::new(
            &format!("flags_{band}"),
            AttrType::I32,
            "",
            "per-band flags",
        ));
    }
    photo.attrs.push(
        AttrDef::new("extra", AttrType::F32, "", "extension attribute block")
            .array(crate::photoobj::N_EXTRA_ATTRS),
    );

    let tag = TableDef {
        name: "tag".into(),
        description: "Vertical partition: the 10 most popular attributes".into(),
        attrs: vec![
            AttrDef::new("objid", AttrType::I64, "", "pointer to photoobj"),
            AttrDef::new("cx", AttrType::F64, "", "unit vector x"),
            AttrDef::new("cy", AttrType::F64, "", "unit vector y"),
            AttrDef::new("cz", AttrType::F64, "", "unit vector z"),
            AttrDef::new("mag_u", AttrType::F32, "mag", "u magnitude"),
            AttrDef::new("mag_g", AttrType::F32, "mag", "g magnitude"),
            AttrDef::new("mag_r", AttrType::F32, "mag", "r magnitude"),
            AttrDef::new("mag_i", AttrType::F32, "mag", "i magnitude"),
            AttrDef::new("mag_z", AttrType::F32, "mag", "z magnitude"),
            AttrDef::new("size", AttrType::F32, "arcsec", "Petrosian radius in r"),
            AttrDef::new("class", AttrType::U8, "", "classification"),
        ],
        primary_key: "objid".into(),
    };

    let spectro = TableDef {
        name: "spectroobj".into(),
        description: "Spectroscopic catalog object with 1-D spectrum".into(),
        attrs: vec![
            AttrDef::new("objid", AttrType::I64, "", "photometric counterpart"),
            AttrDef::new("plate", AttrType::I16, "", "spectroscopic plate"),
            AttrDef::new("fiber", AttrType::I16, "", "fiber 1..640"),
            AttrDef::new("z", AttrType::F64, "", "heliocentric redshift"),
            AttrDef::new("z_err", AttrType::F64, "", "redshift error"),
            AttrDef::new("class", AttrType::U8, "", "spectral classification"),
            AttrDef::new("lines", AttrType::F32, "angstrom", "identified lines").array(64),
            AttrDef::new("flux", AttrType::F32, "maggies", "1-D spectrum").array(128),
        ],
        primary_key: "objid".into(),
    };

    SchemaRegistry {
        tables: vec![photo, tag, spectro],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photoobj_has_paper_scale_attribute_count() {
        let schema = archive_schema();
        let n = schema.attr_count("photoobj");
        // The paper says "about 500 distinct attributes".
        assert!(
            (250..=650).contains(&n),
            "photoobj models {n} attributes, expected paper-scale (~500)"
        );
        // Tag carries the 10 popular attributes + pointer.
        assert_eq!(schema.attr_count("tag"), 11);
    }

    #[test]
    fn sql_export_is_complete() {
        let schema = archive_schema();
        let sql = schema.export_sql();
        assert!(sql.contains("CREATE TABLE photoobj"));
        assert!(sql.contains("CREATE TABLE tag"));
        assert!(sql.contains("CREATE TABLE spectroobj"));
        assert!(sql.contains("PRIMARY KEY (objid)"));
        assert!(sql.contains("profile_r_0 REAL"));
        assert!(sql.contains("ra DOUBLE PRECISION"));
        // One CREATE per table, balanced parens.
        assert_eq!(sql.matches("CREATE TABLE").count(), 3);
        assert_eq!(sql.matches('(').count(), sql.matches(')').count());
    }

    #[test]
    fn xml_export_is_well_formed_enough() {
        let schema = archive_schema();
        let xml = schema.export_xml();
        assert!(xml.starts_with("<?xml"));
        assert_eq!(
            xml.matches("<table").count(),
            xml.matches("</table>").count()
        );
        assert_eq!(
            xml.matches("<attribute").count(),
            xml.matches("</attribute>").count()
        );
        assert!(xml.contains("name=\"photoobj\""));
        assert!(xml.ends_with("</schema>\n"));
    }

    #[test]
    fn json_export_balances_braces() {
        let schema = archive_schema();
        let json = schema.export_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"name\": \"tag\""));
        // Every quote is paired (even count).
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn escaping() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        assert_eq!(json_escape("say \"hi\" \\ bye"), "say \\\"hi\\\" \\\\ bye");
    }

    #[test]
    fn lookup_api() {
        let schema = archive_schema();
        assert!(schema.table("photoobj").is_some());
        assert!(schema.table("nope").is_none());
        assert_eq!(schema.attr_count("nope"), 0);
    }
}
