//! The full photometric object: the archive's base record.
//!
//! The real SDSS photometric catalog carries "about 500 distinct
//! attributes" per object at ~1.3 KB each (Table 1: 400 GB / 3·10⁸
//! objects). This struct models the same shape: identifiers, the dual
//! angular+Cartesian position (the paper stores x,y,z explicitly), per-band
//! photometry blocks with radial profiles, and an opaque extension block
//! standing in for the long tail of attributes, bringing the serialized
//! width to ~1.2 KB so that scan-rate and tag-speedup experiments see
//! paper-like byte ratios.

use crate::CatalogError;
use bytes::{Buf, BufMut};
use sdss_skycoords::{SkyPos, UnitVec3};

/// The five SDSS filters, blue to red.
pub const BAND_NAMES: [&str; 5] = ["u", "g", "r", "i", "z"];
/// Number of photometric bands.
pub const N_BANDS: usize = 5;
/// Radial profile bins per band (the real pipeline uses 15).
pub const N_PROFILE_BINS: usize = 15;
/// Width of the opaque "remaining attributes" block, in f32 slots.
pub const N_EXTRA_ATTRS: usize = 64;

/// Object classification from the photometric pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum ObjClass {
    #[default]
    Unknown = 0,
    Star = 1,
    Galaxy = 2,
    Quasar = 3,
}

impl ObjClass {
    pub fn from_u8(v: u8) -> Result<ObjClass, CatalogError> {
        match v {
            0 => Ok(ObjClass::Unknown),
            1 => Ok(ObjClass::Star),
            2 => Ok(ObjClass::Galaxy),
            3 => Ok(ObjClass::Quasar),
            other => Err(CatalogError::Corrupt(format!("bad class byte {other}"))),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ObjClass::Unknown => "UNKNOWN",
            ObjClass::Star => "STAR",
            ObjClass::Galaxy => "GALAXY",
            ObjClass::Quasar => "QSO",
        }
    }

    pub fn parse(s: &str) -> Option<ObjClass> {
        match s.to_ascii_uppercase().as_str() {
            "UNKNOWN" => Some(ObjClass::Unknown),
            "STAR" => Some(ObjClass::Star),
            "GALAXY" => Some(ObjClass::Galaxy),
            "QSO" | "QUASAR" => Some(ObjClass::Quasar),
            _ => None,
        }
    }
}

impl std::fmt::Display for ObjClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-band photometric measurements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BandPhot {
    pub psf_mag: f32,
    pub psf_mag_err: f32,
    pub petro_mag: f32,
    pub petro_mag_err: f32,
    pub model_mag: f32,
    pub model_mag_err: f32,
    pub fiber_mag: f32,
    pub fiber_mag_err: f32,
    /// Petrosian radius, arcsec.
    pub petro_rad: f32,
    pub petro_rad_err: f32,
    /// Radii containing 50% / 90% of the Petrosian flux, arcsec.
    pub petro_r50: f32,
    pub petro_r90: f32,
    /// Isophotal ellipse axes (arcsec) and position angle (deg).
    pub iso_a: f32,
    pub iso_b: f32,
    pub iso_phi: f32,
    /// Mean surface brightness within r50, mag/arcsec².
    pub surface_brightness: f32,
    /// Stokes shape parameters.
    pub stokes_q: f32,
    pub stokes_u: f32,
    pub sky_flux: f32,
    pub sky_flux_err: f32,
    /// Galactic extinction correction in this band, mag.
    pub extinction: f32,
    /// Star/exponential/de-Vaucouleurs profile likelihoods.
    pub star_likelihood: f32,
    pub exp_likelihood: f32,
    pub dev_likelihood: f32,
    /// Azimuthally averaged radial profile.
    pub profile: [f32; N_PROFILE_BINS],
    /// Per-band pipeline flags.
    pub flags: u32,
}

impl BandPhot {
    /// Serialized width: 24 named f32s + profile bins + u32 flags.
    pub const SERIALIZED_LEN: usize = (24 + N_PROFILE_BINS) * 4 + 4;

    fn write_to(&self, buf: &mut impl BufMut) {
        for v in [
            self.psf_mag,
            self.psf_mag_err,
            self.petro_mag,
            self.petro_mag_err,
            self.model_mag,
            self.model_mag_err,
            self.fiber_mag,
            self.fiber_mag_err,
            self.petro_rad,
            self.petro_rad_err,
            self.petro_r50,
            self.petro_r90,
            self.iso_a,
            self.iso_b,
            self.iso_phi,
            self.surface_brightness,
            self.stokes_q,
            self.stokes_u,
            self.sky_flux,
            self.sky_flux_err,
            self.extinction,
            self.star_likelihood,
            self.exp_likelihood,
            self.dev_likelihood,
        ] {
            buf.put_f32_le(v);
        }
        for v in self.profile {
            buf.put_f32_le(v);
        }
        buf.put_u32_le(self.flags);
    }

    fn read_from(buf: &mut impl Buf) -> BandPhot {
        let mut named = [0f32; 24];
        for v in named.iter_mut() {
            *v = buf.get_f32_le();
        }
        let mut profile = [0f32; N_PROFILE_BINS];
        for v in profile.iter_mut() {
            *v = buf.get_f32_le();
        }
        let flags = buf.get_u32_le();
        BandPhot {
            psf_mag: named[0],
            psf_mag_err: named[1],
            petro_mag: named[2],
            petro_mag_err: named[3],
            model_mag: named[4],
            model_mag_err: named[5],
            fiber_mag: named[6],
            fiber_mag_err: named[7],
            petro_rad: named[8],
            petro_rad_err: named[9],
            petro_r50: named[10],
            petro_r90: named[11],
            iso_a: named[12],
            iso_b: named[13],
            iso_phi: named[14],
            surface_brightness: named[15],
            stokes_q: named[16],
            stokes_u: named[17],
            sky_flux: named[18],
            sky_flux_err: named[19],
            extinction: named[20],
            star_likelihood: named[21],
            exp_likelihood: named[22],
            dev_likelihood: named[23],
            profile,
            flags,
        }
    }
}

/// A full photometric catalog object.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoObj {
    /// Survey-unique object id (bit-packed run/rerun/camcol/field/obj,
    /// see [`pack_obj_id`]).
    pub obj_id: u64,
    /// Imaging run number.
    pub run: u16,
    /// Processing rerun.
    pub rerun: u8,
    /// Camera column, 1..=6 (Figure 1: the 5×6 CCD array).
    pub camcol: u8,
    /// Field number within the run.
    pub field: u16,
    /// Object number within the field.
    pub id_in_field: u16,
    /// Right ascension / declination, J2000 degrees.
    pub ra_deg: f64,
    pub dec_deg: f64,
    /// The stored Cartesian unit vector (paper: "We store the angular
    /// coordinates in a Cartesian form, i.e. as a triplet of x,y,z").
    pub x: f64,
    pub y: f64,
    pub z: f64,
    /// Astrometric errors, arcsec.
    pub ra_err_arcsec: f32,
    pub dec_err_arcsec: f32,
    /// Photometric classification.
    pub class: ObjClass,
    /// Object-level pipeline flags.
    pub flags: u64,
    /// Survey status bits (primary/secondary, masked, ...).
    pub status: u32,
    /// Deep (level-20) HTM id of the position, precomputed at load time.
    pub htm20: u64,
    /// Modified Julian Date of the observation.
    pub mjd: f64,
    /// Parent object id for deblended children (0 = none).
    pub parent_id: u64,
    /// Whether targeted for spectroscopy.
    pub spectro_target: bool,
    /// Per-band photometry, indexed u,g,r,i,z.
    pub bands: [BandPhot; N_BANDS],
    /// Opaque block standing in for the long tail of the ~500 real
    /// attributes (observation metadata, covariances, match tables, ...).
    pub extra: [f32; N_EXTRA_ATTRS],
}

impl Default for PhotoObj {
    fn default() -> Self {
        PhotoObj {
            obj_id: 0,
            run: 0,
            rerun: 0,
            camcol: 0,
            field: 0,
            id_in_field: 0,
            ra_deg: 0.0,
            dec_deg: 0.0,
            // Default position is (ra=0, dec=0) whose unit vector is +x;
            // keeping x=1 preserves the Cartesian/angular invariant.
            x: 1.0,
            y: 0.0,
            z: 0.0,
            ra_err_arcsec: 0.0,
            dec_err_arcsec: 0.0,
            class: ObjClass::Unknown,
            flags: 0,
            status: 0,
            htm20: 0,
            mjd: 0.0,
            parent_id: 0,
            spectro_target: false,
            bands: [BandPhot::default(); N_BANDS],
            extra: [0.0; N_EXTRA_ATTRS],
        }
    }
}

impl PhotoObj {
    /// Fixed serialized width in bytes (see `write_to` for the layout).
    pub const SERIALIZED_LEN: usize = 8 // obj_id
        + 2 + 1 + 1 + 2 + 2            // run..id_in_field
        + 8 * 5                        // ra, dec, x, y, z
        + 4 + 4                        // astrometric errors
        + 1 + 1                        // class, spectro_target
        + 8 + 4 + 8 + 8 + 8            // flags, status, htm20, mjd, parent
        + N_BANDS * BandPhot::SERIALIZED_LEN
        + N_EXTRA_ATTRS * 4;

    /// Set position fields (angular + Cartesian) consistently.
    pub fn set_position(&mut self, pos: SkyPos) {
        self.ra_deg = pos.ra_deg();
        self.dec_deg = pos.dec_deg();
        let v = pos.unit_vec();
        self.x = v.x();
        self.y = v.y();
        self.z = v.z();
    }

    /// The stored Cartesian position.
    #[inline]
    pub fn unit_vec(&self) -> UnitVec3 {
        UnitVec3::new_unchecked(self.x, self.y, self.z)
    }

    pub fn pos(&self) -> SkyPos {
        SkyPos::new(self.ra_deg, self.dec_deg).expect("stored position is valid")
    }

    /// Model magnitude in band `b` (0..5 = u,g,r,i,z).
    #[inline]
    pub fn mag(&self, b: usize) -> f32 {
        self.bands[b].model_mag
    }

    /// Colors: differences of adjacent-band model magnitudes.
    #[inline]
    pub fn color_ug(&self) -> f32 {
        self.mag(0) - self.mag(1)
    }

    #[inline]
    pub fn color_gr(&self) -> f32 {
        self.mag(1) - self.mag(2)
    }

    #[inline]
    pub fn color_ri(&self) -> f32 {
        self.mag(2) - self.mag(3)
    }

    #[inline]
    pub fn color_iz(&self) -> f32 {
        self.mag(3) - self.mag(4)
    }

    /// Petrosian radius in r: the "1 size" attribute of the tag object.
    #[inline]
    pub fn size_arcsec(&self) -> f32 {
        self.bands[2].petro_rad
    }

    /// Serialize into a fixed-width little-endian record.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.obj_id);
        buf.put_u16_le(self.run);
        buf.put_u8(self.rerun);
        buf.put_u8(self.camcol);
        buf.put_u16_le(self.field);
        buf.put_u16_le(self.id_in_field);
        buf.put_f64_le(self.ra_deg);
        buf.put_f64_le(self.dec_deg);
        buf.put_f64_le(self.x);
        buf.put_f64_le(self.y);
        buf.put_f64_le(self.z);
        buf.put_f32_le(self.ra_err_arcsec);
        buf.put_f32_le(self.dec_err_arcsec);
        buf.put_u8(self.class as u8);
        buf.put_u8(self.spectro_target as u8);
        buf.put_u64_le(self.flags);
        buf.put_u32_le(self.status);
        buf.put_u64_le(self.htm20);
        buf.put_f64_le(self.mjd);
        buf.put_u64_le(self.parent_id);
        for band in &self.bands {
            band.write_to(buf);
        }
        for v in self.extra {
            buf.put_f32_le(v);
        }
    }

    /// Deserialize a record written by [`PhotoObj::write_to`].
    pub fn read_from(buf: &mut impl Buf) -> Result<PhotoObj, CatalogError> {
        if buf.remaining() < Self::SERIALIZED_LEN {
            return Err(CatalogError::Corrupt(format!(
                "need {} bytes for PhotoObj, have {}",
                Self::SERIALIZED_LEN,
                buf.remaining()
            )));
        }
        let obj_id = buf.get_u64_le();
        let run = buf.get_u16_le();
        let rerun = buf.get_u8();
        let camcol = buf.get_u8();
        let field = buf.get_u16_le();
        let id_in_field = buf.get_u16_le();
        let ra_deg = buf.get_f64_le();
        let dec_deg = buf.get_f64_le();
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let z = buf.get_f64_le();
        let ra_err_arcsec = buf.get_f32_le();
        let dec_err_arcsec = buf.get_f32_le();
        let class = ObjClass::from_u8(buf.get_u8())?;
        let spectro_target = buf.get_u8() != 0;
        let flags = buf.get_u64_le();
        let status = buf.get_u32_le();
        let htm20 = buf.get_u64_le();
        let mjd = buf.get_f64_le();
        let parent_id = buf.get_u64_le();
        let mut bands = [BandPhot::default(); N_BANDS];
        for band in bands.iter_mut() {
            *band = BandPhot::read_from(buf);
        }
        let mut extra = [0f32; N_EXTRA_ATTRS];
        for v in extra.iter_mut() {
            *v = buf.get_f32_le();
        }
        Ok(PhotoObj {
            obj_id,
            run,
            rerun,
            camcol,
            field,
            id_in_field,
            ra_deg,
            dec_deg,
            x,
            y,
            z,
            ra_err_arcsec,
            dec_err_arcsec,
            class,
            flags,
            status,
            htm20,
            mjd,
            parent_id,
            spectro_target,
            bands,
            extra,
        })
    }
}

/// Pack SDSS-style identifiers into a survey-unique 64-bit object id:
/// `run(16) | rerun(8) | camcol(4) | field(16) | id_in_field(16)`,
/// with a leading version nibble.
pub fn pack_obj_id(run: u16, rerun: u8, camcol: u8, field: u16, id_in_field: u16) -> u64 {
    debug_assert!(camcol <= 15, "camcol must fit 4 bits");
    (1u64 << 60)
        | ((run as u64) << 44)
        | ((rerun as u64) << 36)
        | ((camcol as u64) << 32)
        | ((field as u64) << 16)
        | id_in_field as u64
}

/// Unpack an id produced by [`pack_obj_id`].
pub fn unpack_obj_id(id: u64) -> (u16, u8, u8, u16, u16) {
    (
        ((id >> 44) & 0xffff) as u16,
        ((id >> 36) & 0xff) as u8,
        ((id >> 32) & 0xf) as u8,
        ((id >> 16) & 0xffff) as u16,
        (id & 0xffff) as u16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    #[test]
    fn serialized_len_matches_write() {
        let obj = PhotoObj::default();
        let mut buf = BytesMut::new();
        obj.write_to(&mut buf);
        assert_eq!(buf.len(), PhotoObj::SERIALIZED_LEN);
        // Paper scale check: the real catalog runs ~1.33 KB/object
        // (400 GB / 3e8); ours must be within 2x of that. (Evaluated on
        // the measured buffer so the assertion isn't constant-folded.)
        assert!(buf.len() > 650 && buf.len() < 2700, "len = {}", buf.len());
    }

    #[test]
    fn roundtrip_default() {
        let obj = PhotoObj::default();
        let mut buf = BytesMut::new();
        obj.write_to(&mut buf);
        let back = PhotoObj::read_from(&mut buf.freeze()).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn read_from_short_buffer_fails() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(42);
        assert!(matches!(
            PhotoObj::read_from(&mut buf.freeze()),
            Err(CatalogError::Corrupt(_))
        ));
    }

    #[test]
    fn class_byte_roundtrip_and_rejects() {
        for c in [
            ObjClass::Unknown,
            ObjClass::Star,
            ObjClass::Galaxy,
            ObjClass::Quasar,
        ] {
            assert_eq!(ObjClass::from_u8(c as u8).unwrap(), c);
            assert_eq!(ObjClass::parse(c.as_str()), Some(c));
        }
        assert!(ObjClass::from_u8(4).is_err());
        assert_eq!(ObjClass::parse("QUASAR"), Some(ObjClass::Quasar));
        assert_eq!(ObjClass::parse("nebula"), None);
    }

    #[test]
    fn position_consistency() {
        let mut obj = PhotoObj::default();
        let pos = SkyPos::new(185.0, 15.5).unwrap();
        obj.set_position(pos);
        assert!((obj.unit_vec().separation_deg(pos.unit_vec())).abs() < 1e-12);
        assert!((obj.pos().separation_deg(pos)).abs() < 1e-12);
    }

    #[test]
    fn colors_are_band_differences() {
        let mut obj = PhotoObj::default();
        for (i, mag) in [19.0f32, 18.0, 17.5, 17.2, 17.0].into_iter().enumerate() {
            obj.bands[i].model_mag = mag;
        }
        assert!((obj.color_ug() - 1.0).abs() < 1e-6);
        assert!((obj.color_gr() - 0.5).abs() < 1e-6);
        assert!((obj.color_ri() - 0.3).abs() < 1e-6);
        assert!((obj.color_iz() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn obj_id_packing() {
        let id = pack_obj_id(752, 40, 3, 618, 213);
        let (run, rerun, camcol, field, obj) = unpack_obj_id(id);
        assert_eq!((run, rerun, camcol, field, obj), (752, 40, 3, 618, 213));
        // Ids are unique across distinct coordinates.
        assert_ne!(id, pack_obj_id(752, 40, 3, 618, 214));
        assert_ne!(id, pack_obj_id(752, 40, 4, 618, 213));
    }

    proptest! {
        #[test]
        fn prop_serialization_roundtrip(
            obj_id in any::<u64>(),
            run in any::<u16>(), field in any::<u16>(),
            ra in 0.0f64..360.0, dec in -90.0f64..90.0,
            mags in proptest::array::uniform5(10.0f32..25.0),
            profile0 in any::<f32>(),
            flags in any::<u64>(),
            class_byte in 0u8..4,
        ) {
            let mut obj = PhotoObj {
                obj_id,
                run,
                field,
                flags,
                class: ObjClass::from_u8(class_byte).unwrap(),
                ..PhotoObj::default()
            };
            obj.set_position(SkyPos::new(ra, dec).unwrap());
            for (i, m) in mags.into_iter().enumerate() {
                obj.bands[i].model_mag = m;
                obj.bands[i].profile[0] = profile0;
            }
            let mut buf = BytesMut::new();
            obj.write_to(&mut buf);
            prop_assert_eq!(buf.len(), PhotoObj::SERIALIZED_LEN);
            let back = PhotoObj::read_from(&mut buf.freeze()).unwrap();
            prop_assert_eq!(back, obj);
        }

        #[test]
        fn prop_obj_id_roundtrip(run in any::<u16>(), rerun in any::<u8>(), camcol in 0u8..16, field in any::<u16>(), obj in any::<u16>()) {
            let id = pack_obj_id(run, rerun, camcol, field, obj);
            prop_assert_eq!(unpack_obj_id(id), (run, rerun, camcol, field, obj));
        }
    }
}
