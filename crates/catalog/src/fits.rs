//! FITS interchange: blocked binary and ASCII table streams.
//!
//! Paper, §Broader Metadata Issues: "About 20 years ago, astronomers
//! agreed on exchanging most of their data in \[the\] self-descriptive
//! data format \[FITS\]. \[...\] Unfortunately, FITS files do not support
//! streaming data, although data could be blocked into separate FITS
//! packets. We are currently implementing both an ASCII and a binary FITS
//! output stream, using such a blocked approach."
//!
//! This module implements exactly that subset of FITS 4.0:
//!
//! * 2880-byte logical records, 80-character header cards;
//! * `BINTABLE` extensions (big-endian `E`/`D`/`K`/`J` columns);
//! * `TABLE` (ASCII) extensions with fixed-width columns;
//! * a **blocked stream**: a sequence of self-contained FITS packets of
//!   up to `rows_per_packet` rows each, so a result set of unknown
//!   cardinality can stream (a reader consumes packets until EOF).

use crate::CatalogError;
use bytes::{BufMut, BytesMut};

/// FITS logical record size.
pub const FITS_BLOCK: usize = 2880;
/// Header card width.
pub const CARD: usize = 80;

/// Column types supported (a practical subset of the standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 32-bit IEEE float, TFORM `E`.
    F32,
    /// 64-bit IEEE float, TFORM `D`.
    F64,
    /// 64-bit signed integer, TFORM `K`.
    I64,
    /// 32-bit signed integer, TFORM `J`.
    I32,
}

impl ColType {
    pub fn tform(self) -> &'static str {
        match self {
            ColType::F32 => "1E",
            ColType::F64 => "1D",
            ColType::I64 => "1K",
            ColType::I32 => "1J",
        }
    }

    pub fn width(self) -> usize {
        match self {
            ColType::F32 | ColType::I32 => 4,
            ColType::F64 | ColType::I64 => 8,
        }
    }

    fn from_tform(s: &str) -> Result<ColType, CatalogError> {
        match s.trim() {
            "1E" | "E" => Ok(ColType::F32),
            "1D" | "D" => Ok(ColType::F64),
            "1K" | "K" => Ok(ColType::I64),
            "1J" | "J" => Ok(ColType::I32),
            other => Err(CatalogError::Fits(format!("unsupported TFORM {other:?}"))),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
    pub unit: String,
}

/// A cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    F32(f32),
    F64(f64),
    I64(i64),
    I32(i32),
}

impl Cell {
    fn matches(&self, ty: ColType) -> bool {
        matches!(
            (self, ty),
            (Cell::F32(_), ColType::F32)
                | (Cell::F64(_), ColType::F64)
                | (Cell::I64(_), ColType::I64)
                | (Cell::I32(_), ColType::I32)
        )
    }
}

/// An in-memory FITS table (one packet's worth of rows).
#[derive(Debug, Clone, PartialEq)]
pub struct FitsTable {
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<Cell>>,
}

impl FitsTable {
    pub fn new(columns: Vec<Column>) -> FitsTable {
        FitsTable {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, row: Vec<Cell>) -> Result<(), CatalogError> {
        if row.len() != self.columns.len() {
            return Err(CatalogError::Fits(format!(
                "row has {} cells for {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (cell, col) in row.iter().zip(&self.columns) {
            if !cell.matches(col.ty) {
                return Err(CatalogError::Fits(format!(
                    "cell {cell:?} does not match column {} ({:?})",
                    col.name, col.ty
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    fn row_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }
}

/// Pad `buf` with `fill` to the next 2880-byte boundary.
fn pad_to_block(buf: &mut BytesMut, fill: u8) {
    let rem = buf.len() % FITS_BLOCK;
    if rem != 0 {
        buf.put_bytes(fill, FITS_BLOCK - rem);
    }
}

/// Format one header card: `KEYWORD = value / comment`, 80 bytes.
fn card(keyword: &str, value: &str, comment: &str) -> [u8; CARD] {
    let mut s = format!("{keyword:<8}= {value:>20}");
    if !comment.is_empty() {
        s.push_str(" / ");
        s.push_str(comment);
    }
    let mut out = [b' '; CARD];
    let bytes = s.as_bytes();
    let n = bytes.len().min(CARD);
    out[..n].copy_from_slice(&bytes[..n]);
    out
}

fn card_str(keyword: &str, value: &str, comment: &str) -> [u8; CARD] {
    card(keyword, &format!("'{value:<8}'"), comment)
}

fn end_card() -> [u8; CARD] {
    let mut out = [b' '; CARD];
    out[..3].copy_from_slice(b"END");
    out
}

/// Write the (empty) primary HDU required before any extension.
pub fn write_primary_header(buf: &mut BytesMut) {
    buf.extend_from_slice(&card("SIMPLE", "T", "conforms to FITS"));
    buf.extend_from_slice(&card("BITPIX", "8", ""));
    buf.extend_from_slice(&card("NAXIS", "0", "no primary data"));
    buf.extend_from_slice(&card("EXTEND", "T", "extensions follow"));
    buf.extend_from_slice(&end_card());
    pad_to_block(buf, b' ');
}

/// Serialize a table as one `BINTABLE` extension (header + big-endian
/// data, both padded to blocks).
pub fn write_bintable(buf: &mut BytesMut, table: &FitsTable, extname: &str) {
    let row_bytes = table.row_bytes();
    buf.extend_from_slice(&card_str("XTENSION", "BINTABLE", "binary table"));
    buf.extend_from_slice(&card("BITPIX", "8", ""));
    buf.extend_from_slice(&card("NAXIS", "2", ""));
    buf.extend_from_slice(&card("NAXIS1", &row_bytes.to_string(), "bytes per row"));
    buf.extend_from_slice(&card("NAXIS2", &table.rows.len().to_string(), "rows"));
    buf.extend_from_slice(&card("PCOUNT", "0", ""));
    buf.extend_from_slice(&card("GCOUNT", "1", ""));
    buf.extend_from_slice(&card(
        "TFIELDS",
        &table.columns.len().to_string(),
        "columns",
    ));
    buf.extend_from_slice(&card_str("EXTNAME", extname, ""));
    for (i, col) in table.columns.iter().enumerate() {
        let n = i + 1;
        buf.extend_from_slice(&card_str(&format!("TTYPE{n}"), &col.name, ""));
        buf.extend_from_slice(&card_str(&format!("TFORM{n}"), col.ty.tform(), ""));
        if !col.unit.is_empty() {
            buf.extend_from_slice(&card_str(&format!("TUNIT{n}"), &col.unit, ""));
        }
    }
    buf.extend_from_slice(&end_card());
    pad_to_block(buf, b' ');

    // Data: big-endian per the FITS standard.
    for row in &table.rows {
        for cell in row {
            match cell {
                Cell::F32(v) => buf.put_f32(*v),
                Cell::F64(v) => buf.put_f64(*v),
                Cell::I64(v) => buf.put_i64(*v),
                Cell::I32(v) => buf.put_i32(*v),
            }
        }
    }
    pad_to_block(buf, 0);
}

/// ASCII `TABLE` extension: every cell formatted into a fixed 24-char
/// field.
pub fn write_ascii_table(buf: &mut BytesMut, table: &FitsTable, extname: &str) {
    const FIELD: usize = 24;
    let row_bytes = FIELD * table.columns.len();
    buf.extend_from_slice(&card_str("XTENSION", "TABLE", "ASCII table"));
    buf.extend_from_slice(&card("BITPIX", "8", ""));
    buf.extend_from_slice(&card("NAXIS", "2", ""));
    buf.extend_from_slice(&card("NAXIS1", &row_bytes.to_string(), "chars per row"));
    buf.extend_from_slice(&card("NAXIS2", &table.rows.len().to_string(), "rows"));
    buf.extend_from_slice(&card("PCOUNT", "0", ""));
    buf.extend_from_slice(&card("GCOUNT", "1", ""));
    buf.extend_from_slice(&card(
        "TFIELDS",
        &table.columns.len().to_string(),
        "columns",
    ));
    buf.extend_from_slice(&card_str("EXTNAME", extname, ""));
    for (i, col) in table.columns.iter().enumerate() {
        let n = i + 1;
        buf.extend_from_slice(&card_str(&format!("TTYPE{n}"), &col.name, ""));
        buf.extend_from_slice(&card_str(&format!("TFORM{n}"), "A24", ""));
        buf.extend_from_slice(&card(
            &format!("TBCOL{n}"),
            &(i * FIELD + 1).to_string(),
            "",
        ));
    }
    buf.extend_from_slice(&end_card());
    pad_to_block(buf, b' ');

    for row in &table.rows {
        for cell in row {
            let text = match cell {
                Cell::F32(v) => format!("{v:>24.7e}"),
                Cell::F64(v) => format!("{v:>24.15e}"),
                Cell::I64(v) => format!("{v:>24}"),
                Cell::I32(v) => format!("{v:>24}"),
            };
            buf.extend_from_slice(&text.as_bytes()[..FIELD]);
        }
    }
    pad_to_block(buf, b' ');
}

/// The blocked output stream: each flush emits one complete FITS file
/// (primary header + one BINTABLE packet) into the sink.
pub struct BlockedFitsStream<W: std::io::Write> {
    sink: W,
    columns: Vec<Column>,
    pending: FitsTable,
    rows_per_packet: usize,
    packets_written: usize,
}

impl<W: std::io::Write> BlockedFitsStream<W> {
    pub fn new(sink: W, columns: Vec<Column>, rows_per_packet: usize) -> BlockedFitsStream<W> {
        BlockedFitsStream {
            sink,
            pending: FitsTable::new(columns.clone()),
            columns,
            rows_per_packet: rows_per_packet.max(1),
            packets_written: 0,
        }
    }

    pub fn push_row(&mut self, row: Vec<Cell>) -> Result<(), CatalogError> {
        self.pending.push_row(row)?;
        if self.pending.rows.len() >= self.rows_per_packet {
            self.flush_packet()?;
        }
        Ok(())
    }

    /// Emit the pending rows as one self-contained FITS packet.
    pub fn flush_packet(&mut self) -> Result<(), CatalogError> {
        if self.pending.rows.is_empty() {
            return Ok(());
        }
        let mut buf = BytesMut::new();
        write_primary_header(&mut buf);
        write_bintable(&mut buf, &self.pending, "STREAM");
        self.sink
            .write_all(&buf)
            .map_err(|e| CatalogError::Fits(format!("io: {e}")))?;
        self.pending = FitsTable::new(self.columns.clone());
        self.packets_written += 1;
        Ok(())
    }

    /// Flush the tail packet and return the sink.
    pub fn finish(mut self) -> Result<(W, usize), CatalogError> {
        self.flush_packet()?;
        self.sink
            .flush()
            .map_err(|e| CatalogError::Fits(format!("io: {e}")))?;
        Ok((self.sink, self.packets_written))
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Parse all BINTABLE packets from a blocked stream (or a single file).
pub fn read_packets(data: &[u8]) -> Result<Vec<FitsTable>, CatalogError> {
    let mut at = 0usize;
    let mut out = Vec::new();
    while at < data.len() {
        let (cards, header_end) = read_header(data, at)?;
        let get = |k: &str| -> Option<String> {
            cards
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        if get("SIMPLE").is_some() {
            // Primary HDU with NAXIS=0 → no data, move on.
            at = header_end;
            continue;
        }
        let xtension = get("XTENSION").unwrap_or_default();
        if !xtension.contains("BINTABLE") {
            return Err(CatalogError::Fits(format!(
                "unsupported extension {xtension:?}"
            )));
        }
        let naxis1: usize = parse_int(&get("NAXIS1").ok_or_else(|| miss("NAXIS1"))?)?;
        let naxis2: usize = parse_int(&get("NAXIS2").ok_or_else(|| miss("NAXIS2"))?)?;
        let tfields: usize = parse_int(&get("TFIELDS").ok_or_else(|| miss("TFIELDS"))?)?;
        let mut columns = Vec::with_capacity(tfields);
        for i in 1..=tfields {
            let name = strip_quotes(&get(&format!("TTYPE{i}")).ok_or_else(|| miss("TTYPE"))?);
            let tform = strip_quotes(&get(&format!("TFORM{i}")).ok_or_else(|| miss("TFORM"))?);
            let unit = get(&format!("TUNIT{i}"))
                .map(|u| strip_quotes(&u))
                .unwrap_or_default();
            columns.push(Column {
                name,
                ty: ColType::from_tform(&tform)?,
                unit,
            });
        }
        let row_bytes: usize = columns.iter().map(|c| c.ty.width()).sum();
        if row_bytes != naxis1 {
            return Err(CatalogError::Fits(format!(
                "NAXIS1 {naxis1} != computed row width {row_bytes}"
            )));
        }
        let data_len = naxis1 * naxis2;
        let data_end = header_end + data_len;
        if data_end > data.len() {
            return Err(CatalogError::Fits("truncated data section".into()));
        }
        let mut table = FitsTable::new(columns.clone());
        let mut p = header_end;
        for _ in 0..naxis2 {
            let mut row = Vec::with_capacity(columns.len());
            for col in &columns {
                let w = col.ty.width();
                let bytes = &data[p..p + w];
                let cell = match col.ty {
                    ColType::F32 => Cell::F32(f32::from_be_bytes(bytes.try_into().unwrap())),
                    ColType::F64 => Cell::F64(f64::from_be_bytes(bytes.try_into().unwrap())),
                    ColType::I64 => Cell::I64(i64::from_be_bytes(bytes.try_into().unwrap())),
                    ColType::I32 => Cell::I32(i32::from_be_bytes(bytes.try_into().unwrap())),
                };
                row.push(cell);
                p += w;
            }
            table.rows.push(row);
        }
        out.push(table);
        // Skip padding to the next block boundary.
        at = data_end.div_ceil(FITS_BLOCK) * FITS_BLOCK;
    }
    Ok(out)
}

fn miss(k: &str) -> CatalogError {
    CatalogError::Fits(format!("missing {k} card"))
}

fn parse_int(s: &str) -> Result<usize, CatalogError> {
    s.trim()
        .parse()
        .map_err(|_| CatalogError::Fits(format!("bad integer {s:?}")))
}

fn strip_quotes(s: &str) -> String {
    s.trim().trim_matches('\'').trim().to_string()
}

/// Read one header (all cards until END), returning (cards, data offset).
fn read_header(data: &[u8], start: usize) -> Result<(Vec<(String, String)>, usize), CatalogError> {
    let mut cards = Vec::new();
    let mut at = start;
    loop {
        if at + CARD > data.len() {
            return Err(CatalogError::Fits("truncated header".into()));
        }
        let raw = &data[at..at + CARD];
        let text = std::str::from_utf8(raw)
            .map_err(|_| CatalogError::Fits("non-ASCII header card".into()))?;
        at += CARD;
        let keyword = text[..8.min(text.len())].trim().to_string();
        if keyword == "END" {
            break;
        }
        if let Some(eq) = text.find('=') {
            let rest = &text[eq + 1..];
            let value = match rest.find('/') {
                Some(slash) => rest[..slash].trim().to_string(),
                None => rest.trim().to_string(),
            };
            cards.push((keyword, value));
        }
    }
    // Data begins at the next block boundary.
    let data_start = at.div_ceil(FITS_BLOCK) * FITS_BLOCK;
    Ok((cards, data_start))
}

/// Standard column set for exporting tag rows.
pub fn tag_columns() -> Vec<Column> {
    vec![
        Column {
            name: "OBJID".into(),
            ty: ColType::I64,
            unit: String::new(),
        },
        Column {
            name: "RA".into(),
            ty: ColType::F64,
            unit: "deg".into(),
        },
        Column {
            name: "DEC".into(),
            ty: ColType::F64,
            unit: "deg".into(),
        },
        Column {
            name: "MAG_U".into(),
            ty: ColType::F32,
            unit: "mag".into(),
        },
        Column {
            name: "MAG_G".into(),
            ty: ColType::F32,
            unit: "mag".into(),
        },
        Column {
            name: "MAG_R".into(),
            ty: ColType::F32,
            unit: "mag".into(),
        },
        Column {
            name: "MAG_I".into(),
            ty: ColType::F32,
            unit: "mag".into(),
        },
        Column {
            name: "MAG_Z".into(),
            ty: ColType::F32,
            unit: "mag".into(),
        },
        Column {
            name: "SIZE".into(),
            ty: ColType::F32,
            unit: "arcsec".into(),
        },
        Column {
            name: "CLASS".into(),
            ty: ColType::I32,
            unit: String::new(),
        },
    ]
}

/// Convert a tag object into a row for [`tag_columns`].
pub fn tag_row(t: &crate::tag::TagObject) -> Vec<Cell> {
    let pos = t.pos();
    vec![
        Cell::I64(t.obj_id as i64),
        Cell::F64(pos.ra_deg()),
        Cell::F64(pos.dec_deg()),
        Cell::F32(t.mags[0]),
        Cell::F32(t.mags[1]),
        Cell::F32(t.mags[2]),
        Cell::F32(t.mags[3]),
        Cell::F32(t.mags[4]),
        Cell::F32(t.size),
        Cell::I32(t.class as i32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(rows: usize) -> FitsTable {
        let mut t = FitsTable::new(vec![
            Column {
                name: "X".into(),
                ty: ColType::F64,
                unit: "deg".into(),
            },
            Column {
                name: "N".into(),
                ty: ColType::I32,
                unit: String::new(),
            },
        ]);
        for i in 0..rows {
            t.push_row(vec![Cell::F64(i as f64 * 1.5), Cell::I32(i as i32)])
                .unwrap();
        }
        t
    }

    #[test]
    fn blocks_are_2880_aligned() {
        let mut buf = BytesMut::new();
        write_primary_header(&mut buf);
        assert_eq!(buf.len() % FITS_BLOCK, 0);
        write_bintable(&mut buf, &sample_table(10), "TEST");
        assert_eq!(buf.len() % FITS_BLOCK, 0);
        let mut buf2 = BytesMut::new();
        write_ascii_table(&mut buf2, &sample_table(3), "TEST");
        assert_eq!(buf2.len() % FITS_BLOCK, 0);
    }

    #[test]
    fn bintable_roundtrip() {
        let table = sample_table(100);
        let mut buf = BytesMut::new();
        write_primary_header(&mut buf);
        write_bintable(&mut buf, &table, "DATA");
        let packets = read_packets(&buf).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0], table);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = sample_table(1);
        assert!(t.push_row(vec![Cell::I32(1), Cell::I32(2)]).is_err());
        assert!(t.push_row(vec![Cell::F64(1.0)]).is_err());
    }

    #[test]
    fn blocked_stream_roundtrip() {
        let mut sink: Vec<u8> = Vec::new();
        {
            let mut stream = BlockedFitsStream::new(&mut sink, tag_columns(), 64);
            let objs = crate::gen::SkyModel::small(3).generate().unwrap();
            for o in objs.iter().take(200) {
                let tag = crate::tag::TagObject::from_photo(o);
                stream.push_row(tag_row(&tag)).unwrap();
            }
            let (_, packets) = stream.finish().unwrap();
            // 200 rows at 64/packet → 4 packets (3 full + 1 tail).
            assert_eq!(packets, 4);
        }
        let tables = read_packets(&sink).unwrap();
        assert_eq!(tables.len(), 4);
        let total: usize = tables.iter().map(|t| t.rows.len()).sum();
        assert_eq!(total, 200);
        // First row survives with full precision.
        let objs = crate::gen::SkyModel::small(3).generate().unwrap();
        let tag0 = crate::tag::TagObject::from_photo(&objs[0]);
        match tables[0].rows[0][1] {
            Cell::F64(ra) => assert!((ra - tag0.pos().ra_deg()).abs() < 1e-12),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(read_packets(&[0u8; 100]).is_err()); // truncated header
        let mut buf = BytesMut::new();
        write_primary_header(&mut buf);
        write_bintable(&mut buf, &sample_table(500), "X");
        // Chop a full block off the data section: parsing must error, not
        // fabricate rows.
        let cut = buf.len() - FITS_BLOCK;
        assert!(read_packets(&buf[..cut]).is_err());
    }

    #[test]
    fn empty_stream_writes_nothing() {
        let mut sink: Vec<u8> = Vec::new();
        let stream = BlockedFitsStream::new(&mut sink, tag_columns(), 10);
        let (_, packets) = stream.finish().unwrap();
        assert_eq!(packets, 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn header_cards_are_80_chars() {
        let c = card("NAXIS1", "1160", "bytes per row");
        assert_eq!(c.len(), CARD);
        let c = card_str("EXTNAME", "STREAM", "");
        assert_eq!(c.len(), CARD);
        assert!(std::str::from_utf8(&c).is_ok());
    }
}
