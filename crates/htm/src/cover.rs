//! Region covers: the recursive trixel classification of Figure 4.
//!
//! Given a [`Domain`] and a depth, [`Cover::compute`] walks the quad-tree
//! from the 8 octahedron faces, classifying every visited trixel as
//! **Inside** (fully accepted — "wholly accepted" in the paper), **Outside**
//! (rejected, subtree pruned) or **Partial** (bisected — only these are
//! recursed into, and at the bottom level they are the only trixels whose
//! objects need the exact geometric test).
//!
//! ## Soundness contract
//!
//! The classifier is *conservative*: it may report `Partial` for a trixel
//! that is really fully inside or fully outside (costing efficiency, never
//! correctness), but
//!
//! * `Inside` is only reported when every point of the trixel satisfies
//!   the region, and
//! * `Outside` only when no point does.
//!
//! Property tests in this module and the storage/query crates rely on this
//! contract: objects in `full` trixels are accepted without any geometry
//! re-check.

use crate::ranges::HtmRangeSet;
use crate::region::{Convex, Domain, Halfspace};
use crate::trixel::{Trixel, MAX_LEVEL};
use crate::HtmError;
use sdss_skycoords::UnitVec3;

/// Classification of one trixel against a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Trixel certainly fully inside the region.
    Inside,
    /// Trixel certainly disjoint from the region.
    Outside,
    /// Trixel (possibly) straddles the region boundary.
    Partial,
}

/// Counters describing the classification work — the data behind the
/// paper's Figure 4 ("the triangles in the hierarchy, intersecting with
/// the query, as they were selected").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// Trixels accepted whole, per level visited.
    pub full: usize,
    /// Trixels rejected whole (subtree pruned).
    pub rejected: usize,
    /// Trixels bisected at the deepest level (need exact filtering).
    pub partial_leaves: usize,
    /// Total classification tests performed.
    pub nodes_visited: usize,
}

/// The result of covering a region at some depth.
#[derive(Debug, Clone)]
pub struct Cover {
    level: u8,
    /// Ranges (at `level`) of trixels certainly fully inside.
    full: HtmRangeSet,
    /// Ranges (at `level`) of trixels that straddle the boundary.
    partial: HtmRangeSet,
    stats: CoverStats,
}

impl Cover {
    /// Classify the whole mesh down to `level` against `domain`.
    ///
    /// Interior trixels stop recursing as soon as they are proven fully
    /// inside at a shallow level (their whole deep range is emitted), so
    /// cost is proportional to the boundary length, not the area.
    pub fn compute(domain: &Domain, level: u8) -> Result<Cover, HtmError> {
        if level > MAX_LEVEL {
            return Err(HtmError::LevelTooDeep(level));
        }
        let mut full = Vec::new();
        let mut partial = Vec::new();
        let mut stats = CoverStats::default();
        for root in Trixel::roots() {
            classify_recursive(&root, domain, level, &mut full, &mut partial, &mut stats);
        }
        Ok(Cover {
            level,
            full: HtmRangeSet::from_unsorted(full),
            partial: HtmRangeSet::from_unsorted(partial),
            stats,
        })
    }

    /// The depth the ranges are expressed at.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Ranges of level-`level` trixel ids fully inside the region.
    pub fn full_ranges(&self) -> &HtmRangeSet {
        &self.full
    }

    /// Ranges of level-`level` trixel ids straddling the boundary.
    pub fn partial_ranges(&self) -> &HtmRangeSet {
        &self.partial
    }

    pub fn stats(&self) -> CoverStats {
        self.stats
    }

    /// Classify a point using only the cover (no region geometry):
    /// `Inside` / `Outside` are definitive, `Partial` means "must test the
    /// region exactly".
    pub fn classify_point(&self, p: UnitVec3) -> Classification {
        let id =
            crate::mesh::lookup_id(p, self.level).expect("cover level is valid by construction");
        if self.full.contains(id.raw()) {
            Classification::Inside
        } else if self.partial.contains(id.raw()) {
            Classification::Partial
        } else {
            Classification::Outside
        }
    }

    /// Union of full and partial ranges: every trixel that may hold
    /// matching objects — what the storage layer actually fetches.
    pub fn touched_ranges(&self) -> HtmRangeSet {
        self.full.union(&self.partial)
    }

    /// Fraction of the sphere covered by `full` trixels (steradian
    /// estimate assuming equal trixel areas — good to ~30% which is fine
    /// for cost prediction).
    pub fn full_area_estimate_sr(&self) -> f64 {
        let per_trixel = 4.0 * std::f64::consts::PI / (8u64 << (2 * self.level as u64)) as f64;
        self.full.count() as f64 * per_trixel
    }

    /// Same estimate for partial trixels.
    pub fn partial_area_estimate_sr(&self) -> f64 {
        let per_trixel = 4.0 * std::f64::consts::PI / (8u64 << (2 * self.level as u64)) as f64;
        self.partial.count() as f64 * per_trixel
    }
}

fn classify_recursive(
    t: &Trixel,
    domain: &Domain,
    level: u8,
    full: &mut Vec<(u64, u64)>,
    partial: &mut Vec<(u64, u64)>,
    stats: &mut CoverStats,
) {
    stats.nodes_visited += 1;
    match classify_trixel_domain(t, domain) {
        Classification::Inside => {
            stats.full += 1;
            full.push(t.id().deep_range(level));
        }
        Classification::Outside => {
            stats.rejected += 1;
        }
        Classification::Partial => {
            if t.level() == level {
                stats.partial_leaves += 1;
                partial.push(t.id().deep_range(level));
            } else {
                for child in t.children() {
                    classify_recursive(&child, domain, level, full, partial, stats);
                }
            }
        }
    }
}

/// Classify a trixel against a full domain (union of convexes).
pub fn classify_trixel_domain(t: &Trixel, domain: &Domain) -> Classification {
    let mut any_partial = false;
    for convex in domain.convexes() {
        match classify_trixel_convex(t, convex) {
            Classification::Inside => return Classification::Inside,
            Classification::Partial => any_partial = true,
            Classification::Outside => {}
        }
    }
    if any_partial {
        Classification::Partial
    } else {
        Classification::Outside
    }
}

/// Classify a trixel against a convex (intersection of half-spaces).
///
/// * If the trixel is fully outside *any* half-space, it is outside the
///   convex.
/// * If it is fully inside *all* half-spaces, it is inside the convex.
/// * Otherwise partial. (This can over-report `Partial` when the joint
///   intersection is empty but no single half-space proves it — the
///   conservative direction.)
pub fn classify_trixel_convex(t: &Trixel, convex: &Convex) -> Classification {
    let mut all_inside = true;
    for h in convex.halfspaces() {
        match classify_trixel_halfspace(t, h) {
            Classification::Outside => return Classification::Outside,
            Classification::Partial => all_inside = false,
            Classification::Inside => {}
        }
    }
    if all_inside {
        Classification::Inside
    } else {
        Classification::Partial
    }
}

/// Classify a trixel against a single half-space (spherical cap).
pub fn classify_trixel_halfspace(t: &Trixel, h: &Halfspace) -> Classification {
    let corners = t.corners();
    let inside = [
        h.contains(corners[0]),
        h.contains(corners[1]),
        h.contains(corners[2]),
    ];
    let n_inside = inside.iter().filter(|&&b| b).count();

    match n_inside {
        3 => {
            if h.is_convex_cap() {
                // Caps no larger than a hemisphere are geodesically convex:
                // all corners inside ⇒ every geodesic between them inside
                // ⇒ the whole triangle inside.
                Classification::Inside
            } else {
                // Large cap: the triangle is inside unless it wraps around
                // the complementary ("hole") cap. The hole is small
                // (convex); it pokes through the triangle iff its center is
                // inside the triangle or its boundary crosses an edge.
                let hole = h.complement();
                if t.contains(hole.normal) || any_edge_intersects_cap_boundary(t, &hole) {
                    Classification::Partial
                } else {
                    Classification::Inside
                }
            }
        }
        0 => {
            if !h.is_convex_cap() {
                // All corners outside a large cap means all corners are
                // inside the small complementary cap, which is convex ⇒
                // the whole triangle is inside the complement ⇒ disjoint
                // from h.
                Classification::Outside
            } else {
                // Small cap with no corner inside: it can still intersect
                // the triangle by poking through the interior or clipping
                // an edge.
                if t.contains(h.normal) || any_edge_intersects_cap_boundary(t, h) {
                    Classification::Partial
                } else {
                    Classification::Outside
                }
            }
        }
        _ => Classification::Partial,
    }
}

/// Does any edge (great-circle arc) of the trixel cross the cap boundary
/// circle `p · n = d`?
fn any_edge_intersects_cap_boundary(t: &Trixel, h: &Halfspace) -> bool {
    let [a, b, c] = t.corners();
    edge_intersects_cap_boundary(a, b, h)
        || edge_intersects_cap_boundary(b, c, h)
        || edge_intersects_cap_boundary(c, a, h)
}

/// Exact arc/circle intersection test.
///
/// A point on the minor arc u→v is `p(t) = ((1−t)u + tv)/‖·‖`, t ∈ [0,1].
/// Setting `p(t)·n = d` and squaring gives a quadratic in t (the squaring
/// step can introduce spurious roots with the wrong sign of `p·n − d`,
/// filtered at the end):
///
/// ```text
/// [(1−t)A + tB]² = d²·q(t)
/// q(t) = (1−t)² + t² + 2t(1−t)γ ,  γ = u·v ,  A = u·n ,  B = v·n
/// ```
fn edge_intersects_cap_boundary(u: UnitVec3, v: UnitVec3, h: &Halfspace) -> bool {
    let n = h.normal;
    let d = h.dist;
    let a_dot = u.dot(n);
    let b_dot = v.dot(n);
    let gamma = u.dot(v);

    // Quadratic coefficients of
    //   t²[(B−A)² − 2d²(1−γ)] + t[2A(B−A) + 2d²(1−γ)] + (A² − d²) = 0
    let diff = b_dot - a_dot;
    let k = 2.0 * d * d * (1.0 - gamma);
    let qa = diff * diff - k;
    let qb = 2.0 * a_dot * diff + k;
    let qc = a_dot * a_dot - d * d;

    let mut roots = [0.0f64; 2];
    let n_roots = solve_quadratic(qa, qb, qc, &mut roots);

    for &t in &roots[..n_roots] {
        if !(0.0..=1.0).contains(&t) {
            continue;
        }
        // Filter spurious roots introduced by squaring: at a genuine
        // boundary crossing the (unnormalized) dot product has the same
        // sign as d.
        let p_dot = (1.0 - t) * a_dot + t * b_dot;
        if p_dot * d >= 0.0 || d == 0.0 {
            return true;
        }
    }
    false
}

/// Solve `qa·t² + qb·t + qc = 0`; writes roots and returns their count.
fn solve_quadratic(qa: f64, qb: f64, qc: f64, roots: &mut [f64; 2]) -> usize {
    if qa.abs() < 1e-300 {
        if qb.abs() < 1e-300 {
            return 0;
        }
        roots[0] = -qc / qb;
        return 1;
    }
    let disc = qb * qb - 4.0 * qa * qc;
    if disc < 0.0 {
        return 0;
    }
    let sq = disc.sqrt();
    // Numerically stable: compute the larger-magnitude root first.
    let q = -0.5 * (qb + qb.signum() * sq);
    if q == 0.0 {
        roots[0] = 0.0;
        return 1;
    }
    roots[0] = q / qa;
    roots[1] = qc / q;
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use proptest::prelude::*;
    use sdss_skycoords::{Frame, SkyPos, Vec3};

    fn arb_unit() -> impl Strategy<Value = UnitVec3> {
        (-1.0f64..1.0, 0.0f64..std::f64::consts::TAU).prop_map(|(z, phi)| {
            let r = (1.0 - z * z).max(0.0).sqrt();
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
                .normalized()
                .unwrap()
        })
    }

    #[test]
    fn whole_sky_cover_is_all_full() {
        let d = Domain::from_convex(Convex::whole_sky());
        let cover = Cover::compute(&d, 3).unwrap();
        // 8 * 4^3 = 512 trixels, all full, none partial.
        assert_eq!(cover.full_ranges().count(), 512);
        assert_eq!(cover.partial_ranges().count(), 0);
        // Only the 8 roots were visited (each proven Inside immediately).
        assert_eq!(cover.stats().nodes_visited, 8);
    }

    #[test]
    fn tiny_cap_cover_is_small() {
        let d = Region::circle(185.0, 15.0, 0.1).unwrap();
        let cover = Cover::compute(&d, 8).unwrap();
        // A 0.1-degree cap at level 8 (trixel size ~0.3 deg) touches at
        // most a handful of trixels.
        let touched = cover.full_ranges().count() + cover.partial_ranges().count();
        assert!(touched > 0 && touched < 32, "touched = {touched}");
        // The cap center must be in a touched trixel.
        let p = SkyPos::new(185.0, 15.0).unwrap().unit_vec();
        assert_ne!(cover.classify_point(p), Classification::Outside);
    }

    #[test]
    fn hemisphere_split() {
        // Northern hemisphere: exactly the 4 N faces are full at level 0...
        // but corners lie on the boundary; test at level 4 instead: half
        // the sphere is full+partial, half rejected, roughly.
        let d = Region::band(Frame::Equatorial, 0.0, 90.0).unwrap();
        let cover = Cover::compute(&d, 4).unwrap();
        let full = cover.full_ranges().count() as f64;
        let total = (8u64 << 8) as f64; // 8 * 4^4 = 2048
        assert!(full / total > 0.4, "full fraction {}", full / total);
        assert!(full / total <= 0.5 + 1e-9);
    }

    #[test]
    fn figure4_band_pair_query() {
        // The paper's Figure 4: a latitude range in one system plus a
        // latitude constraint in another.
        let dec_band = Region::band(Frame::Equatorial, 10.0, 25.0).unwrap();
        let gal_band = Region::band(Frame::Galactic, 40.0, 90.0).unwrap();
        let query = dec_band.intersect(&gal_band);
        let cover = Cover::compute(&query, 6).unwrap();
        assert!(cover.full_ranges().count() > 0);
        assert!(cover.partial_ranges().count() > 0);
        // Spot-check classification against direct evaluation on a grid.
        for ra in (0..360).step_by(17) {
            for dec in (-88..=88).step_by(11) {
                let p = SkyPos::new(ra as f64, dec as f64).unwrap().unit_vec();
                let want = query.contains(p);
                match cover.classify_point(p) {
                    Classification::Inside => assert!(want, "({ra},{dec}) claimed inside"),
                    Classification::Outside => assert!(!want, "({ra},{dec}) claimed outside"),
                    Classification::Partial => {} // exact test needed, fine
                }
            }
        }
    }

    #[test]
    fn large_cap_inside_logic() {
        // Cap of 170 degrees around Z: almost the whole sphere. Trixels
        // near the south pole are outside; most others fully inside.
        let d = Region::circle(0.0, 90.0, 170.0).unwrap();
        let cover = Cover::compute(&d, 5).unwrap();
        let p_north = SkyPos::new(10.0, 80.0).unwrap().unit_vec();
        let p_south = SkyPos::new(10.0, -89.0).unwrap().unit_vec();
        assert_eq!(cover.classify_point(p_north), Classification::Inside);
        assert_eq!(cover.classify_point(p_south), Classification::Outside);
    }

    #[test]
    fn cap_smaller_than_trixel_is_found() {
        // A 0.01-deg cap entirely interior to one level-2 trixel: no corner
        // of any trixel is inside it, yet it must not be classified away.
        let center = Trixel::roots()[3].child(2).child(0).center();
        let d = Region::circle_vec(center, 0.01).unwrap();
        let cover = Cover::compute(&d, 2).unwrap();
        assert_ne!(cover.classify_point(center), Classification::Outside);
        let touched = cover.full_ranges().count() + cover.partial_ranges().count();
        assert!(touched >= 1);
    }

    #[test]
    fn stats_are_consistent() {
        let d = Region::circle(45.0, 45.0, 20.0).unwrap();
        let cover = Cover::compute(&d, 6).unwrap();
        let s = cover.stats();
        assert!(s.nodes_visited >= s.full + s.rejected + s.partial_leaves);
        assert_eq!(cover.partial_ranges().count() as usize, s.partial_leaves);
    }

    #[test]
    fn quadratic_solver() {
        let mut r = [0.0; 2];
        // t^2 - 3t + 2 = 0 → 1, 2
        assert_eq!(solve_quadratic(1.0, -3.0, 2.0, &mut r), 2);
        let mut roots = [r[0], r[1]];
        roots.sort_by(f64::total_cmp);
        assert!((roots[0] - 1.0).abs() < 1e-12 && (roots[1] - 2.0).abs() < 1e-12);
        // No real roots.
        assert_eq!(solve_quadratic(1.0, 0.0, 1.0, &mut r), 0);
        // Linear.
        assert_eq!(solve_quadratic(0.0, 2.0, -4.0, &mut r), 1);
        assert!((r[0] - 2.0).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The soundness contract: points in full trixels always satisfy
        /// the region; points in rejected trixels never do.
        #[test]
        fn prop_cover_soundness_circle(
            center in arb_unit(), radius in 0.5f64..60.0, p in arb_unit(), level in 2u8..8
        ) {
            let d = Region::circle_vec(center, radius).unwrap();
            let cover = Cover::compute(&d, level).unwrap();
            let actually_inside = center.separation_deg(p) <= radius;
            match cover.classify_point(p) {
                Classification::Inside => prop_assert!(actually_inside),
                Classification::Outside => prop_assert!(!actually_inside),
                Classification::Partial => {}
            }
        }

        #[test]
        fn prop_cover_soundness_band(
            lo in -80.0f64..70.0, width in 1.0f64..40.0, p in arb_unit(), level in 2u8..7
        ) {
            let hi = (lo + width).min(90.0);
            let d = Region::band(Frame::Galactic, lo, hi).unwrap();
            let cover = Cover::compute(&d, level).unwrap();
            let inside = d.contains(p);
            match cover.classify_point(p) {
                Classification::Inside => prop_assert!(inside),
                Classification::Outside => prop_assert!(!inside),
                Classification::Partial => {}
            }
        }

        /// Completeness at the mesh level: the union of full+partial
        /// trixels contains every matching point (follows from soundness of
        /// Outside, tested from the other side here).
        #[test]
        fn prop_matching_points_are_touched(
            center in arb_unit(), radius in 0.5f64..30.0, level in 2u8..8,
            pa in 0.0f64..360.0, frac in 0.0f64..1.0
        ) {
            // Construct a point guaranteed inside the cap.
            let pos = SkyPos::from_unit_vec(center).offset_by(pa, radius * frac * 0.999);
            let p = pos.unit_vec();
            let d = Region::circle_vec(center, radius).unwrap();
            let cover = Cover::compute(&d, level).unwrap();
            prop_assert_ne!(cover.classify_point(p), Classification::Outside);
        }

        /// Deeper covers never lose area: everything full at level L is
        /// full-or-partial at level L+1, and full area grows.
        #[test]
        fn prop_deeper_cover_refines(center in arb_unit(), radius in 1.0f64..45.0) {
            let d = Region::circle_vec(center, radius).unwrap();
            let shallow = Cover::compute(&d, 4).unwrap();
            let deep = Cover::compute(&d, 6).unwrap();
            prop_assert!(deep.full_area_estimate_sr() >= shallow.full_area_estimate_sr() - 1e-12);
            let exact = d.convexes()[0].halfspaces()[0].area_sr();
            // The estimates assume equal trixel areas, but real areas vary
            // ~2x around the mean, so only loose bounds hold:
            // full (true) <= exact <= full+partial (true).
            prop_assert!(deep.full_area_estimate_sr() <= exact * 1.6 + 1e-9);
            prop_assert!(
                deep.full_area_estimate_sr() + deep.partial_area_estimate_sr() >= exact * 0.4 - 1e-9
            );
        }
    }
}
