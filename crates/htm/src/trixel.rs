//! Trixels: the spherical triangles of the mesh, and their 64-bit ids.
//!
//! ## Id encoding
//!
//! The classic HTM encoding: the 8 octahedron faces get ids 8–15
//! (binary `1000`–`1111`: a leading 1 marker bit, one hemisphere bit,
//! two face-index bits); each subdivision appends two bits, so a child is
//! `parent * 4 + k` with `k ∈ 0..4`. A level-`L` id therefore occupies
//! exactly `4 + 2L` bits, the level is recoverable from the position of
//! the highest set bit, and ids of one level form a contiguous range
//! `[8·4^L, 16·4^L)`. Sorting by id at a fixed level is a depth-first
//! traversal order of the quad-tree — the clustering order the archive
//! stores objects in.

use crate::HtmError;
use sdss_skycoords::{SkyPos, UnitVec3, Vec3};

/// Deepest supported subdivision level.
///
/// Level 31 would need 4+62 = 66 bits; 29 keeps ids in 62 bits with room
/// to spare and resolves ~10 milli-arcsec — far below any survey's
/// astrometric accuracy.
pub const MAX_LEVEL: u8 = 29;

/// A 64-bit HTM id. Always valid by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HtmId(u64);

/// The six octahedron vertices (paper Figure 3: "The tree starts out from
/// the triangles defined by an octahedron").
const V0: UnitVec3 = UnitVec3::new_unchecked(0.0, 0.0, 1.0);
const V1: UnitVec3 = UnitVec3::new_unchecked(1.0, 0.0, 0.0);
const V2: UnitVec3 = UnitVec3::new_unchecked(0.0, 1.0, 0.0);
const V3: UnitVec3 = UnitVec3::new_unchecked(-1.0, 0.0, 0.0);
const V4: UnitVec3 = UnitVec3::new_unchecked(0.0, -1.0, 0.0);
const V5: UnitVec3 = UnitVec3::new_unchecked(0.0, 0.0, -1.0);

/// The 8 root triangles in id order (ids 8..=15), each a counter-clockwise
/// corner triple as seen from outside the sphere. This is the vertex table
/// of the original JHU HTM implementation.
pub const BASE_TRIXELS: [(&str, [UnitVec3; 3]); 8] = [
    ("S0", [V1, V5, V2]),
    ("S1", [V2, V5, V3]),
    ("S2", [V3, V5, V4]),
    ("S3", [V4, V5, V1]),
    ("N0", [V1, V0, V4]),
    ("N1", [V4, V0, V3]),
    ("N2", [V3, V0, V2]),
    ("N3", [V2, V0, V1]),
];

impl HtmId {
    /// First root id (`S0`).
    pub const S0: HtmId = HtmId(8);

    /// Construct from a raw u64, validating the bit pattern.
    pub fn from_raw(raw: u64) -> Result<HtmId, HtmError> {
        if raw < 8 {
            return Err(HtmError::InvalidId(raw));
        }
        let msb = 63 - raw.leading_zeros() as u64; // position of highest set bit
                                                   // Valid ids have the highest bit at an odd position ≥ 3:
                                                   // 3, 5, 7, ... (level = (msb - 3) / 2).
        if msb < 3 || !(msb - 3).is_multiple_of(2) {
            return Err(HtmError::InvalidId(raw));
        }
        let level = (msb - 3) / 2;
        if level > MAX_LEVEL as u64 {
            return Err(HtmError::LevelTooDeep(level as u8));
        }
        Ok(HtmId(raw))
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Subdivision depth: 0 for the octahedron faces.
    #[inline]
    pub fn level(self) -> u8 {
        let msb = 63 - self.0.leading_zeros() as u8;
        (msb - 3) / 2
    }

    /// Root trixel id (8..=15) for one of the 8 octahedron faces.
    pub fn root(index: u8) -> HtmId {
        debug_assert!(index < 8);
        HtmId(8 + index as u64)
    }

    /// The `k`-th child (k in 0..4), one level deeper.
    #[inline]
    pub fn child(self, k: u8) -> HtmId {
        debug_assert!(k < 4);
        debug_assert!(self.level() < MAX_LEVEL);
        HtmId(self.0 * 4 + k as u64)
    }

    /// Parent trixel, or `None` for root trixels.
    #[inline]
    pub fn parent(self) -> Option<HtmId> {
        if self.0 < 32 {
            None
        } else {
            Some(HtmId(self.0 >> 2))
        }
    }

    /// The ancestor at `level`, which must not exceed this id's level.
    pub fn ancestor_at(self, level: u8) -> HtmId {
        let my = self.level();
        debug_assert!(level <= my);
        HtmId(self.0 >> (2 * (my - level) as u64))
    }

    /// The half-open range `[lo, hi)` of level-`deep_level` ids covered by
    /// this trixel. `deep_level` must be ≥ this id's level.
    ///
    /// This is how covers at mixed depths are normalized into comparable
    /// intervals: a shallow "fully inside" trixel stands for the whole
    /// contiguous block of its deepest descendants.
    pub fn deep_range(self, deep_level: u8) -> (u64, u64) {
        let shift = 2 * (deep_level - self.level()) as u64;
        (self.0 << shift, (self.0 + 1) << shift)
    }

    /// Iterate over the digits (0..4) from the root to this trixel.
    pub fn path_digits(self) -> impl Iterator<Item = u8> {
        let level = self.level();
        let raw = self.0;
        (0..level).rev().map(move |i| ((raw >> (2 * i)) & 3) as u8)
    }

    /// Index of the root face (0..8) this trixel descends from.
    #[inline]
    pub fn root_index(self) -> u8 {
        ((self.0 >> (2 * self.level() as u64)) - 8) as u8
    }
}

impl std::fmt::Display for HtmId {
    /// Displays as the textual `N012…`/`S31…` name (see [`crate::name`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::name::id_to_name(*self))
    }
}

/// A trixel: an HTM id together with its three corner vectors.
///
/// Corners are always counter-clockwise seen from outside the sphere, so
/// `cross(c[i], c[i+1]) · p >= 0` for all i exactly when `p` is inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trixel {
    id: HtmId,
    corners: [UnitVec3; 3],
}

impl Trixel {
    /// The 8 octahedron root trixels.
    pub fn roots() -> [Trixel; 8] {
        let mut out = [Trixel {
            id: HtmId::S0,
            corners: BASE_TRIXELS[0].1,
        }; 8];
        for (i, item) in out.iter_mut().enumerate() {
            *item = Trixel {
                id: HtmId::root(i as u8),
                corners: BASE_TRIXELS[i].1,
            };
        }
        out
    }

    /// Rebuild a trixel (id + corners) from its id by walking from the root.
    pub fn from_id(id: HtmId) -> Trixel {
        let mut t = Trixel::roots()[id.root_index() as usize];
        for digit in id.path_digits() {
            t = t.child(digit);
        }
        t
    }

    #[inline]
    pub fn id(self) -> HtmId {
        self.id
    }

    #[inline]
    pub fn level(self) -> u8 {
        self.id.level()
    }

    #[inline]
    pub fn corners(self) -> [UnitVec3; 3] {
        self.corners
    }

    /// The `k`-th child trixel. Subdivision midpoints follow the classic
    /// HTM convention:
    ///
    /// ```text
    ///        c0                w_i is the midpoint of the edge
    ///        /\                opposite corner c_i:
    ///      w2--w1                w0 = mid(c1, c2)
    ///      /\  /\                w1 = mid(c0, c2)
    ///    c1--w0--c2              w2 = mid(c0, c1)
    ///
    ///    child 0 = (c0, w2, w1)     child 1 = (c1, w0, w2)
    ///    child 2 = (c2, w1, w0)     child 3 = (w0, w1, w2)
    /// ```
    pub fn child(self, k: u8) -> Trixel {
        let [c0, c1, c2] = self.corners;
        let w0 = c1.midpoint(c2).expect("trixel corners are never antipodal");
        let w1 = c0.midpoint(c2).expect("trixel corners are never antipodal");
        let w2 = c0.midpoint(c1).expect("trixel corners are never antipodal");
        let corners = match k {
            0 => [c0, w2, w1],
            1 => [c1, w0, w2],
            2 => [c2, w1, w0],
            3 => [w0, w1, w2],
            _ => unreachable!("child index is 0..4"),
        };
        Trixel {
            id: self.id.child(k),
            corners,
        }
    }

    /// All four children.
    pub fn children(self) -> [Trixel; 4] {
        [self.child(0), self.child(1), self.child(2), self.child(3)]
    }

    /// Strict point-in-trixel test (with a tolerance for points exactly on
    /// an edge, which are accepted — the mesh's lookup walk breaks the tie
    /// deterministically by child order).
    #[inline]
    pub fn contains(&self, p: UnitVec3) -> bool {
        const EPS: f64 = -1e-15;
        let [a, b, c] = self.corners;
        a.cross(b).dot(p.as_vec3()) >= EPS
            && b.cross(c).dot(p.as_vec3()) >= EPS
            && c.cross(a).dot(p.as_vec3()) >= EPS
    }

    /// Normalized centroid of the corners.
    pub fn center(&self) -> UnitVec3 {
        let [a, b, c] = self.corners;
        (a.as_vec3() + b.as_vec3() + c.as_vec3())
            .normalized()
            .expect("corner sum of a proper triangle is nonzero")
    }

    /// Bounding cap: `(center, cos_radius)` — the smallest co-centered cap
    /// containing all three corners. Used for fast rejection in covers.
    pub fn bounding_cap(&self) -> (UnitVec3, f64) {
        let c = self.center();
        let cos_r = self
            .corners
            .iter()
            .map(|v| c.dot(*v))
            .fold(f64::INFINITY, f64::min);
        (c, cos_r)
    }

    /// Spherical area in steradians via Girard's theorem
    /// (sum of interior angles minus π).
    pub fn area_sr(&self) -> f64 {
        let [a, b, c] = self.corners;
        let ang_a = corner_angle(a, b, c);
        let ang_b = corner_angle(b, c, a);
        let ang_c = corner_angle(c, a, b);
        ang_a + ang_b + ang_c - std::f64::consts::PI
    }

    /// Approximate angular "size": the side of a square with equal area,
    /// in degrees.
    pub fn angular_size_deg(&self) -> f64 {
        self.area_sr().sqrt().to_degrees()
    }

    /// Center position in angular coordinates (for display).
    pub fn center_pos(&self) -> SkyPos {
        SkyPos::from_unit_vec(self.center())
    }
}

/// Interior spherical angle at corner `at` of triangle (at, p, q).
fn corner_angle(at: UnitVec3, p: UnitVec3, q: UnitVec3) -> f64 {
    // Tangent vectors at `at` toward p and q.
    let tp = tangent_toward(at, p);
    let tq = tangent_toward(at, q);
    tp.cross(tq).norm().atan2(tp.dot(tq))
}

fn tangent_toward(at: UnitVec3, toward: UnitVec3) -> Vec3 {
    let v = toward.as_vec3() - at.as_vec3() * at.dot(toward);
    // Corners of a proper trixel are never identical/antipodal.
    let n = v.norm();
    v * (1.0 / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn id_encoding_roundtrip() {
        for i in 0..8 {
            let id = HtmId::root(i);
            assert_eq!(id.level(), 0);
            assert_eq!(id.root_index(), i);
            assert_eq!(id.parent(), None);
        }
        let id = HtmId::root(3).child(2).child(1).child(0);
        assert_eq!(id.level(), 3);
        assert_eq!(id.raw(), ((8 + 3) * 4 + 2) * 4 * 4 + 4);
        assert_eq!(
            id.parent().unwrap().parent().unwrap().parent().unwrap(),
            HtmId::root(3)
        );
        assert_eq!(id.path_digits().collect::<Vec<_>>(), vec![2, 1, 0]);
    }

    #[test]
    fn from_raw_validation() {
        assert!(HtmId::from_raw(0).is_err());
        assert!(HtmId::from_raw(7).is_err());
        for raw in 8..16 {
            assert!(HtmId::from_raw(raw).is_ok());
        }
        // 16..31 have the msb at an even position → invalid.
        for raw in 16..32 {
            assert!(HtmId::from_raw(raw).is_err(), "raw={raw}");
        }
        for raw in 32..64 {
            assert!(HtmId::from_raw(raw).is_ok(), "raw={raw}");
        }
    }

    #[test]
    fn level_id_ranges_are_contiguous() {
        // Level L ids form [8*4^L, 16*4^L).
        for level in 0..6u32 {
            let lo = 8u64 << (2 * level);
            let hi = 16u64 << (2 * level);
            assert_eq!(HtmId::from_raw(lo).unwrap().level(), level as u8);
            assert_eq!(HtmId::from_raw(hi - 1).unwrap().level(), level as u8);
            assert_ne!(
                HtmId::from_raw(hi).map(|i| i.level()),
                Ok(level as u8),
                "range must end at {hi}"
            );
        }
    }

    #[test]
    fn deep_range_nests() {
        let id = HtmId::root(5);
        let (lo, hi) = id.deep_range(2);
        assert_eq!(hi - lo, 16); // 4^2 descendants
        for k in 0..4 {
            let (clo, chi) = id.child(k).deep_range(2);
            assert!(clo >= lo && chi <= hi);
        }
        // A trixel's own range at its own level is [id, id+1).
        assert_eq!(id.deep_range(0), (id.raw(), id.raw() + 1));
    }

    #[test]
    fn ancestor_at_walks_up() {
        let id = HtmId::root(2).child(3).child(1).child(2);
        assert_eq!(id.ancestor_at(0), HtmId::root(2));
        assert_eq!(id.ancestor_at(1), HtmId::root(2).child(3));
        assert_eq!(id.ancestor_at(3), id);
    }

    #[test]
    fn roots_partition_and_orient() {
        // All roots contain their center and are CCW (positive area).
        for t in Trixel::roots() {
            assert!(t.contains(t.center()), "{:?}", t.id());
            assert!(t.area_sr() > 0.0);
        }
        // The 8 root areas tile the sphere: total 4π.
        let total: f64 = Trixel::roots().iter().map(|t| t.area_sr()).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9, "{total}");
    }

    #[test]
    fn children_tile_parent_area() {
        let root = Trixel::roots()[0];
        let child_sum: f64 = root.children().iter().map(|t| t.area_sr()).sum();
        assert!(
            (child_sum - root.area_sr()).abs() < 1e-9,
            "children sum {child_sum} vs parent {}",
            root.area_sr()
        );
    }

    #[test]
    fn from_id_matches_recursive_subdivision() {
        let mut t = Trixel::roots()[6];
        for k in [0u8, 3, 1, 2, 2] {
            t = t.child(k);
        }
        let rebuilt = Trixel::from_id(t.id());
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn bounding_cap_contains_corners() {
        let t = Trixel::roots()[2].child(1).child(3);
        let (c, cos_r) = t.bounding_cap();
        for corner in t.corners() {
            assert!(c.dot(corner) >= cos_r - 1e-15);
        }
        // And contains the center itself trivially.
        assert!(c.dot(t.center()) >= cos_r);
    }

    proptest! {
        #[test]
        fn prop_child_centers_inside_parent(root in 0u8..8, path in proptest::collection::vec(0u8..4, 0..8)) {
            let mut t = Trixel::roots()[root as usize];
            for k in path {
                t = t.child(k);
                prop_assert!(t.contains(t.center()));
            }
            // The deepest center must be inside every ancestor too.
            let p = t.center();
            let mut anc = t;
            while let Some(pid) = anc.id().parent() {
                anc = Trixel::from_id(pid);
                prop_assert!(anc.contains(p));
            }
        }

        #[test]
        fn prop_exactly_one_child_contains_interior_point(root in 0u8..8, path in proptest::collection::vec(0u8..4, 0..6)) {
            let mut t = Trixel::roots()[root as usize];
            for k in path {
                t = t.child(k);
            }
            let p = t.center();
            // p is strictly interior to t (it's the centroid), so exactly
            // one child contains it strictly... boundary grazing can make
            // it 1 or 2 with tolerance; at least one always.
            let n = t.children().iter().filter(|c| c.contains(p)).count();
            prop_assert!(n >= 1, "no child claims the parent centroid");
        }
    }
}
