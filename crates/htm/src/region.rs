//! Sky regions as Boolean combinations of half-space constraints.
//!
//! Paper, §Indexing the Sky: "Each query can be represented as a set of
//! half-space constraints, connected by Boolean operators, all in
//! three-dimensional space."
//!
//! A [`Halfspace`] is a plane cutting the unit sphere: the points `p` with
//! `p · n ≥ d`. Geometrically it is a spherical cap of angular radius
//! `acos(d)` around `n`:
//!
//! * a **cone search** of radius θ around direction `c` is the single
//!   half-space `(c, cos θ)`;
//! * a **declination band** `b0 ≤ lat ≤ b1` *in any frame* is the pair
//!   `(pole, sin b0)` and `(−pole, −sin b1)` — this is why the archive
//!   stores Cartesian coordinates (paper Figure 4 shows exactly this
//!   query: two parallel planes plus a constraint in a second frame);
//! * a **great-circle polygon** edge is a half-space with `d = 0`.
//!
//! A [`Convex`] intersects half-spaces; a [`Domain`] unions convexes.
//! Together they close the shapes under AND/OR, which is all the paper's
//! query language needs.

use crate::HtmError;
use sdss_skycoords::{Frame, SkyPos, UnitVec3};

/// The points `p` on the unit sphere with `p · normal >= dist`.
///
/// `dist` in `[-1, 1]`: `1` is the single point `normal`, `0` a hemisphere,
/// `-1` the full sphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halfspace {
    pub normal: UnitVec3,
    pub dist: f64,
}

impl Halfspace {
    /// Construct, validating `dist ∈ [-1, 1]`.
    pub fn new(normal: UnitVec3, dist: f64) -> Result<Halfspace, HtmError> {
        if !(-1.0..=1.0).contains(&dist) || !dist.is_finite() {
            return Err(HtmError::InvalidRegion(format!(
                "halfspace distance {dist} outside [-1, 1]"
            )));
        }
        Ok(Halfspace { normal, dist })
    }

    /// The cap of angular radius `radius_deg` around `center`.
    pub fn cap(center: UnitVec3, radius_deg: f64) -> Result<Halfspace, HtmError> {
        if !(0.0..=180.0).contains(&radius_deg) || !radius_deg.is_finite() {
            return Err(HtmError::InvalidRegion(format!(
                "cap radius {radius_deg} outside [0, 180] degrees"
            )));
        }
        Ok(Halfspace {
            normal: center,
            dist: radius_deg.to_radians().cos(),
        })
    }

    /// Membership test — one dot product and one compare, the "linear
    /// combinations of the three Cartesian coordinates" of the paper.
    #[inline]
    pub fn contains(&self, p: UnitVec3) -> bool {
        self.normal.dot(p) >= self.dist
    }

    /// The complementary cap (`p · n < d`, closed on its own boundary).
    #[inline]
    pub fn complement(&self) -> Halfspace {
        Halfspace {
            normal: self.normal.neg(),
            dist: -self.dist,
        }
    }

    /// Angular radius of the cap in degrees.
    #[inline]
    pub fn radius_deg(&self) -> f64 {
        self.dist.clamp(-1.0, 1.0).acos().to_degrees()
    }

    /// Solid angle of the cap in steradians: `2π(1 − d)`.
    #[inline]
    pub fn area_sr(&self) -> f64 {
        2.0 * std::f64::consts::PI * (1.0 - self.dist)
    }

    /// Whether the cap is geodesically convex (no bigger than a hemisphere).
    /// Convexity is what lets the cover prove "corners inside ⇒ triangle
    /// inside".
    #[inline]
    pub fn is_convex_cap(&self) -> bool {
        self.dist >= 0.0
    }
}

/// Intersection of half-spaces ("convex" in HTM terminology even when some
/// caps are larger than a hemisphere).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Convex {
    halfspaces: Vec<Halfspace>,
}

impl Convex {
    /// The whole sphere (no constraints).
    pub fn whole_sky() -> Convex {
        Convex {
            halfspaces: Vec::new(),
        }
    }

    pub fn new(halfspaces: Vec<Halfspace>) -> Convex {
        Convex { halfspaces }
    }

    pub fn push(&mut self, h: Halfspace) {
        self.halfspaces.push(h);
    }

    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    #[inline]
    pub fn contains(&self, p: UnitVec3) -> bool {
        self.halfspaces.iter().all(|h| h.contains(p))
    }

    /// Add another convex's constraints (set intersection).
    pub fn intersect_with(&mut self, other: &Convex) {
        self.halfspaces.extend_from_slice(&other.halfspaces);
    }

    /// A crude but sound upper bound on the solid angle (steradians):
    /// the tightest single cap. Used by the storage cost model to predict
    /// output volume (paper: "A prediction of the output data volume and
    /// search time can be computed from the intersection volume").
    pub fn area_upper_bound_sr(&self) -> f64 {
        self.halfspaces
            .iter()
            .map(Halfspace::area_sr)
            .fold(4.0 * std::f64::consts::PI, f64::min)
    }
}

/// Union of convexes — the general region shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Domain {
    convexes: Vec<Convex>,
}

impl Domain {
    pub fn new(convexes: Vec<Convex>) -> Domain {
        Domain { convexes }
    }

    pub fn from_convex(c: Convex) -> Domain {
        Domain { convexes: vec![c] }
    }

    pub fn convexes(&self) -> &[Convex] {
        &self.convexes
    }

    pub fn push(&mut self, c: Convex) {
        self.convexes.push(c);
    }

    /// Union with another domain.
    pub fn union_with(&mut self, other: &Domain) {
        self.convexes.extend_from_slice(&other.convexes);
    }

    /// Intersection distributes over the union of convexes
    /// (A ∪ B) ∩ (C ∪ D) = AC ∪ AD ∪ BC ∪ BD.
    pub fn intersect(&self, other: &Domain) -> Domain {
        let mut out = Vec::with_capacity(self.convexes.len() * other.convexes.len());
        for a in &self.convexes {
            for b in &other.convexes {
                let mut c = a.clone();
                c.intersect_with(b);
                out.push(c);
            }
        }
        Domain { convexes: out }
    }

    #[inline]
    pub fn contains(&self, p: UnitVec3) -> bool {
        self.convexes.iter().any(|c| c.contains(p))
    }

    pub fn is_empty_definition(&self) -> bool {
        self.convexes.is_empty()
    }

    pub fn area_upper_bound_sr(&self) -> f64 {
        self.convexes
            .iter()
            .map(Convex::area_upper_bound_sr)
            .sum::<f64>()
            .min(4.0 * std::f64::consts::PI)
    }

    /// A 128-bit structural fingerprint over the exact bit patterns of
    /// every halfspace, used as the cover-cache key: two domains built
    /// from the same constraints in the same order fingerprint equally.
    pub fn fingerprint(&self) -> u128 {
        fn fnv(seed: u64, domain: &Domain) -> u64 {
            let mut h = seed;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            for c in &domain.convexes {
                mix(0xC0DE_C0DE);
                for hs in c.halfspaces() {
                    mix(hs.normal.x().to_bits());
                    mix(hs.normal.y().to_bits());
                    mix(hs.normal.z().to_bits());
                    mix(hs.dist.to_bits());
                }
            }
            h
        }
        let lo = fnv(0xcbf2_9ce4_8422_2325, self);
        let hi = fnv(0x84222325_cbf29ce4, self);
        ((hi as u128) << 64) | lo as u128
    }
}

/// Convenience constructors for the shapes the archive's query language
/// exposes. All angles in degrees; all positions equatorial J2000.
pub struct Region;

impl Region {
    /// Cone search: all points within `radius_deg` of `(ra, dec)`.
    pub fn circle(ra_deg: f64, dec_deg: f64, radius_deg: f64) -> Result<Domain, HtmError> {
        let center = SkyPos::new(ra_deg, dec_deg)
            .map_err(|e| HtmError::InvalidRegion(e.to_string()))?
            .unit_vec();
        Ok(Domain::from_convex(Convex::new(vec![Halfspace::cap(
            center, radius_deg,
        )?])))
    }

    /// Cone search around a unit vector.
    pub fn circle_vec(center: UnitVec3, radius_deg: f64) -> Result<Domain, HtmError> {
        Ok(Domain::from_convex(Convex::new(vec![Halfspace::cap(
            center, radius_deg,
        )?])))
    }

    /// Latitude band `lat_lo ≤ lat ≤ lat_hi` in an arbitrary frame — the
    /// Figure 4 query ("a simple range query of latitude in one spherical
    /// coordinate system ... and an additional latitude constraint in
    /// another system" is two of these intersected).
    pub fn band(frame: Frame, lat_lo_deg: f64, lat_hi_deg: f64) -> Result<Domain, HtmError> {
        if lat_lo_deg > lat_hi_deg {
            return Err(HtmError::InvalidRegion(format!(
                "band with lat_lo {lat_lo_deg} > lat_hi {lat_hi_deg}"
            )));
        }
        if !(-90.0..=90.0).contains(&lat_lo_deg) || !(-90.0..=90.0).contains(&lat_hi_deg) {
            return Err(HtmError::InvalidRegion(
                "band latitude outside [-90, 90]".to_string(),
            ));
        }
        let pole = frame.pole();
        // lat >= lo  ⇔  p·pole >= sin(lo)
        let lower = Halfspace::new(pole, lat_lo_deg.to_radians().sin())?;
        // lat <= hi  ⇔  p·(−pole) >= −sin(hi)
        let upper = Halfspace::new(pole.neg(), -lat_hi_deg.to_radians().sin())?;
        Ok(Domain::from_convex(Convex::new(vec![lower, upper])))
    }

    /// Spherical rectangle: an RA interval × a Dec interval (equatorial).
    ///
    /// The RA bounds are great-circle half-spaces through the poles; the
    /// Dec bounds are the band construction above. Handles RA wrap-around
    /// (`ra_lo > ra_hi` means the interval crosses RA 0).
    pub fn rect(
        ra_lo_deg: f64,
        ra_hi_deg: f64,
        dec_lo_deg: f64,
        dec_hi_deg: f64,
    ) -> Result<Domain, HtmError> {
        let span = if ra_hi_deg >= ra_lo_deg {
            ra_hi_deg - ra_lo_deg
        } else {
            ra_hi_deg - ra_lo_deg + 360.0
        };
        if span >= 180.0 {
            // Split wide rectangles into two convex lunes.
            let mid = ra_lo_deg + span / 2.0;
            let mut d = Region::rect(ra_lo_deg, mid, dec_lo_deg, dec_hi_deg)?;
            let d2 = Region::rect(mid, ra_hi_deg, dec_lo_deg, dec_hi_deg)?;
            d.union_with(&d2);
            return Ok(d);
        }
        let band = Region::band(Frame::Equatorial, dec_lo_deg, dec_hi_deg)?;
        // Half-space "east of the lo meridian": normal is the direction
        // 90 deg east of ra_lo on the equator.
        let east_of_lo = Halfspace::new(
            SkyPos::new(ra_lo_deg + 90.0, 0.0)
                .map_err(|e| HtmError::InvalidRegion(e.to_string()))?
                .unit_vec(),
            0.0,
        )?;
        let west_of_hi = Halfspace::new(
            SkyPos::new(ra_hi_deg - 90.0, 0.0)
                .map_err(|e| HtmError::InvalidRegion(e.to_string()))?
                .unit_vec(),
            0.0,
        )?;
        let mut convex = Convex::new(vec![east_of_lo, west_of_hi]);
        convex.intersect_with(&band.convexes()[0]);
        Ok(Domain::from_convex(convex))
    }

    /// Convex spherical polygon from counter-clockwise vertices (as seen
    /// from outside the sphere). Each edge becomes a great-circle
    /// half-space.
    pub fn polygon(vertices: &[SkyPos]) -> Result<Domain, HtmError> {
        if vertices.len() < 3 {
            return Err(HtmError::InvalidRegion(
                "polygon needs at least 3 vertices".to_string(),
            ));
        }
        let vecs: Vec<UnitVec3> = vertices.iter().map(|p| p.unit_vec()).collect();
        let mut halfspaces = Vec::with_capacity(vecs.len());
        for i in 0..vecs.len() {
            let a = vecs[i];
            let b = vecs[(i + 1) % vecs.len()];
            let normal = a
                .cross(b)
                .normalized()
                .map_err(|_| HtmError::InvalidRegion("degenerate polygon edge".to_string()))?;
            halfspaces.push(Halfspace::new(normal, 0.0)?);
        }
        let convex = Convex::new(halfspaces);
        // Sanity: the centroid must satisfy all constraints, otherwise the
        // vertex order was clockwise (or the polygon non-convex).
        let centroid = vecs
            .iter()
            .fold(sdss_skycoords::Vec3::ZERO, |acc, v| acc + v.as_vec3())
            .normalized()
            .map_err(|_| HtmError::InvalidRegion("degenerate polygon".to_string()))?;
        if !convex.contains(centroid) {
            return Err(HtmError::InvalidRegion(
                "polygon vertices must be counter-clockwise and convex".to_string(),
            ));
        }
        Ok(Domain::from_convex(convex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sdss_skycoords::Vec3;

    fn arb_unit() -> impl Strategy<Value = UnitVec3> {
        (-1.0f64..1.0, 0.0f64..std::f64::consts::TAU).prop_map(|(z, phi)| {
            let r = (1.0 - z * z).max(0.0).sqrt();
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
                .normalized()
                .unwrap()
        })
    }

    #[test]
    fn halfspace_validation() {
        assert!(Halfspace::new(UnitVec3::Z, 1.5).is_err());
        assert!(Halfspace::new(UnitVec3::Z, f64::NAN).is_err());
        assert!(Halfspace::cap(UnitVec3::Z, -1.0).is_err());
        assert!(Halfspace::cap(UnitVec3::Z, 181.0).is_err());
    }

    #[test]
    fn cap_membership() {
        let cap = Halfspace::cap(UnitVec3::Z, 10.0).unwrap();
        assert!(cap.contains(UnitVec3::Z));
        let inside = SkyPos::new(0.0, 85.0).unwrap().unit_vec();
        let outside = SkyPos::new(0.0, 75.0).unwrap().unit_vec();
        assert!(cap.contains(inside));
        assert!(!cap.contains(outside));
        assert!((cap.radius_deg() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn complement_flips_membership() {
        let cap = Halfspace::cap(UnitVec3::X, 30.0).unwrap();
        let comp = cap.complement();
        let p = SkyPos::new(50.0, 0.0).unwrap().unit_vec(); // 50 deg from X
        assert!(!cap.contains(p));
        assert!(comp.contains(p));
        // Areas sum to the full sphere.
        assert!((cap.area_sr() + comp.area_sr() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn band_in_galactic_frame() {
        // |b| <= 10: the galactic plane region.
        let plane = Region::band(Frame::Galactic, -10.0, 10.0).unwrap();
        let gc = Frame::Galactic.to_equatorial_pos(SkyPos::new(33.0, 0.0).unwrap());
        assert!(plane.contains(gc.unit_vec()));
        let cap_pos = Frame::Galactic.to_equatorial_pos(SkyPos::new(100.0, 60.0).unwrap());
        assert!(!plane.contains(cap_pos.unit_vec()));
        // Boundary behaviour: just inside vs just outside.
        let inside = Frame::Galactic.to_equatorial_pos(SkyPos::new(10.0, 9.99).unwrap());
        let outside = Frame::Galactic.to_equatorial_pos(SkyPos::new(10.0, 10.01).unwrap());
        assert!(plane.contains(inside.unit_vec()));
        assert!(!plane.contains(outside.unit_vec()));
    }

    #[test]
    fn band_rejects_inverted() {
        assert!(Region::band(Frame::Equatorial, 10.0, -10.0).is_err());
        assert!(Region::band(Frame::Equatorial, -100.0, 0.0).is_err());
    }

    #[test]
    fn rect_membership() {
        let r = Region::rect(180.0, 190.0, 10.0, 20.0).unwrap();
        assert!(r.contains(SkyPos::new(185.0, 15.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(175.0, 15.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(185.0, 25.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(5.0, 15.0).unwrap().unit_vec()));
    }

    #[test]
    fn rect_wraps_ra_zero() {
        let r = Region::rect(350.0, 10.0, -5.0, 5.0).unwrap();
        assert!(r.contains(SkyPos::new(0.0, 0.0).unwrap().unit_vec()));
        assert!(r.contains(SkyPos::new(355.0, 0.0).unwrap().unit_vec()));
        assert!(r.contains(SkyPos::new(5.0, 0.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(180.0, 0.0).unwrap().unit_vec()));
    }

    #[test]
    fn wide_rect_splits() {
        // A 300-degree-wide rectangle must still work via splitting.
        let r = Region::rect(30.0, 330.0, -5.0, 5.0).unwrap();
        assert!(r.contains(SkyPos::new(180.0, 0.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(0.0, 0.0).unwrap().unit_vec()));
        assert!(!r.contains(SkyPos::new(180.0, 10.0).unwrap().unit_vec()));
    }

    #[test]
    fn polygon_membership_and_orientation() {
        let verts = [
            SkyPos::new(0.0, 0.0).unwrap(),
            SkyPos::new(10.0, 0.0).unwrap(),
            SkyPos::new(10.0, 10.0).unwrap(),
            SkyPos::new(0.0, 10.0).unwrap(),
        ];
        let poly = Region::polygon(&verts).unwrap();
        assert!(poly.contains(SkyPos::new(5.0, 5.0).unwrap().unit_vec()));
        assert!(!poly.contains(SkyPos::new(-5.0, 5.0).unwrap().unit_vec()));
        // Clockwise order must be rejected.
        let cw: Vec<SkyPos> = verts.iter().rev().copied().collect();
        assert!(Region::polygon(&cw).is_err());
        assert!(Region::polygon(&verts[..2]).is_err());
    }

    #[test]
    fn domain_boolean_algebra() {
        let a = Region::circle(0.0, 0.0, 10.0).unwrap();
        let b = Region::circle(15.0, 0.0, 10.0).unwrap();
        let mut union = a.clone();
        union.union_with(&b);
        let inter = a.intersect(&b);
        let in_both = SkyPos::new(7.5, 0.0).unwrap().unit_vec();
        let only_a = SkyPos::new(-5.0, 0.0).unwrap().unit_vec();
        let neither = SkyPos::new(40.0, 0.0).unwrap().unit_vec();
        assert!(union.contains(in_both) && union.contains(only_a));
        assert!(inter.contains(in_both) && !inter.contains(only_a));
        assert!(!union.contains(neither) && !inter.contains(neither));
    }

    proptest! {
        #[test]
        fn prop_circle_contains_iff_within_radius(
            center in arb_unit(), p in arb_unit(), radius in 0.1f64..90.0
        ) {
            let d = Region::circle_vec(center, radius).unwrap();
            let sep = center.separation_deg(p);
            // Skip points razor-close to the boundary where roundoff rules.
            prop_assume!((sep - radius).abs() > 1e-9);
            prop_assert_eq!(d.contains(p), sep < radius);
        }

        #[test]
        fn prop_band_matches_frame_latitude(p in arb_unit(), lo in -80.0f64..0.0, width in 1.0f64..60.0) {
            let hi = (lo + width).min(90.0);
            for frame in Frame::ALL {
                let band = Region::band(frame, lo, hi).unwrap();
                let lat = frame.from_equatorial_pos(SkyPos::from_unit_vec(p)).dec_deg();
                prop_assume!((lat - lo).abs() > 1e-9 && (lat - hi).abs() > 1e-9);
                prop_assert_eq!(
                    band.contains(p),
                    lat > lo && lat < hi,
                    "{}: lat={} lo={} hi={}",
                    frame,
                    lat,
                    lo,
                    hi
                );
            }
        }

        #[test]
        fn prop_intersect_is_conjunction(p in arb_unit()) {
            let a = Region::circle(10.0, 10.0, 40.0).unwrap();
            let b = Region::band(Frame::Equatorial, -20.0, 30.0).unwrap();
            let inter = a.intersect(&b);
            prop_assert_eq!(inter.contains(p), a.contains(p) && b.contains(p));
        }
    }
}
