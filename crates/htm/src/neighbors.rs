//! Trixel adjacency.
//!
//! The hash machine replicates objects near trixel edges into neighboring
//! buckets ("a single object may go to several buckets"); tests for that
//! machinery need ground-truth adjacency, computed here.
//!
//! The edge neighbor across edge (a, b) is found by nudging the edge
//! midpoint away from the opposite corner and looking the nudged point up
//! at the same level — robust and O(level), with no special-casing of the
//! octahedron seams.

use crate::mesh::lookup_id;
use crate::trixel::{HtmId, Trixel};
use sdss_skycoords::UnitVec3;

/// The three trixels sharing an edge with `id`, in opposite-corner order.
pub fn edge_neighbors(id: HtmId) -> [HtmId; 3] {
    let t = Trixel::from_id(id);
    let [a, b, c] = t.corners();
    [
        neighbor_across(a, b, c, id),
        neighbor_across(b, c, a, id),
        neighbor_across(c, a, b, id),
    ]
}

/// All trixels at the same level sharing at least a vertex with `id`
/// (excluding `id` itself). Found by probing points on a small circle
/// around each corner.
pub fn vertex_neighbors(id: HtmId) -> Vec<HtmId> {
    let t = Trixel::from_id(id);
    let level = t.level();
    // Probe radius: a small fraction of the trixel size, so probes stay
    // within the immediate ring of neighbors.
    let probe_deg = t.angular_size_deg() * 0.05;
    let mut found = Vec::new();
    for corner in t.corners() {
        let axis = corner.any_orthogonal();
        let start = corner.rotated_about(axis, probe_deg);
        // 12 probes around the corner catch every trixel meeting there
        // (at most 8 meet at an octahedron vertex, 6 elsewhere).
        for k in 0..12 {
            let p = start.rotated_about(corner, k as f64 * 30.0);
            let n = lookup_id(p, level).expect("level is valid");
            if n != id && !found.contains(&n) {
                found.push(n);
            }
        }
    }
    found.sort_unstable();
    found
}

fn neighbor_across(a: UnitVec3, b: UnitVec3, opposite: UnitVec3, id: HtmId) -> HtmId {
    let level = id.level();
    let mid = a
        .midpoint(b)
        .expect("trixel edge endpoints are not antipodal");
    // Tangent direction at `mid` pointing *into* the triangle (toward the
    // opposite corner); stepping along its negative leaves the triangle
    // through this edge.
    let inward = (opposite.as_vec3() - mid.as_vec3() * mid.dot(opposite))
        .normalized()
        .expect("opposite corner is never (anti)parallel to the edge midpoint");
    // Step a small fraction of the trixel scale across the edge.
    let step = (Trixel::from_id(id).angular_size_deg() * 0.01).to_radians();
    let probe = (mid.as_vec3() * step.cos() - inward.as_vec3() * step.sin())
        .normalized()
        .expect("rotation of a unit vector");
    lookup_id(probe, level).expect("level is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn root_edge_neighbors() {
        // S0 = (v1, v5, v2) shares edges with S1, S3 (around the south
        // pole) and N3 (across the equator).
        let n = edge_neighbors(HtmId::root(0));
        let names: Vec<String> = n.iter().map(|i| crate::name::id_to_name(*i)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["N3", "S1", "S3"], "got {names:?}");
    }

    #[test]
    fn neighbors_are_symmetric() {
        let id = HtmId::root(5).child(2).child(1);
        for n in edge_neighbors(id) {
            assert!(
                edge_neighbors(n).contains(&id),
                "{} not a neighbor of its neighbor {}",
                crate::name::id_to_name(id),
                crate::name::id_to_name(n)
            );
        }
    }

    #[test]
    fn interior_child_neighbors_are_siblings() {
        // Child 3 (the center triangle) always has its three siblings as
        // edge neighbors.
        let parent = HtmId::root(6).child(1);
        let center = parent.child(3);
        let mut n = edge_neighbors(center).to_vec();
        n.sort_unstable();
        let mut want = vec![parent.child(0), parent.child(1), parent.child(2)];
        want.sort_unstable();
        assert_eq!(n, want);
    }

    #[test]
    fn vertex_neighbors_superset_of_edge_neighbors() {
        let id = HtmId::root(2).child(0).child(3);
        let vn = vertex_neighbors(id);
        for en in edge_neighbors(id) {
            assert!(vn.contains(&en));
        }
        assert!(!vn.contains(&id));
        // A trixel meets at most 3 corners * (8-1) others.
        assert!(vn.len() >= 3 && vn.len() <= 21, "{}", vn.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_edge_neighbors_distinct_same_level(root in 0u8..8, path in proptest::collection::vec(0u8..4, 1..6)) {
            let mut id = HtmId::root(root);
            for k in path {
                id = id.child(k);
            }
            let n = edge_neighbors(id);
            prop_assert!(n[0] != n[1] && n[1] != n[2] && n[0] != n[2]);
            for x in n {
                prop_assert_eq!(x.level(), id.level());
                prop_assert!(x != id);
            }
        }
    }
}
