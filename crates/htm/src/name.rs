//! Textual trixel names: `N0`…`S3` roots with `0`–`3` digits appended.
//!
//! The paper's Figure 3 labels mesh nodes this way; the names double as a
//! human-readable quad-tree path ("N012" = root N0 → child 1 → child 2).

use crate::trixel::HtmId;
use crate::HtmError;

/// Names of the 8 root trixels, indexed by `HtmId::root_index()`.
const ROOT_NAMES: [&str; 8] = ["S0", "S1", "S2", "S3", "N0", "N1", "N2", "N3"];

/// Convert an id to its textual name.
pub fn id_to_name(id: HtmId) -> String {
    let mut s = String::with_capacity(2 + id.level() as usize);
    s.push_str(ROOT_NAMES[id.root_index() as usize]);
    for d in id.path_digits() {
        s.push((b'0' + d) as char);
    }
    s
}

/// Parse a textual name back into an id.
pub fn name_to_id(name: &str) -> Result<HtmId, HtmError> {
    let bytes = name.as_bytes();
    if bytes.len() < 2 {
        return Err(HtmError::InvalidName(name.to_string()));
    }
    let hemisphere = match bytes[0] {
        b'N' | b'n' => 4u8,
        b'S' | b's' => 0u8,
        _ => return Err(HtmError::InvalidName(name.to_string())),
    };
    let face = match bytes[1] {
        b'0'..=b'3' => bytes[1] - b'0',
        _ => return Err(HtmError::InvalidName(name.to_string())),
    };
    let mut id = HtmId::root(hemisphere + face);
    for &b in &bytes[2..] {
        match b {
            b'0'..=b'3' => id = id.child(b - b'0'),
            _ => return Err(HtmError::InvalidName(name.to_string())),
        }
        if id.level() as usize > crate::MAX_LEVEL as usize {
            return Err(HtmError::LevelTooDeep(id.level()));
        }
    }
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roots_have_expected_names() {
        assert_eq!(id_to_name(HtmId::root(0)), "S0");
        assert_eq!(id_to_name(HtmId::root(3)), "S3");
        assert_eq!(id_to_name(HtmId::root(4)), "N0");
        assert_eq!(id_to_name(HtmId::root(7)), "N3");
    }

    #[test]
    fn known_path() {
        let id = HtmId::root(6).child(0).child(1).child(2);
        assert_eq!(id_to_name(id), "N2012");
        assert_eq!(name_to_id("N2012").unwrap(), id);
        // Case-insensitive root letter.
        assert_eq!(name_to_id("n2012").unwrap(), id);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "N",
            "X0",
            "N4",
            "N01x",
            "S0123456789012345678901234567890",
        ] {
            assert!(name_to_id(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    proptest! {
        #[test]
        fn prop_name_roundtrip(root in 0u8..8, path in proptest::collection::vec(0u8..4, 0..12)) {
            let mut id = HtmId::root(root);
            for k in path {
                id = id.child(k);
            }
            let name = id_to_name(id);
            prop_assert_eq!(name_to_id(&name).unwrap(), id);
            prop_assert_eq!(name.len(), 2 + id.level() as usize);
        }
    }
}
