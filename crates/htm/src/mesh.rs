//! Point → trixel location: the mesh's index function.
//!
//! `lookup(p, level)` walks the quad-tree from the octahedron face
//! containing `p` down to the requested level, testing the point against
//! child triangles. Cost is O(level); at level 20 that is 20 triangle
//! tests of three dot products each.

use crate::trixel::{HtmId, Trixel, MAX_LEVEL};
use crate::HtmError;
use sdss_skycoords::{SkyPos, UnitVec3};

/// Locate the trixel containing `p` at `level`.
///
/// Every point on the sphere maps to exactly one trixel; points exactly on
/// shared edges are assigned deterministically to the first containing
/// child in `0..4` order.
pub fn lookup(p: UnitVec3, level: u8) -> Result<Trixel, HtmError> {
    if level > MAX_LEVEL {
        return Err(HtmError::LevelTooDeep(level));
    }
    let mut current = *Trixel::roots()
        .iter()
        .find(|t| t.contains(p))
        // The roots tile the sphere; with the shared boundary tolerance a
        // point always lands in at least one root.
        .expect("octahedron faces tile the sphere");
    for _ in 0..level {
        let children = current.children();
        current = *children
            .iter()
            .find(|t| t.contains(p))
            .expect("children tile their parent");
    }
    Ok(current)
}

/// Like [`lookup`] but returns only the id (the common case for storage).
#[inline]
pub fn lookup_id(p: UnitVec3, level: u8) -> Result<HtmId, HtmError> {
    lookup(p, level).map(|t| t.id())
}

/// Locate an angular position.
pub fn lookup_pos(pos: SkyPos, level: u8) -> Result<HtmId, HtmError> {
    lookup_id(pos.unit_vec(), level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sdss_skycoords::Vec3;

    fn arb_unit() -> impl Strategy<Value = UnitVec3> {
        (-1.0f64..1.0, 0.0f64..std::f64::consts::TAU).prop_map(|(z, phi)| {
            let r = (1.0 - z * z).max(0.0).sqrt();
            Vec3::new(r * phi.cos(), r * phi.sin(), z)
                .normalized()
                .unwrap()
        })
    }

    #[test]
    fn known_locations() {
        // The north pole lives in an N face at every level.
        let pole = SkyPos::new(0.0, 90.0).unwrap();
        let id = lookup_pos(pole, 5).unwrap();
        assert!(crate::name::id_to_name(id).starts_with('N'));
        // The south pole in an S face.
        let spole = SkyPos::new(0.0, -90.0).unwrap();
        let id = lookup_pos(spole, 5).unwrap();
        assert!(crate::name::id_to_name(id).starts_with('S'));
        // (ra=0, dec=0) is the octahedron vertex v1 shared by S0,S3,N0,N3;
        // deterministic tie-break must still give a stable answer.
        let origin = SkyPos::new(0.0, 0.0).unwrap();
        let a = lookup_pos(origin, 8).unwrap();
        let b = lookup_pos(origin, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn level_zero_matches_base_faces() {
        // A point clearly inside N3 (ra 45, dec 45).
        let p = SkyPos::new(45.0, 45.0).unwrap();
        let id = lookup_pos(p, 0).unwrap();
        assert_eq!(crate::name::id_to_name(id), "N3");
        // Antipode is in S... hemisphere.
        let q = SkyPos::new(225.0, -45.0).unwrap();
        let id = lookup_pos(q, 0).unwrap();
        assert!(crate::name::id_to_name(id).starts_with('S'));
    }

    #[test]
    fn rejects_too_deep() {
        let p = UnitVec3::Z;
        assert!(lookup(p, MAX_LEVEL + 1).is_err());
        assert!(lookup(p, MAX_LEVEL).is_ok());
    }

    #[test]
    fn deep_lookup_consistent_with_shallow() {
        let p = SkyPos::new(185.3, 14.7).unwrap().unit_vec();
        let deep = lookup_id(p, 12).unwrap();
        for level in 0..12 {
            let shallow = lookup_id(p, level).unwrap();
            assert_eq!(deep.ancestor_at(level), shallow, "level {level}");
        }
    }

    proptest! {
        #[test]
        fn prop_lookup_result_contains_point(p in arb_unit(), level in 0u8..12) {
            let t = lookup(p, level).unwrap();
            prop_assert!(t.contains(p));
            prop_assert_eq!(t.level(), level);
        }

        #[test]
        fn prop_prefix_consistency(p in arb_unit()) {
            // The level-k id is always the ancestor of the level-(k+1) id.
            let mut prev = lookup_id(p, 0).unwrap();
            for level in 1u8..10 {
                let id = lookup_id(p, level).unwrap();
                prop_assert_eq!(id.parent().unwrap().ancestor_at(level - 1), prev.ancestor_at(level-1));
                prop_assert_eq!(id.ancestor_at(level - 1), prev);
                prev = id;
            }
        }

        #[test]
        fn prop_from_id_agrees_with_lookup(p in arb_unit(), level in 0u8..10) {
            // Rebuilding the trixel from its id alone gives the same
            // geometry the walk produced, and it still contains p.
            let t = lookup(p, level).unwrap();
            let rebuilt = Trixel::from_id(t.id());
            prop_assert_eq!(rebuilt, t);
            prop_assert!(rebuilt.contains(p));
        }
    }
}
