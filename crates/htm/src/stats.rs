//! Per-level mesh statistics — the quantitative content of Figure 3.
//!
//! The paper: trixels at each level have "approximately equal areas"; this
//! module measures exactly how approximate, plus counts and angular
//! resolutions, which the `fig3_htm` harness prints next to the paper's
//! description.

use crate::trixel::Trixel;

/// Statistics for all trixels of one subdivision level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    pub level: u8,
    /// Number of trixels: 8 · 4^level.
    pub count: u64,
    /// Smallest trixel area (steradian).
    pub min_area_sr: f64,
    /// Largest trixel area (steradian).
    pub max_area_sr: f64,
    /// Mean area = 4π / count.
    pub mean_area_sr: f64,
    /// Uniformity: max/min area ratio (1.0 = perfectly equal).
    pub area_ratio: f64,
    /// Angular size of a mean-area trixel, degrees.
    pub mean_size_deg: f64,
}

/// Compute exact area statistics for `level` by enumerating all trixels.
///
/// Enumeration is exponential (8·4^L trixels); levels ≤ 8 (524k trixels)
/// stay well under a second. For deeper levels use
/// [`sampled_level_stats`].
pub fn level_stats(level: u8) -> LevelStats {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut count = 0u64;
    let mut total = 0.0;
    for root in Trixel::roots() {
        visit(root, level, &mut |t| {
            let a = t.area_sr();
            min = min.min(a);
            max = max.max(a);
            total += a;
            count += 1;
        });
    }
    debug_assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-6 * total);
    finish_stats(level, count, min, max)
}

/// Estimate area statistics by descending only through the extreme
/// children (min/max area) of each node — exact for the extremes because
/// area extremes are attained by repeatedly taking extreme children
/// (verified against full enumeration in tests for small levels).
pub fn sampled_level_stats(level: u8) -> LevelStats {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    // Track a frontier of candidate extreme trixels: start with roots.
    let mut frontier: Vec<Trixel> = Trixel::roots().to_vec();
    for _ in 0..level {
        let mut next: Vec<Trixel> = Vec::with_capacity(frontier.len() * 2);
        for t in frontier {
            let children = t.children();
            // Keep the min-area and max-area child of each node.
            let (mut lo, mut hi) = (children[0], children[0]);
            for c in &children[1..] {
                if c.area_sr() < lo.area_sr() {
                    lo = *c;
                }
                if c.area_sr() > hi.area_sr() {
                    hi = *c;
                }
            }
            next.push(lo);
            next.push(hi);
        }
        // Prune the frontier to the N smallest and N largest candidates to
        // keep the walk linear.
        next.sort_by(|a, b| a.area_sr().total_cmp(&b.area_sr()));
        let keep = 16.min(next.len());
        let mut pruned = next[..keep].to_vec();
        pruned.extend_from_slice(&next[next.len() - keep..]);
        frontier = pruned;
    }
    for t in &frontier {
        let a = t.area_sr();
        min = min.min(a);
        max = max.max(a);
    }
    let count = 8u64 << (2 * level as u64);
    finish_stats(level, count, min, max)
}

fn finish_stats(level: u8, count: u64, min: f64, max: f64) -> LevelStats {
    let mean = 4.0 * std::f64::consts::PI / count as f64;
    LevelStats {
        level,
        count,
        min_area_sr: min,
        max_area_sr: max,
        mean_area_sr: mean,
        area_ratio: max / min,
        mean_size_deg: mean.sqrt().to_degrees(),
    }
}

fn visit(t: Trixel, level: u8, f: &mut impl FnMut(&Trixel)) {
    if t.level() == level {
        f(&t);
    } else {
        for c in t.children() {
            visit(c, level, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_8_times_4_to_l() {
        for level in 0..5u8 {
            let s = level_stats(level);
            assert_eq!(s.count, 8 << (2 * level as u64));
        }
    }

    #[test]
    fn level0_is_exactly_uniform() {
        let s = level_stats(0);
        assert!((s.area_ratio - 1.0).abs() < 1e-12, "ratio {}", s.area_ratio);
        // Octahedron face = 4π/8 sr.
        assert!((s.min_area_sr - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn areas_stay_approximately_equal() {
        // The paper's claim "approximately equal areas": the max/min ratio
        // converges to ~2.1 and never blows up.
        for level in 1..6u8 {
            let s = level_stats(level);
            assert!(s.area_ratio < 2.2, "level {level} ratio {}", s.area_ratio);
            assert!(s.area_ratio > 1.0);
            assert!(s.min_area_sr > 0.0);
        }
    }

    #[test]
    fn ratio_grows_monotonically_to_limit() {
        let mut prev = 0.0;
        for level in 0..6u8 {
            let r = level_stats(level).area_ratio;
            assert!(r >= prev - 1e-12, "level {level}: {r} < {prev}");
            prev = r;
        }
    }

    #[test]
    fn sampled_matches_exact_for_small_levels() {
        for level in 0..6u8 {
            let exact = level_stats(level);
            let sampled = sampled_level_stats(level);
            assert!(
                (exact.min_area_sr - sampled.min_area_sr).abs() < 1e-12,
                "level {level} min: {} vs {}",
                exact.min_area_sr,
                sampled.min_area_sr
            );
            assert!(
                (exact.max_area_sr - sampled.max_area_sr).abs() < 1e-12,
                "level {level} max"
            );
        }
    }

    #[test]
    fn resolution_reaches_arcsecond_scale() {
        // Level 14 trixels are ~9 microsr → ~10 arcsec size; check the
        // size formula decreases by 2x per level.
        let s5 = sampled_level_stats(5);
        let s6 = sampled_level_stats(6);
        assert!((s5.mean_size_deg / s6.mean_size_deg - 2.0).abs() < 1e-9);
    }
}
