//! Compacted sets of HTM id intervals.
//!
//! Covers produce runs of consecutive ids (the quad-tree's depth-first
//! numbering makes subtrees contiguous), so a sorted interval list is the
//! natural set representation — the same one the original SDSS code used
//! to push "HTM ranges" into SQL between-predicates. Intervals here are
//! half-open `[lo, hi)` over raw ids at one fixed level.

/// A sorted, coalesced set of half-open `[lo, hi)` intervals of u64 ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HtmRangeSet {
    ranges: Vec<(u64, u64)>,
}

impl HtmRangeSet {
    /// The empty set.
    pub fn new() -> HtmRangeSet {
        HtmRangeSet::default()
    }

    /// Build from arbitrary (possibly overlapping, unsorted) intervals.
    pub fn from_unsorted(mut ranges: Vec<(u64, u64)>) -> HtmRangeSet {
        ranges.retain(|(lo, hi)| lo < hi);
        ranges.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match out.last_mut() {
                // Merge touching or overlapping intervals.
                Some((_, prev_hi)) if lo <= *prev_hi => *prev_hi = (*prev_hi).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        HtmRangeSet { ranges: out }
    }

    /// The coalesced intervals, sorted ascending.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Number of intervals (the "range count" that would go to a DB query).
    pub fn num_intervals(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of ids covered.
    pub fn count(&self) -> u64 {
        self.ranges.iter().map(|(lo, hi)| hi - lo).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Membership test by binary search: O(log n).
    pub fn contains(&self, id: u64) -> bool {
        match self.ranges.binary_search_by(|&(lo, _)| lo.cmp(&id)) {
            Ok(_) => true,                       // id is some interval's lo
            Err(0) => false,                     // before the first interval
            Err(i) => id < self.ranges[i - 1].1, // inside the previous interval?
        }
    }

    /// Iterate over every individual id (careful: can be huge).
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranges.iter().flat_map(|&(lo, hi)| lo..hi)
    }

    /// Whether the whole interval `[lo, hi)` is contained in the set.
    /// Because intervals are coalesced, containment means one stored
    /// interval spans it entirely.
    pub fn contains_range(&self, lo: u64, hi: u64) -> bool {
        if lo >= hi {
            return true; // empty interval is vacuously contained
        }
        match self.ranges.binary_search_by(|&(rlo, _)| rlo.cmp(&lo)) {
            Ok(i) => hi <= self.ranges[i].1,
            Err(0) => false,
            Err(i) => lo < self.ranges[i - 1].1 && hi <= self.ranges[i - 1].1,
        }
    }

    /// Set union.
    pub fn union(&self, other: &HtmRangeSet) -> HtmRangeSet {
        let mut all = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        all.extend_from_slice(&self.ranges);
        all.extend_from_slice(&other.ranges);
        HtmRangeSet::from_unsorted(all)
    }

    /// Set intersection by linear merge.
    pub fn intersect(&self, other: &HtmRangeSet) -> HtmRangeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo < hi {
                out.push((lo, hi));
            }
            if ahi <= bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        HtmRangeSet { ranges: out }
    }

    /// Set difference `self \ other` by linear merge.
    pub fn difference(&self, other: &HtmRangeSet) -> HtmRangeSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(alo, ahi) in &self.ranges {
            let mut cur = alo;
            while j < other.ranges.len() && other.ranges[j].1 <= cur {
                j += 1;
            }
            let mut k = j;
            while cur < ahi {
                if k >= other.ranges.len() || other.ranges[k].0 >= ahi {
                    out.push((cur, ahi));
                    break;
                }
                let (blo, bhi) = other.ranges[k];
                if blo > cur {
                    out.push((cur, blo.min(ahi)));
                }
                cur = cur.max(bhi);
                k += 1;
            }
        }
        HtmRangeSet::from_unsorted(out)
    }

    /// Coarsen every interval to a shallower level: each id maps to its
    /// ancestor, intervals widen to ancestor granularity. Used to turn a
    /// deep query cover into the set of level-K storage containers it
    /// touches.
    pub fn coarsen(&self, from_level: u8, to_level: u8) -> HtmRangeSet {
        assert!(to_level <= from_level, "coarsen goes to a shallower level");
        let shift = 2 * (from_level - to_level) as u64;
        let mapped = self
            .ranges
            .iter()
            .map(|&(lo, hi)| (lo >> shift, ((hi - 1) >> shift) + 1))
            .collect();
        HtmRangeSet::from_unsorted(mapped)
    }
}

impl FromIterator<u64> for HtmRangeSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        HtmRangeSet::from_unsorted(iter.into_iter().map(|id| (id, id + 1)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn from_unsorted_coalesces() {
        let s = HtmRangeSet::from_unsorted(vec![(10, 12), (5, 8), (12, 15), (7, 9), (20, 20)]);
        assert_eq!(s.ranges(), &[(5, 9), (10, 15)]);
        assert_eq!(s.count(), 9);
        assert_eq!(s.num_intervals(), 2);
    }

    #[test]
    fn contains_edges() {
        let s = HtmRangeSet::from_unsorted(vec![(5, 9), (10, 15)]);
        assert!(!s.contains(4));
        assert!(s.contains(5));
        assert!(s.contains(8));
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(s.contains(14));
        assert!(!s.contains(15));
        assert!(HtmRangeSet::new().is_empty());
        assert!(!HtmRangeSet::new().contains(0));
    }

    #[test]
    fn set_algebra_small() {
        let a = HtmRangeSet::from_unsorted(vec![(0, 10), (20, 30)]);
        let b = HtmRangeSet::from_unsorted(vec![(5, 25)]);
        assert_eq!(a.union(&b).ranges(), &[(0, 30)]);
        assert_eq!(a.intersect(&b).ranges(), &[(5, 10), (20, 25)]);
        assert_eq!(a.difference(&b).ranges(), &[(0, 5), (25, 30)]);
        assert_eq!(b.difference(&a).ranges(), &[(10, 20)]);
    }

    #[test]
    fn coarsen_to_ancestors() {
        // Level-2 ids 128..132 are the children block of level-1 id 32,
        // which descends from level-0 id 8.
        let s = HtmRangeSet::from_unsorted(vec![(128, 132)]);
        assert_eq!(s.coarsen(2, 1).ranges(), &[(32, 33)]);
        assert_eq!(s.coarsen(2, 0).ranges(), &[(8, 9)]);
        // A range straddling two parents coarsens to both.
        let s = HtmRangeSet::from_unsorted(vec![(130, 134)]);
        assert_eq!(s.coarsen(2, 1).ranges(), &[(32, 34)]);
    }

    #[test]
    fn from_iterator_of_ids() {
        let s: HtmRangeSet = [3u64, 4, 5, 9, 10, 42].into_iter().collect();
        assert_eq!(s.ranges(), &[(3, 6), (9, 11), (42, 43)]);
    }

    fn to_set(s: &HtmRangeSet) -> BTreeSet<u64> {
        s.iter_ids().collect()
    }

    proptest! {
        #[test]
        fn prop_set_semantics(
            a in proptest::collection::vec((0u64..200, 0u64..16), 0..12),
            b in proptest::collection::vec((0u64..200, 0u64..16), 0..12),
        ) {
            let ra = HtmRangeSet::from_unsorted(a.iter().map(|&(lo, len)| (lo, lo + len)).collect());
            let rb = HtmRangeSet::from_unsorted(b.iter().map(|&(lo, len)| (lo, lo + len)).collect());
            let sa = to_set(&ra);
            let sb = to_set(&rb);

            prop_assert_eq!(to_set(&ra.union(&rb)), sa.union(&sb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(to_set(&ra.intersect(&rb)), sa.intersection(&sb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(to_set(&ra.difference(&rb)), sa.difference(&sb).copied().collect::<BTreeSet<_>>());

            // contains agrees with the materialized set.
            for id in 0..220u64 {
                prop_assert_eq!(ra.contains(id), sa.contains(&id));
            }

            // contains_range agrees with element-wise membership.
            for lo in (0..200u64).step_by(13) {
                for width in [1u64, 3, 17] {
                    let want = (lo..lo + width).all(|id| sa.contains(&id));
                    prop_assert_eq!(ra.contains_range(lo, lo + width), want);
                }
            }

            // count matches.
            prop_assert_eq!(ra.count() as usize, sa.len());
        }

        #[test]
        fn prop_coalesced_invariant(
            a in proptest::collection::vec((0u64..1000, 0u64..40), 0..20),
        ) {
            let r = HtmRangeSet::from_unsorted(a.iter().map(|&(lo, len)| (lo, lo + len)).collect());
            // Sorted, non-empty, non-touching.
            for w in r.ranges().windows(2) {
                prop_assert!(w[0].1 < w[1].0, "{:?}", r.ranges());
            }
            for &(lo, hi) in r.ranges() {
                prop_assert!(lo < hi);
            }
        }

        #[test]
        fn prop_coarsen_preserves_membership(ids in proptest::collection::btree_set(512u64..2048, 1..32)) {
            // ids at level 3 (range [8*64, 16*64) = [512, 1024))... use ids in
            // [512, 2048) at level 3/4 mix is wrong; restrict to level 3:
            let ids: Vec<u64> = ids.into_iter().filter(|&i| i < 1024).collect();
            prop_assume!(!ids.is_empty());
            let s: HtmRangeSet = ids.iter().copied().collect();
            let coarse = s.coarsen(3, 1);
            for &id in &ids {
                prop_assert!(coarse.contains(id >> 4));
            }
        }
    }
}
