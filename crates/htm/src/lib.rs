//! # Hierarchical Triangular Mesh (HTM)
//!
//! The spatial index at the heart of the SDSS Science Archive (Szalay,
//! Kunszt, Thakar & Gray, SIGMOD 2000; Figure 3 and \[Szalay99\]):
//!
//! > "Starting with an octahedron base set, each spherical triangle can be
//! > recursively divided into 4 sub-triangles of approximately equal areas.
//! > [...] Such hierarchical subdivisions can be very efficiently
//! > represented in the form of quad-trees."
//!
//! and the query side (Figure 4):
//!
//! > "Each query can be represented as a set of half-space constraints,
//! > connected by Boolean operators, all in three-dimensional space. [...]
//! > Classify nodes, as fully outside the query, fully inside the query or
//! > partially intersecting the query polyhedron. If a node is rejected,
//! > that node's children can be ignored. Only the children of bisected
//! > triangles need be further investigated."
//!
//! ## Module map
//!
//! * [`trixel`] — trixel ids, levels, corner geometry, child subdivision
//! * [`name`] — the `N012…`/`S31…` textual id scheme
//! * [`mesh`] — point → trixel location (the index "hash" function)
//! * [`region`] — half-spaces (caps), convexes, domains; circle / band /
//!   rect / polygon constructors
//! * [`cover`] — the recursive full/partial/reject classification
//! * [`ranges`] — compacted sorted id-interval sets with set algebra
//! * [`neighbors`] — edge/vertex adjacency between trixels
//! * [`stats`] — per-level area statistics (Figure 3 reproduction)

pub mod cover;
pub mod mesh;
pub mod name;
pub mod neighbors;
pub mod ranges;
pub mod region;
pub mod stats;
pub mod trixel;

pub use cover::{Classification, Cover, CoverStats};
pub use mesh::{lookup, lookup_id};
pub use ranges::HtmRangeSet;
pub use region::{Convex, Domain, Halfspace, Region};
pub use trixel::{HtmId, Trixel, MAX_LEVEL};

/// Errors produced by the HTM crate.
#[derive(Debug, Clone, PartialEq)]
pub enum HtmError {
    /// Requested subdivision level exceeds [`MAX_LEVEL`].
    LevelTooDeep(u8),
    /// An id that is not a valid HTM id (wrong bit pattern / zero).
    InvalidId(u64),
    /// A textual name that does not follow the `N|S` + digits-0..3 scheme.
    InvalidName(String),
    /// Region construction failed (degenerate polygon, bad radius, ...).
    InvalidRegion(String),
}

impl std::fmt::Display for HtmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtmError::LevelTooDeep(l) => {
                write!(f, "HTM level {l} exceeds maximum {MAX_LEVEL}")
            }
            HtmError::InvalidId(id) => write!(f, "invalid HTM id {id:#x}"),
            HtmError::InvalidName(n) => write!(f, "invalid HTM name {n:?}"),
            HtmError::InvalidRegion(msg) => write!(f, "invalid region: {msg}"),
        }
    }
}

impl std::error::Error for HtmError {}
