//! E4 — Scan machine scaling: aggregate scan rate vs node count.
//!
//! Paper: one node reads 150 MB/s; 20 nodes give 3 GB/s and scan the
//! year-2004 catalog in ~2 minutes. Absolute rates here are laptop-bound;
//! the *shape* (≈linear scaling, flat per-node rate) is the result.

use sdss_bench::{build_stores, standard_sky};
use sdss_dataflow::{ObjPredicate, ScanMachine, SimCluster};
use std::sync::Arc;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "E4: scan machine aggregate rate vs nodes ({n} objects, {cores} physical threads)\n\
         (simulated nodes are threads: aggregate rate scales ~linearly up to\n\
         the hardware's parallelism, then saturates — the paper's 20 real\n\
         nodes each had their own disks and CPUs)\n"
    );
    let objs = standard_sky(n, 41);
    let (store, _) = build_stores(&objs, 7);
    let pred: ObjPredicate = Arc::new(|o| o.mag(2) < 20.0 && o.color_gr() > 0.3);

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "nodes", "wall (ms)", "MB/s", "MB/s/node", "objs/s", "speedup"
    );
    println!("{}", "-".repeat(68));
    let mut base = None;
    for nodes in [1usize, 2, 4, 8, 16, 20] {
        let cluster = SimCluster::from_store(&store, nodes).unwrap();
        let machine = ScanMachine::new(&cluster).unwrap();
        // Warm + best-of-3 to squeeze scheduler noise out.
        let mut best: Option<sdss_dataflow::ScanReport> = None;
        for _ in 0..3 {
            let mut matches = 0usize;
            let report = machine.run_query(pred.clone(), |_| matches += 1).unwrap();
            if best.as_ref().is_none_or(|b| report.wall < b.wall) {
                best = Some(report);
            }
        }
        let report = best.unwrap();
        let mbps = report.aggregate_mbps();
        if base.is_none() {
            base = Some(mbps);
        }
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>10.0} {:>9.2}x",
            nodes,
            report.wall.as_secs_f64() * 1e3,
            mbps,
            mbps / nodes as f64,
            report.objects as f64 / report.wall.as_secs_f64(),
            mbps / base.unwrap()
        );
    }

    // The paper's headline: full catalog scan time at paper-scale rates.
    println!("\npaper extrapolation: 400 GB catalog at 150 MB/s/node:");
    for nodes in [1, 20] {
        let secs = 400e9 / (150e6 * nodes as f64);
        println!("  {nodes:>2} nodes: {:.0} s ({:.1} min)", secs, secs / 60.0);
    }
}
