//! The CI bench-regression gate: compare freshly emitted `BENCH_*.json`
//! reports against the committed baselines and fail the job when any
//! gated headline metric regresses by more than the threshold.
//!
//! Usage: `bench_check <baseline_dir> [current_dir]` (current defaults
//! to `.`). CI copies the committed `BENCH_*.json` files aside *before*
//! the bench steps overwrite them in place, then runs this binary over
//! the pair of directories.
//!
//! Gate rules:
//!
//! * **Gated metrics** are throughput fields (key ends in `_per_sec`)
//!   and ratio fields (key contains `speedup`, `efficiency` or
//!   `scaling`). Everything else — row counts, object counts, pair
//!   counts — is configuration, not performance.
//! * A gated metric **fails** when `current < (1 - THRESHOLD) * baseline`.
//!   Improvements and sub-threshold noise pass.
//! * **Wall-clock parallelism fields** (`speedup` / `efficiency` /
//!   `scaling`) are *skipped* when either run records `"cores": 1` at
//!   the top level of that report — a single-core runner physically caps
//!   parallel speedup at ~1.0, so comparing it against a multi-core
//!   baseline (or vice versa) measures the machine, not the code.
//!   Throughput-vs-interpretation ratios in reports without a `cores`
//!   field (e.g. compiled-vs-interpreted speedups) stay gated: they are
//!   same-machine ratios.
//! * A gated metric present in the baseline but missing from the fresh
//!   report fails the gate (removing a headline metric must be an
//!   explicit baseline update, not an accident). New metrics (no
//!   baseline) are reported and pass.
//! * A baseline file that doesn't exist skips its report entirely (a
//!   brand-new bench has nothing to regress against).
//!
//! Caveat the threshold bakes in: absolute `*_per_sec` baselines carry
//! the machine they were committed from. The 25% band absorbs normal
//! runner-class variance, but when the enforcing runner class changes
//! materially (or a hard-red run shows *every* metric shifted by a
//! similar factor), regenerate the committed `BENCH_*.json` on the new
//! class rather than chasing individual metrics — the same-machine
//! ratio fields (`speedup` etc.) are the machine-independent signal.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// Allowed relative regression before the gate trips.
const THRESHOLD: f64 = 0.25;

/// The reports under the gate.
const REPORTS: &[&str] = &[
    "BENCH_batch_exec.json",
    "BENCH_concurrent.json",
    "BENCH_parallel_scan.json",
    "BENCH_workspace.json",
];

// ---------------------------------------------------------------------
// A minimal JSON reader (the workspace builds offline — no serde): the
// bench reports are machine-written, so this only has to handle the
// shapes they emit (objects, arrays, numbers, strings, literals).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The reports never escape anything beyond quotes
                    // and backslashes; pass the next byte through.
                    self.at += 1;
                    if let Some(&b) = self.bytes.get(self.at) {
                        out.push(b as char);
                        self.at += 1;
                    }
                }
                Some(&b) => {
                    out.push(b as char);
                    self.at += 1;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Flatten a report into `path -> number` (arrays indexed; only numeric
/// leaves matter to the gate).
fn flatten(v: &Json, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Obj(fields) => {
            for (k, child) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(child, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{prefix}[{i}]"), out);
            }
        }
        Json::Str(_) | Json::Bool(_) | Json::Null => {}
    }
}

/// Ratio fields that compare two code paths on the *same machine in the
/// same run* (compiled vs interpreted, direct INTO vs fetch INTO).
/// These stay gated even on a 1-core runner — unlike wall-clock
/// parallelism ratios, the machine cancels out of them.
const SAME_MACHINE_RATIOS: &[&str] = &[
    "speedup", // batch_exec per-query compiled/interpreted ratio
    "geomean_speedup",
    "headline_popular_attribute_speedup",
    "into_fast_speedup",
];

/// Is this flattened path a gated metric, and is it a wall-clock
/// parallelism field (skippable on 1-core runs)?
fn classify(path: &str) -> (bool, bool) {
    let key = path.rsplit('.').next().unwrap_or(path);
    let throughput = key.ends_with("_per_sec");
    let ratio = key.contains("speedup") || key.contains("efficiency") || key.contains("scaling");
    let parallel_ratio = ratio && !SAME_MACHINE_RATIOS.contains(&key);
    (throughput || ratio, parallel_ratio)
}

struct Outcome {
    failures: usize,
    checked: usize,
}

fn check_report(name: &str, baseline_dir: &Path, current_dir: &Path) -> Result<Outcome, String> {
    let baseline_path = baseline_dir.join(name);
    let current_path = current_dir.join(name);
    if !baseline_path.exists() {
        println!("{name}: no committed baseline — skipping (new bench)");
        return Ok(Outcome {
            failures: 0,
            checked: 0,
        });
    }
    let read = |p: &Path| -> Result<BTreeMap<String, f64>, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let json = JsonParser::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        let mut flat = BTreeMap::new();
        flatten(&json, "", &mut flat);
        Ok(flat)
    };
    let baseline = read(&baseline_path)?;
    let current = read(&current_path)?;

    // Wall-clock parallelism ratios only compare when both runs had
    // real parallelism to measure.
    let one_core =
        baseline.get("cores").copied() == Some(1.0) || current.get("cores").copied() == Some(1.0);

    let mut failures = 0usize;
    let mut checked = 0usize;
    println!("{name}:");
    // Metrics inside runs[] are compared positionally, so the run
    // configurations must line up: a sweep-list change (new worker or
    // thread count) would otherwise compare unrelated configurations.
    for (path, &base) in &baseline {
        let key = path.rsplit('.').next().unwrap_or(path);
        if key == "workers" || key == "threads" {
            match current.get(path) {
                Some(&cur) if cur == base => {}
                other => {
                    println!(
                        "  FAIL  {path:<44} run configuration changed \
                         ({base} -> {other:?}); regenerate the committed baselines"
                    );
                    failures += 1;
                }
            }
        }
    }
    for (path, &base) in &baseline {
        let (gated, parallel_ratio) = classify(path);
        if !gated {
            continue;
        }
        if parallel_ratio && one_core {
            println!("  skip  {path:<44} (1-core run: wall-clock ratio not comparable)");
            continue;
        }
        let Some(&cur) = current.get(path) else {
            println!("  FAIL  {path:<44} gated metric missing from the fresh report");
            failures += 1;
            continue;
        };
        checked += 1;
        let floor = base * (1.0 - THRESHOLD);
        let delta = if base != 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        if cur < floor {
            println!("  FAIL  {path:<44} {base:>14.2} -> {cur:>14.2}  ({delta:+.1}%)");
            failures += 1;
        } else {
            println!("  ok    {path:<44} {base:>14.2} -> {cur:>14.2}  ({delta:+.1}%)");
        }
    }
    for path in current.keys() {
        let (gated, _) = classify(path);
        if gated && !baseline.contains_key(path) {
            println!("  new   {path:<44} (no baseline yet)");
        }
    }
    Ok(Outcome { failures, checked })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(baseline_dir) = args.get(1).map(Path::new) else {
        eprintln!("usage: bench_check <baseline_dir> [current_dir]");
        return ExitCode::from(2);
    };
    let current_dir = args.get(2).map(Path::new).unwrap_or(Path::new("."));

    println!(
        "bench regression gate: baseline {} vs current {} \
         (fail on >{:.0}% throughput regression)\n",
        baseline_dir.display(),
        current_dir.display(),
        THRESHOLD * 100.0
    );
    let mut failures = 0usize;
    let mut checked = 0usize;
    for name in REPORTS {
        match check_report(name, baseline_dir, current_dir) {
            Ok(outcome) => {
                failures += outcome.failures;
                checked += outcome.checked;
            }
            Err(e) => {
                println!("{name}: FAIL — {e}");
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("bench gate FAILED: {failures} regression(s) across {checked} gated metrics");
        return ExitCode::FAILURE;
    }
    println!(
        "bench gate passed: {checked} gated metrics within {:.0}%",
        THRESHOLD * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_flattens_a_report_shape() {
        let text = r#"{"bench": "x", "cores": 1, "a_per_sec": 100.5,
                       "runs": [{"workers": 1, "sweep_rows_per_sec": 5, "sweep_speedup": 1.0}]}"#;
        let json = JsonParser::parse(text).unwrap();
        let mut flat = BTreeMap::new();
        flatten(&json, "", &mut flat);
        assert_eq!(flat.get("a_per_sec"), Some(&100.5));
        assert_eq!(flat.get("runs[0].sweep_rows_per_sec"), Some(&5.0));
        assert_eq!(flat.get("cores"), Some(&1.0));
        assert!(!flat.contains_key("bench"), "strings are not metrics");
    }

    #[test]
    fn classify_gates_throughput_and_ratios() {
        assert_eq!(classify("into_rows_per_sec"), (true, false));
        assert_eq!(classify("runs[2].queries_per_sec"), (true, false));
        assert_eq!(classify("runs[1].sweep_efficiency"), (true, true));
        assert_eq!(classify("runs[0].scaling_vs_1"), (true, true));
        assert_eq!(classify("runs[1].set_speedup"), (true, true));
        assert_eq!(classify("sweep_speedup_4w"), (true, true));
        assert_eq!(classify("objects"), (false, false));
        assert_eq!(classify("set_rows"), (false, false));
        assert_eq!(classify("match_pairs"), (false, false));
        // Same-machine code-path ratios stay gated even at cores: 1 —
        // the PR's headline fast-path speedup must never be skipped.
        assert_eq!(classify("into_fast_speedup"), (true, false));
        assert_eq!(classify("geomean_speedup"), (true, false));
        assert_eq!(classify("queries[3].speedup"), (true, false));
    }
}
