//! E12 — The ASAP push property: time-to-first-row vs completion time.
//!
//! Paper: "this ASAP data push strategy ensures that even in the case of
//! a query that takes a very long time to complete, the user starts
//! seeing results almost immediately."

use sdss_bench::{build_stores, standard_sky};
use sdss_query::Archive;
use std::sync::Arc;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000usize);
    println!("E12: ASAP streaming — first row vs completion ({n} objects)\n");
    let objs = standard_sky(n, 49);
    let (store, tags) = build_stores(&objs, 7);
    let archive = Archive::new(store, Some(Arc::new(tags)));

    let queries = [
        (
            "streaming scan",
            "SELECT objid, ra, dec FROM photoobj WHERE CIRCLE(185, 15, 4.5) AND r < 22.5",
        ),
        (
            "blocking sort",
            "SELECT objid, r FROM photoobj WHERE CIRCLE(185, 15, 4.5) AND r < 22.5 ORDER BY r",
        ),
        (
            "blocking aggregate",
            "SELECT COUNT(*), AVG(r) FROM photoobj WHERE CIRCLE(185, 15, 4.5)",
        ),
        (
            "set op (intersect)",
            "(SELECT objid FROM photoobj WHERE r < 21) INTERSECT (SELECT objid FROM photoobj WHERE gr > 0.4)",
        ),
    ];

    println!(
        "{:<20} {:>8} {:>14} {:>12} {:>12}",
        "plan", "rows", "first row (ms)", "total (ms)", "first/total"
    );
    println!("{}", "-".repeat(72));
    for (name, sql) in queries {
        let out = archive.run(sql).unwrap();
        let first = out
            .stats
            .time_to_first_row
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(f64::NAN);
        let total = out.stats.total_time.as_secs_f64() * 1e3;
        println!(
            "{:<20} {:>8} {:>14.2} {:>12.2} {:>11.1}%",
            name,
            out.stats.rows,
            first,
            total,
            first / total * 100.0
        );
    }
    println!(
        "\n(streaming plans deliver the first row in a small fraction of the\n query time; blocking nodes — sort/aggregate — must drain a child first)"
    );
}
