//! E6 — Partitioning + 1% sampling: the "2 TB → 2 GB" desktop argument.
//!
//! Measures bytes and time for the same query over: the full store, the
//! tag partition, the 1% sample, and the 1% tag sample — then scales the
//! byte reductions to the paper's 2 TB archive.

use sdss_bench::{build_stores, fmt_bytes, standard_sky};
use sdss_htm::Region;
use sdss_storage::sample::{build_sample, build_sample_tags};
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    println!("E6: vertical partition x 1% sampling ({n} objects)\n");
    let objs = standard_sky(n, 43);
    let (store, tags) = build_stores(&objs, 7);
    let sample = build_sample(&store, 0.01).unwrap();
    let sample_tags = build_sample_tags(&store, 0.01).unwrap();

    let domain = Region::circle(185.0, 15.0, 4.5).unwrap();
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>10}",
        "dataset", "bytes", "vs full", "query (ms)", "rows"
    );
    println!("{}", "-".repeat(72));

    let full_bytes = store.bytes() as f64;
    let t = Instant::now();
    let (rows_full, _) = store.query_region(&domain, None).unwrap();
    let full_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "{:<22} {:>12} {:>9.0}x {:>12.2} {:>10}",
        "full objects",
        fmt_bytes(full_bytes),
        1.0,
        full_ms,
        rows_full.len()
    );

    let t = Instant::now();
    let (rows_tag, _) = tags.query_region(&domain, None).unwrap();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "{:<22} {:>12} {:>9.0}x {:>12.2} {:>10}",
        "tag partition",
        fmt_bytes(tags.bytes() as f64),
        full_bytes / tags.bytes() as f64,
        ms,
        rows_tag.len()
    );

    let t = Instant::now();
    let (rows_s, _) = sample.query_region(&domain, None).unwrap();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "{:<22} {:>12} {:>9.0}x {:>12.2} {:>10}",
        "1% sample (full)",
        fmt_bytes(sample.bytes() as f64),
        full_bytes / sample.bytes() as f64,
        ms,
        rows_s.len()
    );

    let t = Instant::now();
    let (rows_st, _) = sample_tags.query_region(&domain, None).unwrap();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let combined = full_bytes / sample_tags.bytes() as f64;
    println!(
        "{:<22} {:>12} {:>9.0}x {:>12.2} {:>10}",
        "1% sample of tags",
        fmt_bytes(sample_tags.bytes() as f64),
        combined,
        ms,
        rows_st.len()
    );

    println!("\npaper scaling: a 2 TB archive shrinks to:");
    println!(
        "  tags only:        {}",
        fmt_bytes(2e12 / (full_bytes / tags.bytes() as f64))
    );
    println!(
        "  1% of tags:       {}  (paper: 'converts a 2 TB data set into 2 gigabytes')",
        fmt_bytes(2e12 / combined)
    );
    // Sanity for the printed claim.
    let sampled_fraction = rows_s.len() as f64 / rows_full.len().max(1) as f64;
    println!(
        "\nsample statistics: region query returned {:.2}% of full rows (target 1%)",
        sampled_fraction * 100.0
    );
}
