//! E11 — Reproduce **Figure 2**: the archive network timeline.
//!
//! Simulates nightly chunks flowing T → OA → MSA → LA / → MPA → PA and
//! prints the latency ladder the paper annotates on the figure.

use sdss_archive_sim::ArchiveNetwork;

fn main() {
    println!("E11 / Figure 2: conceptual data flow of the SDSS data\n");
    let mut net = ArchiveNetwork::sdss_default(2, 2);
    let n_chunks = 30;
    net.run(n_chunks);

    println!("latency from telescope (chunk 0):");
    println!(
        "{:<12} {:>12} {:>14}   paper annotation",
        "site", "days", "readable"
    );
    println!("{}", "-".repeat(64));
    let annotations = [
        ("APO telescope", "T"),
        ("FNAL OA", "1 day"),
        ("MSA", "2 weeks"),
        ("LA-0", "1 month"),
        ("MPA", "1-2 years"),
        ("PA-0", "1-2 years"),
    ];
    for (site, note) in annotations {
        let days = net.latency_days(site, 0).unwrap().unwrap();
        let readable = if days >= 365.0 {
            format!("{:.1} years", days / 365.25)
        } else if days >= 28.0 {
            format!("{:.1} months", days / 30.4)
        } else if days >= 7.0 {
            format!("{:.1} weeks", days / 7.0)
        } else {
            format!("{days:.0} days")
        };
        println!("{site:<12} {days:>12.1} {readable:>14}   {note}");
    }

    println!("\nholdings after {n_chunks} nights (chunks per tier):");
    for (site, count) in net.holdings_summary() {
        println!("  {site:<12} {count}");
    }
    println!(
        "\n(science tier sees data ~{:.1} years before the public tier — the\n verification window of the paper)",
        (net.latency_days("PA-0", 0).unwrap().unwrap()
            - net.latency_days("LA-0", 0).unwrap().unwrap())
            / 365.25
    );
}
