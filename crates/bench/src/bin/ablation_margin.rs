//! E15 — Ablation: hash-machine margin width.
//!
//! Paper: "a single object may go to several buckets (to allow objects
//! near the edges of a region to go to all the neighboring regions as
//! well)". Margin below the pair radius silently loses cross-bucket
//! pairs; margin above it only costs replication. This sweep quantifies
//! both sides.

use sdss_bench::standard_sky;
use sdss_catalog::TagObject;
use sdss_dataflow::{HashMachine, PairPredicate};
use std::sync::Arc;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000usize);
    let radius_arcsec = 30.0;
    let radius_deg = radius_arcsec / 3600.0;
    println!(
        "E15: margin ablation — pair radius {radius_arcsec}\", bucket level 9 ({n} objects)\n"
    );
    let tags: Vec<TagObject> = standard_sky(n, 51)
        .iter()
        .map(TagObject::from_photo)
        .collect();
    let pred: PairPredicate = Arc::new(|_, _| true);

    // Ground truth with a generous margin.
    let truth = HashMachine {
        bucket_level: 9,
        margin_deg: radius_deg * 2.0,
        n_workers: 4,
    };
    let (all_pairs, _) = truth.find_pairs(&tags, radius_deg, &pred).unwrap();
    println!("ground truth: {} pairs\n", all_pairs.len());

    println!(
        "{:>14} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "margin/radius", "pairs", "missed", "repl factor", "comparisons", "wall (ms)"
    );
    println!("{}", "-".repeat(72));
    for factor in [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let machine = HashMachine {
            bucket_level: 9,
            margin_deg: radius_deg * factor,
            n_workers: 4,
        };
        let (pairs, report) = machine.find_pairs(&tags, radius_deg, &pred).unwrap();
        let missed = all_pairs.len() - pairs.len();
        println!(
            "{:>13.2}x {:>8} {:>10} {:>11.2}x {:>12} {:>10.1}",
            factor,
            pairs.len(),
            missed,
            report.replication_factor(),
            report.comparisons,
            report.wall.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\n(margin ≥ 1.0x radius finds every pair — the correctness threshold;\n beyond it only replication and comparisons grow)"
    );
}
