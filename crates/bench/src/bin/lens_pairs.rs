//! E7 / E13 — The gravitational-lens query on the hash machine vs the
//! naive all-pairs baseline, swept over catalog size.
//!
//! Paper query: "find objects within 10 arcsec of each other which have
//! identical colors, but may have a different brightness." Pass
//! `--mode quasar` for the other flagship query ("quasars brighter than
//! r=22 with a faint blue galaxy within 5 arcsec").

use sdss_bench::standard_sky;
use sdss_catalog::{ObjClass, TagObject};
use sdss_dataflow::{brute_force_pairs, HashMachine, PairPredicate};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let quasar_mode = mode.contains("quasar");

    let (radius_arcsec, pred): (f64, PairPredicate) = if quasar_mode {
        println!("E13: quasars r<22 with a faint blue galaxy within 5 arcsec\n");
        (
            5.0,
            Arc::new(|a: &TagObject, b: &TagObject| {
                let (q, g) = if a.class == ObjClass::Quasar {
                    (a, b)
                } else {
                    (b, a)
                };
                q.class == ObjClass::Quasar
                    && q.mag(2) < 22.0
                    && g.class == ObjClass::Galaxy
                    && g.mag(2) > q.mag(2) + 1.0 // fainter companion
                    && g.color_gr() < 0.6 // blue
            }),
        )
    } else {
        println!("E7: gravitational lens candidates (10\", equal colors, Δr ≥ 0.5)\n");
        (
            10.0,
            Arc::new(|a: &TagObject, b: &TagObject| {
                let colors = (a.color_ug() - b.color_ug()).abs() <= 0.1
                    && (a.color_gr() - b.color_gr()).abs() <= 0.1
                    && (a.color_ri() - b.color_ri()).abs() <= 0.1
                    && (a.color_iz() - b.color_iz()).abs() <= 0.1;
                colors && (a.mag(2) - b.mag(2)).abs() >= 0.5
            }),
        )
    };
    let radius_deg = radius_arcsec / 3600.0;

    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>9} {:>12} {:>10}",
        "N", "pairs", "hash (ms)", "brute (ms)", "speedup", "comparisons", "repl."
    );
    println!("{}", "-".repeat(80));
    for n in [1_000usize, 3_000, 10_000, 30_000, 100_000] {
        let tags: Vec<TagObject> = standard_sky(n, 44)
            .iter()
            .map(TagObject::from_photo)
            .collect();
        let machine = HashMachine {
            bucket_level: 9,
            margin_deg: radius_deg,
            n_workers: 4,
        };
        let t = Instant::now();
        let (pairs, report) = machine.find_pairs(&tags, radius_deg, &pred).unwrap();
        let hash_ms = t.elapsed().as_secs_f64() * 1e3;

        // Brute force gets prohibitive: cap it at 30k.
        let brute_ms = if n <= 30_000 {
            let t = Instant::now();
            let brute = brute_force_pairs(&tags, radius_deg, &pred);
            assert_eq!(brute.len(), pairs.len(), "hash machine lost pairs!");
            Some(t.elapsed().as_secs_f64() * 1e3)
        } else {
            None
        };
        println!(
            "{:>8} {:>8} {:>12.1} {:>12} {:>9} {:>12} {:>9.2}x",
            n,
            pairs.len(),
            hash_ms,
            brute_ms.map_or("-".into(), |v| format!("{v:.1}")),
            brute_ms.map_or("-".into(), |v| format!("{:.1}x", v / hash_ms)),
            report.comparisons,
            report.replication_factor(),
        );
    }
    println!("\n(hash machine comparisons grow ~linearly in N; brute force is N²/2)");
}
