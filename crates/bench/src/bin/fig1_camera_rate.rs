//! E16 — Figure 1's camera as a data source: pixel counts, data rate and
//! nightly volumes feeding the ingest pipeline.

use sdss_loader::DriftScanCamera;

fn main() {
    println!("E16 / Figure 1: the SDSS photometric camera as a data source\n");
    let cam = DriftScanCamera::default();
    println!(
        "imaging CCDs:      {} x {}x{}",
        cam.n_imaging_ccds, cam.ccd_width, cam.ccd_height
    );
    println!("astrometric CCDs:  {}", cam.n_astrometric_ccds);
    println!("focus CCDs:        {}", cam.n_focus_ccds);
    println!(
        "imaging pixels:    {:.0}M   (paper: '120 million pixels')",
        cam.total_pixels() as f64 / 1e6
    );
    println!(
        "data rate:         {:.1} MB/s (paper: '8 Megabytes per second')",
        cam.data_rate_bps() / 1e6
    );
    println!(
        "effective exposure: {} s (paper: '55 sec')\n",
        cam.exposure_s
    );

    println!(
        "{:>12} {:>14} {:>18}",
        "night (h)", "raw bytes", "5-yr extrapolation"
    );
    println!("{}", "-".repeat(50));
    // "The cameras can only be used under ideal conditions": roughly 30
    // photometric nights a year reach the imaging survey.
    let photometric_nights_per_year = 30.0;
    for hours in [4.0, 8.0, 10.0] {
        let night = cam.bytes_per_night(hours);
        let five_years = night * photometric_nights_per_year * 5.0;
        println!(
            "{:>12} {:>13.1} GB {:>17.1} TB",
            hours,
            night / 1e9,
            five_years / 1e12
        );
    }
    println!(
        "\n(paper: 'during the 5 years of the survey SDSS will collect more than\n 40 Terabytes of image data' — matched by ~10h nights x ~30 ideal\n nights/year x 5 years)"
    );
}
