//! E14 — Ablation: scan cover depth.
//!
//! Deeper covers shrink the boundary (fewer exact geometric tests per
//! query) but cost more cover computation and produce more id intervals.
//! This sweep shows the trade-off the store's default level sits on.

use sdss_bench::{build_stores, standard_sky};
use sdss_htm::{Cover, Region};
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    println!("E14: cover-depth ablation, cone radius 2 deg ({n} objects)\n");
    let objs = standard_sky(n, 50);
    let (store, _) = build_stores(&objs, 7);
    let domain = Region::circle(185.0, 15.0, 2.0).unwrap();

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>11} {:>10}",
        "level", "cover (µs)", "intervals", "exact tests", "rows", "bytes", "query(ms)"
    );
    println!("{}", "-".repeat(80));
    for level in [7u8, 8, 9, 10, 11, 12, 14] {
        let t = Instant::now();
        let cover = Cover::compute(&domain, level).unwrap();
        let cover_us = t.elapsed().as_secs_f64() * 1e6;
        let intervals =
            cover.full_ranges().num_intervals() + cover.partial_ranges().num_intervals();
        let t = Instant::now();
        let (rows, stats) = store.query_region(&domain, Some(level)).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>6} {:>12.0} {:>10} {:>12} {:>12} {:>11} {:>10.2}",
            level,
            cover_us,
            intervals,
            stats.objects_exact_tested,
            rows.len(),
            stats.bytes_scanned,
            ms
        );
    }
    println!(
        "\n(rows are identical at every level — depth only moves work between\n cover computation and per-object geometry; bytes stay constant because\n the container set is fixed by the store's clustering level)"
    );
}
