//! E8 — Index-assisted region queries: bytes touched, container
//! classification and the cost model's output-volume prediction, swept
//! over cone radius.
//!
//! Paper: containers "tell us whether containers are fully inside,
//! outside or bisected by our query. Only the bisected container category
//! is searched [...] A prediction of the output data volume and search
//! time can be computed from the intersection volume."

use sdss_bench::{build_stores, standard_sky};
use sdss_htm::Region;
use sdss_storage::CostModel;
use std::time::Instant;

fn main() {
    let n = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000usize);
    println!("E8: cone queries — index selectivity and cost prediction ({n} objects)\n");
    let objs = standard_sky(n, 45);
    let (store, _) = build_stores(&objs, 7);
    let total_bytes = store.bytes();
    let model = CostModel::default();

    println!(
        "{:>8} {:>8} {:>9} {:>9} {:>11} {:>9} {:>9} {:>10}",
        "radius", "rows", "est rows", "est/act", "bytes", "% of all", "exact", "time (ms)"
    );
    println!("{}", "-".repeat(82));
    for radius in [0.1, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let domain = Region::circle(185.0, 15.0, radius).unwrap();
        let est = model.estimate(&store, &domain).unwrap();
        let t = Instant::now();
        let (rows, stats) = store.query_region(&domain, None).unwrap();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>7}d {:>8} {:>9.0} {:>9.2} {:>11} {:>8.1}% {:>9} {:>10.2}",
            radius,
            rows.len(),
            est.est_rows,
            est.est_rows / rows.len().max(1) as f64,
            stats.bytes_scanned,
            stats.bytes_scanned as f64 / total_bytes as f64 * 100.0,
            stats.objects_exact_tested,
            ms
        );
    }
    println!(
        "\n(small queries read a tiny fraction of the store; exact geometry \
         tests happen only in boundary trixels)"
    );
}
