//! E2 — Reproduce **Figure 3**: the hierarchical trisection of the sphere.
//!
//! Prints, per level: trixel counts (8·4^L), exact area statistics, the
//! paper's "approximately equal areas" uniformity ratio, and the angular
//! resolution of the mesh.

use sdss_htm::name::id_to_name;
use sdss_htm::stats::{level_stats, sampled_level_stats};
use sdss_htm::{lookup_id, HtmId};
use sdss_skycoords::SkyPos;

fn main() {
    println!("E2 / Figure 3: HTM — recursive 4-way trisection from the octahedron\n");
    println!(
        "{:>5} {:>14} {:>13} {:>13} {:>9} {:>14}",
        "level", "trixels", "min area", "max area", "max/min", "mean size"
    );
    println!("{}", "-".repeat(76));
    for level in 0..=14u8 {
        let s = if level <= 7 {
            level_stats(level)
        } else {
            sampled_level_stats(level)
        };
        let size = if s.mean_size_deg >= 1.0 {
            format!("{:.2} deg", s.mean_size_deg)
        } else if s.mean_size_deg >= 1.0 / 60.0 {
            format!("{:.2} arcmin", s.mean_size_deg * 60.0)
        } else {
            format!("{:.2} arcsec", s.mean_size_deg * 3600.0)
        };
        println!(
            "{:>5} {:>14} {:>13.4e} {:>13.4e} {:>9.3} {:>14}",
            s.level, s.count, s.min_area_sr, s.max_area_sr, s.area_ratio, size
        );
    }

    println!("\nQuad-tree ids along one subdivision path (paper: 'represented as a quad tree'):");
    let p = SkyPos::new(185.0, 15.0).unwrap().unit_vec();
    for level in 0..=8u8 {
        let id = lookup_id(p, level).unwrap();
        println!(
            "  level {:>2}: name {:<12} id {:>12} ({:#x})",
            level,
            id_to_name(id),
            id.raw(),
            id.raw()
        );
    }
    let deep = lookup_id(p, 20).unwrap();
    println!(
        "  level 20: {} — {} bits",
        deep.raw(),
        64 - deep.raw().leading_zeros()
    );
    let _: HtmId = deep;
}
